//! The shard map: which worker serves which contiguous document range,
//! at which address, with which replicas — plus the epoch counter the
//! coordinator bumps on every published write.
//!
//! The on-disk format is a single JSON object (`cluster.json` by
//! convention, written by `koko cluster split`):
//!
//! ```json
//! {"version":1,"epoch":0,"mode":"partial","workers":[
//!   {"name":"w0","addr":"127.0.0.1:4101","replicas":[],
//!    "doc_base":0,"docs":4,"sid_base":0,"snapshot":"worker-0.koko"},
//!   {"name":"w1","addr":"127.0.0.1:4102","replicas":[],
//!    "doc_base":4,"docs":4,"sid_base":9,"snapshot":"worker-1.koko"}]}
//! ```
//!
//! Ranges must start at document 0, be contiguous, and not overlap —
//! [`ShardMap::validate`] rejects a split map (gap/overlap/empty) with a
//! structured error before the coordinator ever binds, because a wrong
//! map silently drops or duplicates rows, which is the one failure mode
//! the cluster is not allowed to have.

use koko_serve::json::{self, write_escaped, Json};

/// What the coordinator does when a worker fails mid-query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Any worker failure fails the whole query with a structured error
    /// naming the worker (no partial rows ever escape).
    Strict,
    /// Surviving workers' rows are returned, the response is flagged
    /// `"partial":true`, and the failed workers appear with structured
    /// errors in `explain.remote_shards`.
    #[default]
    Partial,
}

impl Mode {
    /// The wire/file spelling (`"strict"` / `"partial"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Mode::Strict => "strict",
            Mode::Partial => "partial",
        }
    }
}

/// One worker's slot in the [`ShardMap`].
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerEntry {
    /// Stable worker name (`"w0"`, …) used in explain output and errors.
    pub name: String,
    /// Primary `host:port` the worker serves on.
    pub addr: String,
    /// Replica addresses serving the same document range; the fan-out
    /// rotates onto these when the primary fails.
    pub replicas: Vec<String>,
    /// First global document id this worker owns.
    pub doc_base: u32,
    /// Number of documents this worker serves.
    pub docs: u32,
    /// First global *sentence* id of the range. Sentence ids are
    /// corpus-global (they run over documents in order), so the
    /// coordinator must remap each worker's locally numbered `sid`
    /// values by this base to keep rows byte-identical to single-node.
    /// `koko cluster split` computes it from the per-worker snapshots.
    pub sid_base: u32,
    /// Optional path of the worker's `.koko` snapshot (written by
    /// `koko cluster split`; informational for the coordinator).
    pub snapshot: Option<String>,
}

impl WorkerEntry {
    /// Every address that can answer for this range: primary first,
    /// then replicas.
    pub fn endpoints(&self) -> Vec<String> {
        let mut all = Vec::with_capacity(1 + self.replicas.len());
        all.push(self.addr.clone());
        all.extend(self.replicas.iter().cloned());
        all
    }
}

/// The cluster topology: an epoch-stamped list of workers covering the
/// corpus as contiguous document ranges.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardMap {
    /// Format version (currently 1).
    pub version: u32,
    /// Publish epoch; the coordinator bumps this on every successful
    /// `add`/`compact` (two-phase: worker first, then the pointer swap).
    pub epoch: u64,
    /// Partial-failure mode queries run under by default.
    pub mode: Mode,
    /// Workers in `doc_base` order.
    pub workers: Vec<WorkerEntry>,
}

impl ShardMap {
    /// Total documents across every worker range.
    pub fn total_docs(&self) -> u64 {
        self.workers.iter().map(|w| w.docs as u64).sum()
    }

    /// Structured validation: at least one worker, ranges start at 0,
    /// are contiguous (no gap, no overlap), and are non-empty. Returns
    /// a message naming the offending worker.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers.is_empty() {
            return Err("shard map has no workers".into());
        }
        let mut expect = 0u32;
        for w in &self.workers {
            if w.docs == 0 {
                return Err(format!("worker {:?} serves an empty range", w.name));
            }
            if w.doc_base != expect {
                return Err(format!(
                    "worker {:?} starts at doc {} but the previous range ends at {} \
                     (ranges must be contiguous from 0 — a split map drops or duplicates rows)",
                    w.name, w.doc_base, expect
                ));
            }
            expect = expect
                .checked_add(w.docs)
                .ok_or_else(|| format!("worker {:?} overflows the document space", w.name))?;
            if w.addr.is_empty() {
                return Err(format!("worker {:?} has no address", w.name));
            }
        }
        if self.workers[0].sid_base != 0 {
            return Err(format!(
                "worker {:?} must start at sentence 0 (sid_base {})",
                self.workers[0].name, self.workers[0].sid_base
            ));
        }
        for pair in self.workers.windows(2) {
            if pair[1].sid_base < pair[0].sid_base {
                return Err(format!(
                    "worker {:?} has sid_base {} below its predecessor's {}                      (sentence bases must be non-decreasing in doc order)",
                    pair[1].name, pair[1].sid_base, pair[0].sid_base
                ));
            }
        }
        Ok(())
    }

    /// Parse the JSON form (see the [module docs](self) for the format).
    pub fn parse(text: &str) -> Result<ShardMap, String> {
        let root = json::parse(text).map_err(|e| format!("shard map is not valid JSON: {e:?}"))?;
        let version = root
            .get("version")
            .and_then(Json::as_f64)
            .ok_or("shard map missing \"version\"")? as u32;
        if version != 1 {
            return Err(format!(
                "unsupported shard map version {version} (expected 1)"
            ));
        }
        let epoch = root.get("epoch").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let mode = match root.get("mode").and_then(Json::as_str) {
            None | Some("partial") => Mode::Partial,
            Some("strict") => Mode::Strict,
            Some(other) => {
                return Err(format!(
                    "unknown mode {other:?} (expected \"strict\" or \"partial\")"
                ))
            }
        };
        let Some(Json::Arr(entries)) = root.get("workers") else {
            return Err("shard map missing \"workers\" array".into());
        };
        let mut workers = Vec::with_capacity(entries.len());
        for (i, e) in entries.iter().enumerate() {
            let name = e
                .get("name")
                .and_then(Json::as_str)
                .map(str::to_string)
                .unwrap_or_else(|| format!("w{i}"));
            let addr = e
                .get("addr")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("worker {name:?} missing \"addr\""))?
                .to_string();
            let mut replicas = Vec::new();
            if let Some(Json::Arr(reps)) = e.get("replicas") {
                for r in reps {
                    replicas.push(
                        r.as_str()
                            .ok_or_else(|| format!("worker {name:?} has a non-string replica"))?
                            .to_string(),
                    );
                }
            }
            let doc_base = e
                .get("doc_base")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("worker {name:?} missing \"doc_base\""))?
                as u32;
            let docs = e
                .get("docs")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("worker {name:?} missing \"docs\""))?
                as u32;
            let sid_base = e.get("sid_base").and_then(Json::as_f64).unwrap_or(0.0) as u32;
            let snapshot = e.get("snapshot").and_then(Json::as_str).map(str::to_string);
            workers.push(WorkerEntry {
                name,
                addr,
                replicas,
                doc_base,
                docs,
                sid_base,
                snapshot,
            });
        }
        let map = ShardMap {
            version,
            epoch,
            mode,
            workers,
        };
        map.validate()?;
        Ok(map)
    }

    /// Canonical JSON rendering (round-trips through [`ShardMap::parse`]).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"version\":{},\"epoch\":{},\"mode\":\"{}\",\"workers\":[",
            self.version,
            self.epoch,
            self.mode.as_str()
        );
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_escaped(&mut out, &w.name);
            out.push_str(",\"addr\":");
            write_escaped(&mut out, &w.addr);
            out.push_str(",\"replicas\":[");
            for (j, r) in w.replicas.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write_escaped(&mut out, r);
            }
            out.push_str(&format!(
                "],\"doc_base\":{},\"docs\":{},\"sid_base\":{}",
                w.doc_base, w.docs, w.sid_base
            ));
            if let Some(snap) = &w.snapshot {
                out.push_str(",\"snapshot\":");
                write_escaped(&mut out, snap);
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Read + parse + validate a shard-map file.
    pub fn load(path: &std::path::Path) -> Result<ShardMap, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read shard map {path:?}: {e}"))?;
        ShardMap::parse(&text)
    }

    /// Write the canonical JSON form.
    pub fn save(&self, path: &std::path::Path) -> Result<(), String> {
        std::fs::write(path, self.to_json() + "\n")
            .map_err(|e| format!("cannot write shard map {path:?}: {e}"))
    }

    /// An even split of `total_docs` documents over `addrs.len()` workers
    /// (remainder spread over the leading workers), for `koko cluster
    /// split` and tests. `sid_base` is left at 0 for every worker — the
    /// caller must fill in the real sentence bases once the per-worker
    /// corpora exist (sentence counts are data-dependent).
    pub fn split_even(total_docs: u32, addrs: &[String], mode: Mode) -> ShardMap {
        let n = addrs.len().max(1) as u32;
        let per = total_docs / n;
        let extra = total_docs % n;
        let mut workers = Vec::with_capacity(addrs.len());
        let mut base = 0u32;
        for (i, addr) in addrs.iter().enumerate() {
            let docs = per + u32::from((i as u32) < extra);
            workers.push(WorkerEntry {
                name: format!("w{i}"),
                addr: addr.clone(),
                replicas: Vec::new(),
                doc_base: base,
                docs,
                sid_base: 0,
                snapshot: None,
            });
            base += docs;
        }
        ShardMap {
            version: 1,
            epoch: 0,
            mode,
            workers,
        }
    }

    /// The new map an `add` of `added` documents publishes: the tail
    /// worker's range grows, the epoch bumps. (Adds always land on the
    /// tail worker — documents are append-only and ranges contiguous.)
    pub fn grown(&self, added: u32) -> ShardMap {
        let mut next = self.clone();
        next.epoch += 1;
        if let Some(tail) = next.workers.last_mut() {
            tail.docs += added;
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map2() -> ShardMap {
        ShardMap {
            version: 1,
            epoch: 3,
            mode: Mode::Strict,
            workers: vec![
                WorkerEntry {
                    name: "w0".into(),
                    addr: "127.0.0.1:4101".into(),
                    replicas: vec!["127.0.0.1:4201".into()],
                    doc_base: 0,
                    docs: 4,
                    sid_base: 0,
                    snapshot: Some("worker-0.koko".into()),
                },
                WorkerEntry {
                    name: "w1".into(),
                    addr: "127.0.0.1:4102".into(),
                    replicas: vec![],
                    doc_base: 4,
                    docs: 4,
                    sid_base: 9,
                    snapshot: None,
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        let m = map2();
        let parsed = ShardMap::parse(&m.to_json()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn split_even_spreads_the_remainder_and_validates() {
        let addrs: Vec<String> = (0..3).map(|i| format!("h:{i}")).collect();
        let m = ShardMap::split_even(8, &addrs, Mode::Partial);
        assert_eq!(
            m.workers.iter().map(|w| w.docs).collect::<Vec<_>>(),
            vec![3, 3, 2]
        );
        m.validate().unwrap();
        assert_eq!(m.total_docs(), 8);
    }

    #[test]
    fn split_maps_are_rejected_with_structured_errors() {
        // Gap.
        let mut m = map2();
        m.workers[1].doc_base = 5;
        let err = m.validate().unwrap_err();
        assert!(err.contains("w1") && err.contains("contiguous"), "{err}");
        // Overlap.
        let mut m = map2();
        m.workers[1].doc_base = 3;
        assert!(m.validate().is_err());
        // Empty range.
        let mut m = map2();
        m.workers[0].docs = 0;
        assert!(m.validate().unwrap_err().contains("empty"));
        // No workers.
        let m = ShardMap {
            workers: vec![],
            ..map2()
        };
        assert!(m.validate().is_err());
        // Parse-time validation fires too.
        let mut m = map2();
        m.workers[1].doc_base = 9;
        assert!(ShardMap::parse(&m.to_json()).is_err());
    }

    #[test]
    fn grown_bumps_the_epoch_and_extends_the_tail() {
        let g = map2().grown(5);
        assert_eq!(g.epoch, 4);
        assert_eq!(g.workers[1].docs, 9);
        assert_eq!(g.workers[0].docs, 4);
        g.validate().unwrap();
    }
}
