//! Cafe-blog generator: the stand-in for the BaristaMag and Sprudge corpora
//! of §6.1 (Figures 3 and 5).
//!
//! Articles introduce new cafes the way coffee blogs do: a mix of strong
//! surface evidence (the name contains "Cafe"/"Roasters", or is followed by
//! ", a cafe"), weaker *linguistically varied* evidence ("pours excellent
//! cortados", "hired the star barista") that only descriptor expansion can
//! credit, and systematic distractors — street addresses, festivals,
//! espresso-machine brands, people — that exercise the Figure 9 exclude
//! clauses. Some cafes get only weak evidence (recall pressure at high
//! thresholds); some non-cafes get partial evidence (precision pressure at
//! low thresholds), which is what produces the paper's threshold-sweep
//! shape.

use crate::{pick, rng, LabeledCorpus};
use koko_nlp::gazetteer as gaz;
use rand::rngs::StdRng;
use rand::Rng;

/// Which blog the generator imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Style {
    /// Shorter articles (the paper: ≈480 words vs. Sprudge's 760), less
    /// evidence per cafe — descriptors matter more (Figure 5).
    Barista,
    /// Longer articles with more (and more literal) evidence.
    Sprudge,
}

/// Deterministically generate `n_articles` labelled cafe blog posts.
pub fn generate(style: Style, n_articles: usize, seed: u64) -> LabeledCorpus {
    let mut r = rng(seed ^ 0xCAFE);
    let mut out = LabeledCorpus::default();
    for _ in 0..n_articles {
        let (text, gold) = article(style, &mut r);
        out.texts.push(text);
        out.truth.push(gold);
    }
    out
}

/// A cafe name plus whether its surface form alone triggers the boolean
/// name conditions of Figure 9.
fn cafe_name(r: &mut StdRng) -> (String, bool) {
    // Combinatorial names (~900 pairs): any split of the corpus leaves most
    // test names unseen in training, like real newly-opened cafes.
    let core = format!("{} {}", pick(r, gaz::CAFE_ADJS), pick(r, gaz::CAFE_NOUNS));
    if r.gen_bool(0.55) {
        let suffix = pick(r, gaz::CAFE_SUFFIXES);
        let boolean = matches!(*suffix, "Cafe" | "Coffee" | "Roasters");
        (format!("{core} {suffix}"), boolean)
    } else {
        (core, false)
    }
}

/// Weak (descriptor-style) evidence sentences; linguistic variation is the
/// point — most verbs are paraphrases of "serves", most drinks paraphrases
/// of "coffee".
fn weak_evidence(r: &mut StdRng, name: &str) -> String {
    let serve = ["serves", "sells", "pours", "offers", "serves up"];
    let drink = [
        "espresso",
        "cappuccinos",
        "macchiatos",
        "lattes",
        "cortado",
        "mocha",
        "coffee",
    ];
    let adj = ["delicious", "excellent", "smooth", "bold", "fresh"];
    match r.gen_range(0..6) {
        0 => format!(
            "{name} {} {} {} daily .",
            pick(r, &serve),
            pick(r, &adj),
            pick(r, &drink)
        ),
        1 => format!("{name} recently hired the star barista ."),
        2 => format!("{name} employs {} baristas .", r.gen_range(2..6)),
        3 => format!("The baristas of {name} craft {} .", pick(r, &drink)),
        4 => format!("{name} added a new coffee menu this season ."),
        5 => format!(
            "{name} {} a seasonal {} blend .",
            pick(r, &["brews", "roasts", "crafts"]),
            pick(r, &["single", "local", "fresh"])
        ),
        _ => unreachable!(),
    }
}

/// Strong surface evidence (weight-1.0 conditions in Figure 9).
fn strong_evidence(r: &mut StdRng, name: &str) -> String {
    let city = pick(r, gaz::CITIES);
    match r.gen_range(0..3) {
        0 => format!("{name} , a cafe in {city} , opened this weekend ."),
        1 => format!("It is a new cafe called {name} ."),
        2 => format!("Locals love cafes such as {name} ."),
        _ => unreachable!(),
    }
}

/// Distractor sentences exercising the Figure 9 exclude clauses plus
/// precision pressure. Several distractors reuse the *same sentence frames*
/// as cafes (a festival that "opened", a person who "pours espresso"), so a
/// sequence model cannot extract cafes from local context alone.
fn distractor(r: &mut StdRng, gold_person_evidence: &mut bool) -> String {
    let city = pick(r, gaz::CITIES);
    match r.gen_range(0..8) {
        0 => {
            let street = pick(r, gaz::STREET_SUFFIXES);
            format!(
                "The shop at {} Harbor {street} was busy .",
                r.gen_range(5..900)
            )
        }
        1 => format!("The {city} Coffee Festival opened in {city} this month ."),
        2 => {
            let brand = pick(r, gaz::ESPRESSO_BRANDS);
            format!("They installed a {brand} behind the bar .")
        }
        3 => {
            // A person with coffee evidence: an honest false-positive trap.
            *gold_person_evidence = true;
            let first = pick(r, gaz::FIRST_NAMES);
            let last = pick(r, gaz::LAST_NAMES);
            format!("{first} {last} pours excellent espresso at home .")
        }
        4 => format!("The neighborhood in {city} felt warm and friendly ."),
        5 => format!("We visited {city} in {} .", r.gen_range(2005..2018)),
        6 => {
            // Organization in a cafe-like frame.
            let org = pick(r, gaz::ORGS);
            format!("{org} opened a new office in {city} this month .")
        }
        7 => {
            let first = pick(r, gaz::FIRST_NAMES);
            let last = pick(r, gaz::LAST_NAMES);
            format!("{first} {last} serves on the city board in {city} .")
        }
        _ => unreachable!(),
    }
}

/// Varied introduction frames — shared vocabulary with the distractor
/// frames so local context alone does not identify cafes.
fn intro(r: &mut StdRng, name: &str) -> String {
    let city = pick(r, gaz::CITIES);
    match r.gen_range(0..5) {
        0 => format!("{name} opened in {city} this month ."),
        1 => format!("We stopped by {name} on a bright morning ."),
        2 => format!("{name} sits on a quiet corner of {city} ."),
        3 => format!("The owner of {name} moved here from {city} ."),
        4 => format!("Everyone in {city} talks about {name} lately ."),
        _ => unreachable!(),
    }
}

fn article(style: Style, r: &mut StdRng) -> (String, Vec<String>) {
    let (n_cafes, weak_range, strong_prob, n_distractors) = match style {
        Style::Barista => (1, 1..=2, 0.45, 2),
        Style::Sprudge => (if r.gen_bool(0.35) { 2 } else { 1 }, 2..=4, 0.7, 4),
    };
    let mut sentences: Vec<String> = Vec::new();
    let mut gold = Vec::new();
    for _ in 0..n_cafes {
        let (name, boolean_name) = cafe_name(r);
        gold.push(name.clone());
        // Strong evidence: boolean names already carry it in the name
        // itself; bare names get a strong sentence with probability
        // `strong_prob`, otherwise they depend on weak evidence only.
        if !boolean_name && r.gen_bool(strong_prob) {
            sentences.push(strong_evidence(r, &name));
        } else {
            sentences.push(intro(r, &name));
        }
        let n_weak = r.gen_range(weak_range.clone());
        for _ in 0..n_weak {
            sentences.push(weak_evidence(r, &name));
        }
    }
    let mut person_evidence = false;
    for _ in 0..n_distractors {
        sentences.push(distractor(r, &mut person_evidence));
    }
    // Shuffle deterministically (Fisher–Yates with the seeded rng), keeping
    // the first sentence first so the article opens with its subject.
    for i in (2..sentences.len()).rev() {
        let j = r.gen_range(1..=i);
        sentences.swap(i, j);
    }
    (sentences.join(" "), gold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use koko_nlp::Pipeline;

    #[test]
    fn deterministic() {
        let a = generate(Style::Barista, 10, 1);
        let b = generate(Style::Barista, 10, 1);
        assert_eq!(a.texts, b.texts);
        assert_eq!(a.truth, b.truth);
        let c = generate(Style::Barista, 10, 2);
        assert_ne!(a.texts, c.texts);
    }

    #[test]
    fn sizes_match_style() {
        let barista = generate(Style::Barista, 40, 3);
        let sprudge = generate(Style::Sprudge, 40, 3);
        let avg = |c: &LabeledCorpus| {
            c.texts
                .iter()
                .map(|t| t.split_whitespace().count())
                .sum::<usize>() as f64
                / c.len() as f64
        };
        assert!(
            avg(&sprudge) > avg(&barista),
            "Sprudge articles are longer ({} vs {})",
            avg(&sprudge),
            avg(&barista)
        );
        assert!(sprudge.num_labels() >= barista.num_labels());
    }

    #[test]
    fn gold_names_are_recognizable_entities() {
        // NER must surface the gold cafes as Other-entities, otherwise the
        // extraction experiments are unwinnable.
        let c = generate(Style::Sprudge, 20, 5);
        let p = Pipeline::new();
        let mut found = 0usize;
        let mut total = 0usize;
        for (text, gold) in c.texts.iter().zip(&c.truth) {
            let doc = p.parse_document(0, text);
            let mentions: Vec<String> = doc
                .sentences
                .iter()
                .flat_map(|s| s.entities.iter().map(|m| s.mention_text(m).to_lowercase()))
                .collect();
            for g in gold {
                total += 1;
                let gl = g.to_lowercase();
                if mentions
                    .iter()
                    .any(|m| *m == gl || gl.starts_with(m.as_str()))
                {
                    found += 1;
                }
            }
        }
        assert!(
            found as f64 >= 0.9 * total as f64,
            "only {found}/{total} gold cafes surfaced as entities"
        );
    }

    #[test]
    fn contains_distractor_material() {
        let c = generate(Style::Sprudge, 60, 7);
        let all = c.texts.join(" ");
        assert!(all.contains("Festival") || all.contains("Marzocco") || all.contains("St."));
    }
}
