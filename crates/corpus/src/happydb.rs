//! HappyDB-like generator (§6.2): short crowd-sourced "happy moment"
//! sentences, used for the Figure 7 index benchmarks and Table 1.

use crate::{pick, rng};
use koko_nlp::gazetteer as gaz;
use rand::rngs::StdRng;
use rand::Rng;

/// Generate `n` happy moments (each its own document of 1–2 sentences).
pub fn generate(n: usize, seed: u64) -> Vec<String> {
    let mut r = rng(seed ^ 0x4A99);
    (0..n).map(|_| moment(&mut r)).collect()
}

fn moment(r: &mut StdRng) -> String {
    let food = pick(r, gaz::FOOD_NOUNS);
    let city = pick(r, gaz::CITIES);
    let relation = pick(r, &["friend", "daughter", "son", "family", "dog", "cat"]);
    let first = match r.gen_range(0..10) {
        0 => "I was happy when I found my old book in the morning .".to_string(),
        1 => format!("I ate a delicious {food} with my {relation} ."),
        2 => format!("My {relation} bought me a new book today ."),
        3 => "We went to the park and played games together .".to_string(),
        4 => "I finally finished my work and felt proud .".to_string(),
        5 => format!("I visited {city} with my {relation} last weekend ."),
        6 => format!("The barista made a wonderful {food} for me ."),
        7 => "I was glad because my team won the game .".to_string(),
        8 => format!("My {relation} cooked {food} and it was tasty ."),
        9 => format!("I got a new job in {city} and celebrated tonight ."),
        _ => unreachable!(),
    };
    if r.gen_bool(0.3) {
        let second = match r.gen_range(0..4) {
            0 => "It made my whole day bright .".to_string(),
            1 => format!("We also ate {} together .", pick(r, gaz::FOOD_NOUNS)),
            2 => "I felt really happy and thankful .".to_string(),
            3 => "My friends were happy for me too .".to_string(),
            _ => unreachable!(),
        };
        format!("{first} {second}")
    } else {
        first
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koko_nlp::Pipeline;

    #[test]
    fn deterministic() {
        assert_eq!(generate(30, 9), generate(30, 9));
    }

    #[test]
    fn moments_are_short_and_parse() {
        let moments = generate(50, 4);
        let p = Pipeline::new();
        for m in &moments {
            let words = m.split_whitespace().count();
            assert!(words <= 25, "moment too long: {m}");
            let doc = p.parse_document(0, m);
            assert!(!doc.sentences.is_empty());
            for s in &doc.sentences {
                assert!(s.root().is_some());
            }
        }
    }
}
