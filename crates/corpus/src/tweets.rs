//! WNUT-style tweet generator (§6.1, Figure 4): very short stand-alone
//! documents mentioning sports teams and facilities — the setting where
//! KOKO's cross-sentence aggregation cannot help much, so baselines close
//! the gap (the paper's observation).

use crate::{pick, rng, LabeledCorpus};
use koko_nlp::gazetteer as gaz;
use rand::rngs::StdRng;
use rand::Rng;

/// Tweets plus two gold label sets over the *same* documents.
#[derive(Debug, Clone, Default)]
pub struct TweetCorpus {
    pub texts: Vec<String>,
    pub teams: Vec<Vec<String>>,
    pub facilities: Vec<Vec<String>>,
}

impl TweetCorpus {
    /// View as a [`LabeledCorpus`] for one entity type.
    pub fn labeled_teams(&self) -> LabeledCorpus {
        LabeledCorpus {
            texts: self.texts.clone(),
            truth: self.teams.clone(),
        }
    }

    pub fn labeled_facilities(&self) -> LabeledCorpus {
        LabeledCorpus {
            texts: self.texts.clone(),
            truth: self.facilities.clone(),
        }
    }

    pub fn len(&self) -> usize {
        self.texts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }
}

/// Generate `n` tweets.
pub fn generate(n: usize, seed: u64) -> TweetCorpus {
    let mut r = rng(seed ^ 0x7EE7);
    let mut out = TweetCorpus::default();
    for _ in 0..n {
        let (text, teams, facilities) = tweet(&mut r);
        out.texts.push(text);
        out.teams.push(teams);
        out.facilities.push(facilities);
    }
    out
}

fn tweet(r: &mut StdRng) -> (String, Vec<String>, Vec<String>) {
    let team_a = pick(r, gaz::TEAMS).to_string();
    let team_b = pick(r, gaz::TEAMS).to_string();
    let fac = pick(r, gaz::FACILITY_NAMES).to_string();
    match r.gen_range(0..10) {
        0 => (format!("go {team_a} !"), vec![team_a], vec![]),
        1 => (
            format!("{team_a} vs {team_b} tonight !"),
            vec![team_a, team_b],
            vec![],
        ),
        2 => (
            format!("{team_a} to host {team_b} at {fac} ."),
            vec![team_a, team_b],
            vec![fac],
        ),
        3 => (
            format!("watch {team_a} play soccer today ."),
            vec![team_a],
            vec![],
        ),
        4 => (format!("at {fac} tonight !"), vec![], vec![fac]),
        5 => (format!("we went to {fac} yesterday ."), vec![], vec![fac]),
        6 => (format!("go to {fac} for the game ."), vec![], vec![fac]),
        7 => {
            // Distractor: time expression after "at" — the Figure 10
            // exclude clauses drop these.
            let hour = r.gen_range(1..12);
            (format!("see you at {hour} pm today ."), vec![], vec![])
        }
        8 => {
            let first = pick(r, gaz::FIRST_NAMES);
            (
                format!("{first} was so happy about the win !"),
                vec![],
                vec![],
            )
        }
        9 => {
            let city = pick(r, gaz::CITIES);
            (format!("beautiful morning in {city} ."), vec![], vec![])
        }
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let a = generate(50, 3);
        let b = generate(50, 3);
        assert_eq!(a.texts, b.texts);
        assert_eq!(a.len(), 50);
    }

    #[test]
    fn tweets_are_short() {
        let c = generate(200, 5);
        let avg = c
            .texts
            .iter()
            .map(|t| t.split_whitespace().count())
            .sum::<usize>() as f64
            / c.len() as f64;
        assert!(avg < 10.0, "tweets should be short, got {avg}");
    }

    #[test]
    fn both_label_kinds_present() {
        let c = generate(300, 9);
        assert!(c.teams.iter().any(|t| !t.is_empty()));
        assert!(c.facilities.iter().any(|f| !f.is_empty()));
        let lt = c.labeled_teams();
        assert_eq!(lt.texts.len(), lt.truth.len());
    }
}
