//! Extraction scoring: precision, recall, F1 against per-document gold
//! labels (the metric of Figures 3–5).

/// Precision / recall / F1 triple.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Prf {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
}

/// Score predicted `(doc, value)` pairs against per-document gold labels.
/// Matching is case-insensitive and whitespace-normalized; a prediction is
/// also accepted when it matches a gold name up to a trailing type word
/// (crowd workers annotate both "Copper Kettle" and "Copper Kettle Cafe";
/// we accept either direction on the last token).
pub fn score(predicted: &[(u32, String)], truth: &[Vec<String>]) -> Prf {
    let norm = |s: &str| {
        s.split_whitespace()
            .collect::<Vec<_>>()
            .join(" ")
            .to_lowercase()
    };
    let gold: Vec<Vec<String>> = truth
        .iter()
        .map(|doc| doc.iter().map(|g| norm(g)).collect())
        .collect();
    let total_gold: usize = gold.iter().map(Vec::len).sum();

    let mut tp = 0usize;
    let mut fp = 0usize;
    // Track which gold labels were found (per doc, per index).
    let mut found: Vec<Vec<bool>> = gold.iter().map(|d| vec![false; d.len()]).collect();
    for (doc, value) in predicted {
        let v = norm(value);
        let Some(doc_gold) = gold.get(*doc as usize) else {
            fp += 1;
            continue;
        };
        match doc_gold.iter().position(|g| name_matches(g, &v)) {
            Some(i) => {
                if !found[*doc as usize][i] {
                    found[*doc as usize][i] = true;
                    tp += 1;
                } // duplicate hits of the same gold name are not penalized
            }
            None => fp += 1,
        }
    }
    let precision = if tp + fp == 0 {
        0.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if total_gold == 0 {
        0.0
    } else {
        tp as f64 / total_gold as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    Prf {
        precision,
        recall,
        f1,
    }
}

/// Name equivalence: exact, or equal after dropping one trailing word from
/// either side ("copper kettle cafe" ≈ "copper kettle").
fn name_matches(gold: &str, pred: &str) -> bool {
    if gold == pred {
        return true;
    }
    let drop_last = |s: &str| {
        let mut w: Vec<&str> = s.split_whitespace().collect();
        if w.len() > 1 {
            w.pop();
        }
        w.join(" ")
    };
    drop_last(gold) == pred || gold == drop_last(pred)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_score() {
        let truth = vec![
            vec!["Copper Kettle".to_string()],
            vec!["Quiet Owl".to_string()],
        ];
        let pred = vec![
            (0, "copper kettle".to_string()),
            (1, "Quiet Owl".to_string()),
        ];
        let s = score(&pred, &truth);
        assert_eq!((s.precision, s.recall, s.f1), (1.0, 1.0, 1.0));
    }

    #[test]
    fn false_positives_hit_precision() {
        let truth = vec![vec!["Copper Kettle".to_string()]];
        let pred = vec![
            (0, "Copper Kettle".to_string()),
            (0, "La Marzocco".to_string()),
        ];
        let s = score(&pred, &truth);
        assert_eq!(s.precision, 0.5);
        assert_eq!(s.recall, 1.0);
    }

    #[test]
    fn misses_hit_recall() {
        let truth = vec![vec!["Copper Kettle".to_string(), "Quiet Owl".to_string()]];
        let pred = vec![(0, "Copper Kettle".to_string())];
        let s = score(&pred, &truth);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 0.5);
    }

    #[test]
    fn doc_scoping_matters() {
        let truth = vec![vec!["Copper Kettle".to_string()], vec![]];
        let pred = vec![(1, "Copper Kettle".to_string())];
        let s = score(&pred, &truth);
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    fn trailing_type_word_is_tolerated() {
        let truth = vec![vec!["Copper Kettle Cafe".to_string()]];
        let pred = vec![(0, "Copper Kettle".to_string())];
        assert_eq!(score(&pred, &truth).f1, 1.0);
        let truth = vec![vec!["Copper Kettle".to_string()]];
        let pred = vec![(0, "Copper Kettle Cafe".to_string())];
        assert_eq!(score(&pred, &truth).f1, 1.0);
    }

    #[test]
    fn duplicates_not_double_counted() {
        let truth = vec![vec!["Copper Kettle".to_string()]];
        let pred = vec![
            (0, "Copper Kettle".to_string()),
            (0, "copper kettle".to_string()),
        ];
        let s = score(&pred, &truth);
        assert_eq!((s.precision, s.recall), (1.0, 1.0));
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(score(&[], &[]).f1, 0.0);
        let truth = vec![vec!["X".to_string()]];
        assert_eq!(score(&[], &truth).recall, 0.0);
    }
}
