//! `koko-corpus` — deterministic synthetic corpora and query benchmarks for
//! the §6 evaluation.
//!
//! Every generator is seeded and draws from the `koko-nlp` gazetteers, so
//! the NLP pipeline annotates generated text correctly by construction and
//! every experiment is reproducible bit-for-bit.
//!
//! | Module | Stands in for | Used by |
//! |---|---|---|
//! | [`wiki`] | 5M-article Wikipedia dump | Figs. 6–8, Tables 1–2 |
//! | [`happydb`] | HappyDB (140K happy moments) | Fig. 7, Table 1 |
//! | [`cafe`] | BaristaMag / Sprudge blogs + CrowdFlower labels | Figs. 3, 5 |
//! | [`tweets`] | WNUT named-entity tweets | Fig. 4 |
//! | [`synthetic_tree`] | the 350-query SyntheticTree benchmark | Figs. 7, 8 |
//! | [`synthetic_span`] | the 300-query SyntheticSpan benchmark | Table 1 |
//! | [`eval`] | precision / recall / F1 scoring | Figs. 3–5 |

pub mod cafe;
pub mod eval;
pub mod happydb;
pub mod synthetic_span;
pub mod synthetic_tree;
pub mod tweets;
pub mod wiki;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A corpus with per-document gold entity labels.
#[derive(Debug, Clone, Default)]
pub struct LabeledCorpus {
    pub texts: Vec<String>,
    /// Gold entity strings per document (case preserved; comparisons are
    /// case-insensitive).
    pub truth: Vec<Vec<String>>,
}

impl LabeledCorpus {
    pub fn len(&self) -> usize {
        self.texts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }

    /// Total number of gold labels.
    pub fn num_labels(&self) -> usize {
        self.truth.iter().map(Vec::len).sum()
    }
}

/// Seeded RNG shared by all generators.
pub(crate) fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Pick one element (panics on empty slices — generator pools are static).
pub(crate) fn pick<'a, T>(rng: &mut StdRng, pool: &'a [T]) -> &'a T {
    &pool[rng.gen_range(0..pool.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_reproducible() {
        let mut a = rng(42);
        let mut b = rng(42);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn pick_is_deterministic() {
        let pool = [1, 2, 3, 4, 5];
        let xs: Vec<i32> = (0..5).map(|_| *pick(&mut rng(7), &pool)).collect();
        let ys: Vec<i32> = (0..5).map(|_| *pick(&mut rng(7), &pool)).collect();
        assert_eq!(xs, ys);
    }
}
