//! The SyntheticSpan benchmark (§6.2.3): 300 queries with span variables of
//! 1, 3 and 5 atoms (100 each), rendered as KOKO query text for the
//! `KOKO&GSP` vs `KOKO&NOGSP` comparison of Table 1.
//!
//! Atoms are sampled from real sentences — e.g. the paper's example
//! `v = //verb + ∧ + /root/xcomp + ∧ + "happy"` — so a controlled fraction
//! of queries actually match.

use crate::rng;
use koko_nlp::{Corpus, PosTag, Sentence, Tid};
use rand::rngs::StdRng;
use rand::Rng;

/// One benchmark query.
#[derive(Debug, Clone)]
pub struct SpanQuery {
    /// Full KOKO query text (`extract x:Str from …`).
    pub text: String,
    /// Number of atoms in the span variable (1, 3, or 5).
    pub atoms: usize,
}

/// Generate 100 queries per atom count.
pub fn generate(corpus: &Corpus, seed: u64) -> Vec<SpanQuery> {
    let mut r = rng(seed ^ 0x59A9);
    let mut out = Vec::with_capacity(300);
    for atoms in [1usize, 3, 5] {
        for _ in 0..100 {
            out.push(SpanQuery {
                text: sample_query(corpus, &mut r, atoms),
                atoms,
            });
        }
    }
    out
}

/// Render one atom for the token at `t` — either its word (quoted) or a
/// one-step path on its POS tag / parse label.
fn atom_for(r: &mut StdRng, s: &Sentence, t: Tid) -> String {
    let tok = &s.tokens[t as usize];
    match r.gen_range(0..3) {
        0 => format!("\"{}\"", tok.lower),
        1 => format!("//{}", tok.pos.name()),
        _ => format!("//{}", tok.label.name()),
    }
}

fn sample_query(corpus: &Corpus, r: &mut StdRng, atoms: usize) -> String {
    let n = corpus.num_sentences() as u32;
    let anchors = atoms.div_ceil(2); // 1 → 1, 3 → 2, 5 → 3 concrete atoms
    for _attempt in 0..200 {
        let sid = r.gen_range(0..n);
        let s = corpus.sentence(sid);
        if s.len() < anchors + 2 {
            continue;
        }
        // Pick `anchors` distinct ascending non-punct token positions.
        let mut positions: Vec<Tid> = (0..s.len() as Tid)
            .filter(|&t| s.tokens[t as usize].pos != PosTag::Punct)
            .collect();
        if positions.len() < anchors {
            continue;
        }
        // Deterministic sample without replacement, then sort.
        for i in (1..positions.len()).rev() {
            let j = r.gen_range(0..=i);
            positions.swap(i, j);
        }
        positions.truncate(anchors);
        positions.sort_unstable();
        let rendered: Vec<String> = positions.iter().map(|&t| atom_for(r, s, t)).collect();
        let expr = rendered.join(" + ^ + ");
        return format!("extract x:Str from corpus if (/ROOT:{{ x = {expr} }})");
    }
    // Tiny-corpus fallback.
    "extract x:Str from corpus if (/ROOT:{ x = //verb })".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use koko_lang::parse_query;
    use koko_nlp::Pipeline;

    fn corpus() -> Corpus {
        let texts = crate::happydb::generate(80, 21);
        Pipeline::new().parse_corpus(&texts)
    }

    #[test]
    fn three_hundred_queries() {
        let c = corpus();
        let qs = generate(&c, 1);
        assert_eq!(qs.len(), 300);
        for want in [1usize, 3, 5] {
            assert_eq!(qs.iter().filter(|q| q.atoms == want).count(), 100);
        }
    }

    #[test]
    fn all_queries_parse() {
        let c = corpus();
        for q in generate(&c, 2) {
            parse_query(&q.text).unwrap_or_else(|e| panic!("{}: {e}", q.text));
        }
    }

    #[test]
    fn atom_counts_match_rendering() {
        let c = corpus();
        for q in generate(&c, 3).iter().take(50) {
            let plus_count = q.text.matches(" + ").count();
            // atoms=1 → 0 pluses; atoms=3 → 2; atoms=5 → 4.
            assert_eq!(plus_count + 1, q.atoms.max(1), "{}", q.text);
        }
    }

    #[test]
    fn deterministic() {
        let c = corpus();
        let a = generate(&c, 9);
        let b = generate(&c, 9);
        assert_eq!(
            a.iter().map(|q| &q.text).collect::<Vec<_>>(),
            b.iter().map(|q| &q.text).collect::<Vec<_>>()
        );
    }
}
