//! The SyntheticTree benchmark (§6.2.2): 350 node-variable queries over a
//! parsed corpus, organized exactly along the paper's axes —
//!
//! * **paths** of length 2–5 × attribute types (parse labels; parse labels +
//!   POS tags; parse labels + POS tags + words) × wildcard (with/without) ×
//!   anchoring (from the root / not) — 48 settings × 5 queries = 240;
//! * **trees** with 3–10 labels × attribute types (PL; PL+POS) — 16
//!   settings × 5 = 80;
//! * **trees with wildcards** — 6 settings × 5 = 30.
//!
//! Queries are *sampled from real corpus structure* (a random sentence's
//! actual path or subtree), so every query has nonzero selectivity and the
//! selectivities vary naturally, as in the paper.

use crate::rng;
use koko_nlp::{tree_stats, Axis, Corpus, NodeLabel, PNode, Sentence, Tid, TreePattern};
use rand::rngs::StdRng;
use rand::Rng;

/// One benchmark query.
#[derive(Debug, Clone)]
pub struct TreeQuery {
    pub pattern: TreePattern,
    /// Human-readable setting id, e.g. `path len=3 attrs=pl+pos wc anchor`.
    pub setting: String,
    pub is_path: bool,
}

/// Attribute mixes of §6.2.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Attrs {
    Pl,
    PlPos,
    PlPosWord,
}

impl Attrs {
    fn name(self) -> &'static str {
        match self {
            Attrs::Pl => "pl",
            Attrs::PlPos => "pl+pos",
            Attrs::PlPosWord => "pl+pos+word",
        }
    }

    /// Label for pattern node `i` matching corpus token `t`.
    fn label(self, s: &Sentence, t: Tid, i: usize) -> NodeLabel {
        let tok = &s.tokens[t as usize];
        match (self, i % 3) {
            (Attrs::Pl, _) => NodeLabel::Pl(tok.label),
            (Attrs::PlPos, _) => {
                if i.is_multiple_of(2) {
                    NodeLabel::Pl(tok.label)
                } else {
                    NodeLabel::Pos(tok.pos)
                }
            }
            (Attrs::PlPosWord, 0) => NodeLabel::Pl(tok.label),
            (Attrs::PlPosWord, 1) => NodeLabel::Pos(tok.pos),
            (Attrs::PlPosWord, _) => NodeLabel::Word(tok.lower.clone()),
        }
    }
}

/// Generate the full 350-query benchmark from a parsed corpus.
pub fn generate(corpus: &Corpus, seed: u64) -> Vec<TreeQuery> {
    let mut r = rng(seed ^ 0x7233);
    let mut out = Vec::with_capacity(350);
    // 240 path queries.
    for len in 2..=5usize {
        for attrs in [Attrs::Pl, Attrs::PlPos, Attrs::PlPosWord] {
            for wildcard in [false, true] {
                for anchored in [true, false] {
                    for qi in 0..5 {
                        let pattern = sample_path(corpus, &mut r, len, attrs, wildcard, anchored);
                        out.push(TreeQuery {
                            pattern,
                            setting: format!(
                                "path len={len} attrs={} {} {} q{qi}",
                                attrs.name(),
                                if wildcard { "wc" } else { "nowc" },
                                if anchored { "anchor" } else { "free" }
                            ),
                            is_path: true,
                        });
                    }
                }
            }
        }
    }
    // 80 tree queries.
    for labels in 3..=10usize {
        for attrs in [Attrs::Pl, Attrs::PlPos] {
            for qi in 0..5 {
                let pattern = sample_tree(corpus, &mut r, labels, attrs, false);
                out.push(TreeQuery {
                    pattern,
                    setting: format!("tree n={labels} attrs={} nowc q{qi}", attrs.name()),
                    is_path: false,
                });
            }
        }
    }
    // 30 wildcard tree queries.
    for labels in [4usize, 6, 8] {
        for attrs in [Attrs::Pl, Attrs::PlPos] {
            for qi in 0..5 {
                let pattern = sample_tree(corpus, &mut r, labels, attrs, true);
                out.push(TreeQuery {
                    pattern,
                    setting: format!("tree n={labels} attrs={} wc q{qi}", attrs.name()),
                    is_path: false,
                });
            }
        }
    }
    debug_assert_eq!(out.len(), 350);
    out
}

/// Sample a root-to-node (or mid-tree) path of `len` nodes from a random
/// sentence.
fn sample_path(
    corpus: &Corpus,
    r: &mut StdRng,
    len: usize,
    attrs: Attrs,
    wildcard: bool,
    anchored: bool,
) -> TreePattern {
    let n = corpus.num_sentences() as u32;
    for _attempt in 0..200 {
        let sid = r.gen_range(0..n);
        let s = corpus.sentence(sid);
        if s.is_empty() {
            continue;
        }
        let stats = tree_stats(s);
        // Token whose root-chain is long enough.
        let min_depth = if anchored { len - 1 } else { len };
        let candidates: Vec<Tid> = (0..s.len() as Tid)
            .filter(|&t| (stats[t as usize].depth as usize) >= min_depth)
            .collect();
        if candidates.is_empty() {
            continue;
        }
        let leaf = candidates[r.gen_range(0..candidates.len())];
        // Walk up to collect the chain, deepest last.
        let mut chain: Vec<Tid> = vec![leaf];
        let mut cur = leaf;
        while let Some(h) = s.tokens[cur as usize].head {
            chain.push(h);
            cur = h;
        }
        chain.reverse(); // root … leaf
        let slice: Vec<Tid> = if anchored {
            chain[..len].to_vec()
        } else {
            // A mid-tree segment ending at the leaf.
            chain[chain.len() - len..].to_vec()
        };
        let mut steps: Vec<(Axis, NodeLabel)> = slice
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let axis = if i == 0 && !anchored {
                    Axis::Descendant
                } else {
                    Axis::Child
                };
                (axis, attrs.label(s, t, i))
            })
            .collect();
        if wildcard && steps.len() >= 2 {
            let mid = steps.len() / 2;
            steps[mid].1 = NodeLabel::Wildcard;
        }
        return TreePattern::path(anchored, steps);
    }
    // Corpus too shallow for this length: fall back to a trivial path that
    // still parses (rare; only tiny test corpora hit this).
    TreePattern::path(
        false,
        vec![(Axis::Descendant, NodeLabel::Pl(koko_nlp::ParseLabel::Root))],
    )
}

/// Sample a connected `labels`-node subtree (with branching when available).
fn sample_tree(
    corpus: &Corpus,
    r: &mut StdRng,
    labels: usize,
    attrs: Attrs,
    wildcard: bool,
) -> TreePattern {
    let n = corpus.num_sentences() as u32;
    for _attempt in 0..200 {
        let sid = r.gen_range(0..n);
        let s = corpus.sentence(sid);
        if s.len() < labels {
            continue;
        }
        let Some(root) = s.root() else { continue };
        // BFS from the sentence root, collecting up to `labels` tokens.
        let mut collected: Vec<(Tid, Option<usize>)> = vec![(root, None)];
        let mut frontier = vec![(root, 0usize)];
        while let Some((t, pi)) = frontier.pop() {
            if collected.len() >= labels {
                break;
            }
            let mut kids: Vec<Tid> = s.children(t).collect();
            // Deterministic shuffle for variety.
            for i in (1..kids.len()).rev() {
                let j = r.gen_range(0..=i);
                kids.swap(i, j);
            }
            for k in kids {
                if collected.len() >= labels {
                    break;
                }
                collected.push((k, Some(pi)));
                frontier.insert(0, (k, collected.len() - 1));
            }
        }
        if collected.len() < labels {
            continue;
        }
        let nodes: Vec<PNode> = collected
            .iter()
            .enumerate()
            .map(|(i, &(t, parent))| PNode {
                parent: parent.map(|p| p as u32),
                axis: Axis::Child,
                label: if wildcard && i == labels / 2 && i > 0 {
                    NodeLabel::Wildcard
                } else {
                    attrs.label(s, t, i)
                },
            })
            .collect();
        return TreePattern {
            nodes,
            root_anchored: true,
        };
    }
    sample_path(corpus, r, labels.min(3), attrs, wildcard, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use koko_nlp::Pipeline;

    fn corpus() -> Corpus {
        let texts = crate::wiki::generate(60, 77);
        Pipeline::new().parse_corpus(&texts)
    }

    #[test]
    fn benchmark_has_350_queries() {
        let c = corpus();
        let qs = generate(&c, 1);
        assert_eq!(qs.len(), 350);
        assert_eq!(qs.iter().filter(|q| q.is_path).count(), 240);
    }

    #[test]
    fn deterministic() {
        let c = corpus();
        let a = generate(&c, 1);
        let b = generate(&c, 1);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.pattern, y.pattern);
        }
    }

    #[test]
    fn sampled_queries_match_their_source() {
        // Every sampled query must match at least one corpus sentence (it
        // was built from real structure).
        let c = corpus();
        let qs = generate(&c, 3);
        let mut nonzero = 0usize;
        for q in qs.iter().take(80) {
            let hits = c
                .sentences()
                .filter(|(_, s)| koko_nlp::pattern::matches(&q.pattern, s))
                .count();
            if hits > 0 {
                nonzero += 1;
            }
        }
        assert!(
            nonzero >= 76,
            "sampled queries should match the corpus: {nonzero}/80"
        );
    }

    #[test]
    fn settings_cover_all_axes() {
        let c = corpus();
        let qs = generate(&c, 1);
        assert!(qs.iter().any(|q| q.setting.contains("len=5")));
        assert!(qs.iter().any(|q| q.setting.contains("attrs=pl+pos+word")));
        assert!(qs.iter().any(|q| q.setting.contains(" wc ")));
        assert!(qs.iter().any(|q| q.setting.contains("free")));
        assert!(qs.iter().any(|q| q.setting.contains("tree n=10")));
        // SUBTREE-supported subset (no words, no wildcards) is large but
        // partial, as in the paper.
        let supported = qs
            .iter()
            .filter(|q| !q.pattern.has_word() && !q.pattern.has_wildcard())
            .count();
        assert!(supported > 100 && supported < 350, "{supported}");
    }
}
