//! Wikipedia-like article generator (§6.2–6.3).
//!
//! Controls the three selectivity classes of Table 2's queries:
//! * **Chocolate** (low, <1% of articles): `"<Type> chocolate is a type of
//!   chocolate …"` sentences appear in a small fraction of articles;
//! * **Title** (medium, ≈10%): `"<Person> had been called <Nick> for
//!   years."`;
//! * **DateOfBirth** (high, >70%): biography articles with born/married
//!   sentences mentioning persons and dates.

use crate::{pick, rng};
use koko_nlp::gazetteer as gaz;
use rand::rngs::StdRng;
use rand::Rng;

/// Selectivity knobs (fractions of articles containing each pattern).
#[derive(Debug, Clone, Copy)]
pub struct WikiSpec {
    pub chocolate_frac: f64,
    pub title_frac: f64,
    pub bio_frac: f64,
    pub min_sentences: usize,
    pub max_sentences: usize,
}

impl Default for WikiSpec {
    fn default() -> Self {
        WikiSpec {
            chocolate_frac: 0.008,
            title_frac: 0.10,
            bio_frac: 0.75,
            min_sentences: 6,
            max_sentences: 14,
        }
    }
}

/// Generate `n_articles` raw article texts.
pub fn generate(n_articles: usize, seed: u64) -> Vec<String> {
    generate_with(n_articles, seed, WikiSpec::default())
}

/// Generate with explicit selectivity knobs.
pub fn generate_with(n_articles: usize, seed: u64, spec: WikiSpec) -> Vec<String> {
    let mut r = rng(seed ^ 0x3134);
    (0..n_articles).map(|_| article(&mut r, spec)).collect()
}

fn person(r: &mut StdRng) -> String {
    format!("{} {}", pick(r, gaz::FIRST_NAMES), pick(r, gaz::LAST_NAMES))
}

fn year(r: &mut StdRng) -> u32 {
    r.gen_range(1850..2015)
}

fn article(r: &mut StdRng, spec: WikiSpec) -> String {
    let mut sentences: Vec<String> = Vec::new();
    let subject = person(r);
    let city = pick(r, gaz::CITIES).to_string();
    let country = pick(r, gaz::COUNTRIES).to_string();

    if r.gen_bool(spec.bio_frac) {
        sentences.push(format!("{subject} was born in {} .", year(r)));
        if r.gen_bool(0.6) {
            let spouse = person(r);
            sentences.push(format!(
                "He was married to {spouse} on {} {} {} in {city} .",
                r.gen_range(1..28),
                pick(r, gaz::MONTHS),
                year(r)
            ));
        }
        if r.gen_bool(0.4) {
            let child = pick(r, gaz::FIRST_NAMES);
            sentences.push(format!(
                "The couple had a daughter {child} born in {} .",
                year(r)
            ));
        }
    }
    if r.gen_bool(spec.title_frac) {
        let nick = pick(r, gaz::FIRST_NAMES);
        sentences.push(format!("{subject} had been called {nick} for years ."));
    }
    if r.gen_bool(spec.chocolate_frac) {
        let ty = pick(r, gaz::CHOCOLATE_TYPES);
        sentences.push(format!(
            "{ty} chocolate is a type of chocolate that is prepared for baking ."
        ));
    }

    // Filler facts until the article reaches its size.
    let target = r.gen_range(spec.min_sentences..=spec.max_sentences);
    while sentences.len() < target {
        sentences.push(filler(r, &subject, &city, &country));
    }
    // Deterministic shuffle of everything after the opening sentence.
    for i in (2..sentences.len()).rev() {
        let j = r.gen_range(1..=i);
        sentences.swap(i, j);
    }
    sentences.join(" ")
}

fn filler(r: &mut StdRng, subject: &str, city: &str, country: &str) -> String {
    match r.gen_range(0..8) {
        0 => format!("The city of {city} is in {country} ."),
        1 => format!("{subject} visited {city} in {} .", year(r)),
        2 => format!("{subject} wrote a book about {country} ."),
        3 => {
            let team = pick(r, gaz::TEAMS);
            format!("The {team} won the championship in {} .", year(r))
        }
        4 => format!("{subject} studied in {city} and worked in {country} ."),
        5 => {
            let food = pick(r, gaz::FOOD_NOUNS);
            format!("The region is famous for delicious {food} .")
        }
        6 => {
            let other = person(r);
            format!("{other} described the city as warm and friendly .")
        }
        7 => format!("Many people travel to {city} every year ."),
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(generate(20, 5), generate(20, 5));
        assert_ne!(generate(20, 5), generate(20, 6));
    }

    #[test]
    fn selectivities_track_spec() {
        let n = 600;
        let arts = generate(n, 11);
        let frac =
            |needle: &str| arts.iter().filter(|a| a.contains(needle)).count() as f64 / n as f64;
        let born = frac("born in");
        let called = frac("had been called");
        let choc = frac("is a type of chocolate");
        assert!(born > 0.6, "DateOfBirth selectivity high, got {born}");
        assert!(
            (0.04..0.2).contains(&called),
            "Title selectivity medium, got {called}"
        );
        assert!(choc < 0.05, "Chocolate selectivity low, got {choc}");
        assert!(choc > 0.0 || n < 200, "chocolate articles exist at scale");
    }

    #[test]
    fn articles_have_size() {
        let arts = generate(50, 2);
        for a in &arts {
            let sents = a.matches(" .").count();
            assert!(sents >= 5, "article too short: {a}");
        }
    }
}
