//! The serve wire protocol: newline-delimited JSON over TCP, one request
//! per line, one response line per request (see `docs/SERVING.md`).
//!
//! Requests:
//!
//! ```json
//! {"id": 1, "query": "extract ...", "cache": true}
//! {"id": 2, "cmd": "ping" | "stats" | "shutdown" | "compact"}
//! {"id": 3, "cmd": "add", "texts": ["one new document", "another"]}
//! ```
//!
//! `id` is optional (echoed back, default 0); `cache: false` bypasses the
//! compiled-query and result caches for that request only. `add` and
//! `compact` are the online-update commands: they mutate the served index
//! and are accepted only by a server started writable (see
//! `docs/SERVING.md`); a read-only server answers them with a structured
//! error. Responses always carry `"id"` and `"ok"`; query responses add
//! `"rows"` (the deterministic [`rows_json`] rendering) and `"profile"`.
//! Any line that is not valid JSON, or valid JSON that is not a request,
//! gets an `{"ok":false,"error":...}` response — the connection stays
//! open.

use crate::json::{self, write_escaped, write_f64, Json};
use koko_core::{Profile, QueryOutput, Row};

/// One decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Evaluate a query; `cache: false` bypasses both engine caches.
    Query {
        /// Client-chosen id, echoed in the response.
        id: u64,
        /// The KOKO query text.
        text: String,
        /// Consult/fill the compiled + result caches (default true).
        cache: bool,
    },
    /// Liveness probe.
    Ping {
        /// Client-chosen id, echoed in the response.
        id: u64,
    },
    /// Server + cache counters.
    Stats {
        /// Client-chosen id, echoed in the response.
        id: u64,
    },
    /// Stop the server after responding.
    Shutdown {
        /// Client-chosen id, echoed in the response.
        id: u64,
    },
    /// Ingest new documents into the live index (writable servers only).
    Add {
        /// Client-chosen id, echoed in the response.
        id: u64,
        /// Raw document texts, one document per entry.
        texts: Vec<String>,
    },
    /// Merge delta shards into balanced base shards (writable only).
    Compact {
        /// Client-chosen id, echoed in the response.
        id: u64,
    },
}

impl Request {
    /// The echoed request id.
    pub fn id(&self) -> u64 {
        match self {
            Request::Query { id, .. }
            | Request::Ping { id }
            | Request::Stats { id }
            | Request::Shutdown { id }
            | Request::Add { id, .. }
            | Request::Compact { id } => *id,
        }
    }

    /// Decode one request line. Returns a human-readable error for
    /// anything that is not a well-formed request.
    pub fn decode(line: &str) -> Result<Request, String> {
        let v = json::parse(line.trim()).map_err(|e| format!("bad json: {e}"))?;
        if !matches!(v, Json::Obj(_)) {
            return Err("request must be a json object".into());
        }
        let id = v.get("id").and_then(Json::as_f64).unwrap_or(0.0);
        if !(0.0..=9.0e15).contains(&id) || id.fract() != 0.0 {
            return Err("\"id\" must be a non-negative integer".into());
        }
        let id = id as u64;
        if let Some(q) = v.get("query") {
            let text = q
                .as_str()
                .ok_or_else(|| "\"query\" must be a string".to_string())?;
            let cache = match v.get("cache") {
                None => true,
                Some(c) => c
                    .as_bool()
                    .ok_or_else(|| "\"cache\" must be a boolean".to_string())?,
            };
            return Ok(Request::Query {
                id,
                text: text.to_string(),
                cache,
            });
        }
        match v.get("cmd").and_then(Json::as_str) {
            Some("ping") => Ok(Request::Ping { id }),
            Some("stats") => Ok(Request::Stats { id }),
            Some("shutdown") => Ok(Request::Shutdown { id }),
            Some("compact") => Ok(Request::Compact { id }),
            Some("add") => {
                let Some(Json::Arr(items)) = v.get("texts") else {
                    return Err("\"add\" needs a \"texts\" array".into());
                };
                let mut texts = Vec::with_capacity(items.len());
                for item in items {
                    match item.as_str() {
                        Some(s) => texts.push(s.to_string()),
                        None => return Err("\"texts\" entries must be strings".into()),
                    }
                }
                Ok(Request::Add { id, texts })
            }
            Some(other) => Err(format!("unknown cmd {other:?}")),
            None => Err("request needs \"query\" or \"cmd\"".into()),
        }
    }

    /// Encode a request as one protocol line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        match self {
            Request::Query { id, text, cache } => {
                out.push_str(&format!("{{\"id\":{id},\"query\":"));
                write_escaped(&mut out, text);
                if !cache {
                    out.push_str(",\"cache\":false");
                }
                out.push('}');
            }
            Request::Ping { id } => out.push_str(&format!("{{\"id\":{id},\"cmd\":\"ping\"}}")),
            Request::Stats { id } => out.push_str(&format!("{{\"id\":{id},\"cmd\":\"stats\"}}")),
            Request::Shutdown { id } => {
                out.push_str(&format!("{{\"id\":{id},\"cmd\":\"shutdown\"}}"))
            }
            Request::Add { id, texts } => {
                out.push_str(&format!("{{\"id\":{id},\"cmd\":\"add\",\"texts\":["));
                for (i, t) in texts.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(&mut out, t);
                }
                out.push_str("]}");
            }
            Request::Compact { id } => {
                out.push_str(&format!("{{\"id\":{id},\"cmd\":\"compact\"}}"))
            }
        }
        out
    }
}

/// Deterministic JSON rendering of result rows: a pure function of the
/// rows, shared by the server and by in-process evaluation, so "the served
/// bytes equal the sequential engine's bytes" is a direct string equality
/// (the conformance suite asserts exactly that).
pub fn rows_json(rows: &[Row]) -> String {
    let mut out = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"doc\":{},\"score\":", row.doc));
        write_f64(&mut out, row.score);
        out.push_str(",\"values\":[");
        for (j, v) in row.values.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_escaped(&mut out, &v.name);
            out.push_str(",\"text\":");
            write_escaped(&mut out, &v.text);
            out.push_str(&format!(
                ",\"sid\":{},\"start\":{},\"end\":{}}}",
                v.sid, v.start, v.end
            ));
        }
        out.push_str("]}");
    }
    out.push(']');
    out
}

/// JSON rendering of a [`Profile`]: stage timers in microseconds plus the
/// candidate/tuple and cache counters.
pub fn profile_json(p: &Profile) -> String {
    format!(
        "{{\"normalize_us\":{},\"dpli_us\":{},\"load_article_us\":{},\"gsp_us\":{},\"extract_us\":{},\"satisfying_us\":{},\"candidates\":{},\"delta_candidates\":{},\"raw_tuples\":{},\"compiled_cache_hits\":{},\"compiled_cache_misses\":{},\"result_cache_hits\":{},\"result_cache_misses\":{}}}",
        p.normalize.as_micros(),
        p.dpli.as_micros(),
        p.load_article.as_micros(),
        p.gsp.as_micros(),
        p.extract.as_micros(),
        p.satisfying.as_micros(),
        p.candidate_sentences,
        p.delta_candidates,
        p.raw_tuples,
        p.compiled_cache_hits,
        p.compiled_cache_misses,
        p.result_cache_hits,
        p.result_cache_misses,
    )
}

/// Encode a successful query response (no trailing newline).
pub fn ok_response(id: u64, out: &QueryOutput) -> String {
    format!(
        "{{\"id\":{id},\"ok\":true,\"num_rows\":{},\"rows\":{},\"profile\":{}}}",
        out.rows.len(),
        rows_json(&out.rows),
        profile_json(&out.profile),
    )
}

/// Encode an error response (no trailing newline).
pub fn err_response(id: u64, message: &str) -> String {
    let mut out = format!("{{\"id\":{id},\"ok\":false,\"error\":");
    write_escaped(&mut out, message);
    out.push('}');
    out
}

/// Extract the `"rows":[...]` payload of a response line, for callers
/// that want the byte-exact rows rendering without re-serializing.
pub fn response_rows(line: &str) -> Option<&str> {
    let start = line.find("\"rows\":")? + "\"rows\":".len();
    let rest = &line[start..];
    // The rows array is followed by `,"profile"` in every ok response.
    let end = rest.find(",\"profile\"")?;
    Some(&rest[..end])
}

#[cfg(test)]
mod tests {
    use super::*;
    use koko_core::OutValue;

    #[test]
    fn request_round_trip() {
        for req in [
            Request::Query {
                id: 7,
                text: "extract x:Entity from \"a\nb\" if ()".into(),
                cache: false,
            },
            Request::Query {
                id: 0,
                text: koko_lang::queries::EXAMPLE_2_1.into(),
                cache: true,
            },
            Request::Ping { id: 1 },
            Request::Stats { id: 2 },
            Request::Shutdown { id: 3 },
            Request::Add {
                id: 4,
                texts: vec![
                    "Anna ate cake.\nSecond line.".into(),
                    "go \"Falcons\"!".into(),
                ],
            },
            Request::Add {
                id: 5,
                texts: Vec::new(),
            },
            Request::Compact { id: 6 },
        ] {
            let line = req.encode();
            assert!(!line.contains('\n'), "one request = one line: {line:?}");
            assert_eq!(Request::decode(&line).unwrap(), req);
        }
    }

    #[test]
    fn decode_rejects_malformed() {
        for bad in [
            "",
            "not json",
            "[1,2]",
            "{\"cmd\":\"reboot\"}",
            "{\"query\":5}",
            "{\"query\":\"q\",\"cache\":\"yes\"}",
            "{\"id\":-1,\"cmd\":\"ping\"}",
            "{\"id\":1.5,\"cmd\":\"ping\"}",
            "{}",
            "{\"cmd\":\"add\"}",
            "{\"cmd\":\"add\",\"texts\":\"not an array\"}",
            "{\"cmd\":\"add\",\"texts\":[1,2]}",
        ] {
            assert!(Request::decode(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rows_rendering_is_deterministic_and_extractable() {
        let rows = vec![Row {
            doc: 3,
            score: 0.75,
            values: vec![OutValue {
                name: "e".into(),
                text: "chocolate \"ice\" cream".into(),
                sid: 9,
                start: 2,
                end: 5,
            }],
        }];
        let a = rows_json(&rows);
        let b = rows_json(&rows);
        assert_eq!(a, b);
        let out = QueryOutput {
            rows,
            profile: Profile::default(),
        };
        let line = ok_response(4, &out);
        assert_eq!(response_rows(&line), Some(a.as_str()));
        assert!(crate::json::parse(&line).is_ok(), "response is valid json");
    }

    #[test]
    fn error_response_is_valid_json() {
        let line = err_response(9, "parse error: \"oops\"\nline 2");
        let v = crate::json::parse(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert!(v
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("oops"));
    }
}
