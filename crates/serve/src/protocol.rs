//! The serve wire protocol: newline-delimited JSON over TCP, one request
//! per line, one response line per request (see `docs/SERVING.md`).
//!
//! Requests:
//!
//! ```json
//! {"id": 1, "query": "extract ...", "cache": true}
//! {"id": 4, "query": "extract ...", "opts": {"limit": 10, "min_score": 0.5}}
//! {"id": 5, "query": "extract ...", "auth": "tenant-name", "opts": {"stream": true}}
//! {"id": 2, "cmd": "ping" | "stats" | "shutdown" | "compact"}
//! {"id": 3, "cmd": "add", "texts": ["one new document", "another"]}
//! ```
//!
//! `id` is optional (echoed back, default 0); `cache: false` bypasses the
//! compiled-query and result caches for that request only. The optional
//! `opts` object carries per-request [`QueryRequest`] options — `limit`,
//! `offset`, `min_score`, `order` (`"doc"` | `"score_desc"`),
//! `deadline_ms`, `explain`, `stream` (see [`QueryOpts`]). The optional
//! `auth` field names the calling tenant; servers started with a tenant
//! table use it for admission control (token-bucket rate limits, bounded
//! queues, per-tenant request defaults) and answer over-budget requests
//! with a structured overload error ([`overload_response`]: `ok:false`
//! plus `code` 429/401, the offending `tenant`, and a `retry_after_ms`
//! hint — never a silent drop). `add` and
//! `compact` are the online-update commands: they mutate the served index
//! and are accepted only by a server started writable (see
//! `docs/SERVING.md`); a read-only server answers them with a structured
//! error. Responses always carry `"id"` and `"ok"`; query responses add
//! `"rows"` (the deterministic [`rows_json`] rendering) and `"profile"`.
//!
//! Streaming: a query with `opts.stream: true` is answered with a header
//! line ([`stream_header`]), zero or more chunk lines ([`stream_chunk`]),
//! and a trailer line ([`stream_trailer`]) instead of one response line.
//! Concatenating the chunk `rows` arrays reproduces the single-response
//! `rows` array byte-for-byte ([`stream_rows`] extracts a chunk's
//! payload). Frames of one stream are contiguous per connection but
//! interleave with *other* requests' responses under pipelining; match on
//! `id`.
//!
//! Backward compatibility: a query **without** `opts` is answered with
//! exactly the historical response shape (same keys, same order — see
//! [`ok_response`]). Only opts-bearing requests get the extended response
//! with `"total_matches"`, `"truncated"` and (when requested)
//! `"explain"` ([`opts_response`]).
//!
//! Any line that is not valid JSON, or valid JSON that is not a request,
//! gets an `{"ok":false,"error":...}` response — the connection stays
//! open.
//!
//! [`QueryRequest`]: koko_core::QueryRequest

use crate::json::{self, write_escaped, write_f64, Json};
use koko_core::{Explain, Profile, QueryOutput, Row};

/// Per-request query options carried by the wire `opts` object — the
/// protocol-level mirror of [`koko_core::QueryRequest`]. Every field is
/// optional; an absent field keeps the default semantics. A request with
/// `opts` present (even empty) is answered with the extended response
/// shape ([`opts_response`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryOpts {
    /// Return at most this many rows (top-k early termination engine-side).
    pub limit: Option<u64>,
    /// Skip this many rows of the ordered result first.
    pub offset: Option<u64>,
    /// Drop rows scoring below this floor (applied inside aggregation).
    pub min_score: Option<f64>,
    /// Row ordering; `None` means `DocOrder`.
    pub order: Option<WireOrder>,
    /// Per-request wall-clock budget in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Attach an explain report to the response.
    pub explain: bool,
    /// Stream the response as header/chunk/trailer frames instead of one
    /// line, so large row sets never buffer whole in server memory.
    pub stream: bool,
}

/// Wire spelling of [`koko_core::Order`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireOrder {
    /// `"doc"` — document order (the default).
    Doc,
    /// `"score_desc"` — highest score first, stable.
    ScoreDesc,
}

impl QueryOpts {
    /// True when every field is at its default (still answered with the
    /// extended response: presence of `opts` selects the shape).
    pub fn is_default(&self) -> bool {
        *self == QueryOpts::default()
    }

    /// Lower onto an engine [`QueryRequest`](koko_core::QueryRequest).
    pub fn to_request(&self, text: &str, cache: bool) -> koko_core::QueryRequest {
        let mut req = koko_core::QueryRequest::new(text).cache(cache);
        if let Some(limit) = self.limit {
            req = req.limit(usize::try_from(limit).unwrap_or(usize::MAX));
        }
        if let Some(offset) = self.offset {
            req = req.offset(usize::try_from(offset).unwrap_or(usize::MAX));
        }
        if let Some(min_score) = self.min_score {
            req = req.min_score(min_score);
        }
        if let Some(order) = self.order {
            req = req.order(match order {
                WireOrder::Doc => koko_core::Order::DocOrder,
                WireOrder::ScoreDesc => koko_core::Order::ScoreDesc,
            });
        }
        if let Some(ms) = self.deadline_ms {
            req = req.deadline(std::time::Duration::from_millis(ms));
        }
        req.explain(self.explain)
    }
}

/// One decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Evaluate a query; `cache: false` bypasses both engine caches.
    Query {
        /// Client-chosen id, echoed in the response.
        id: u64,
        /// The KOKO query text.
        text: String,
        /// Consult/fill the compiled + result caches (default true).
        cache: bool,
        /// Per-request options; `None` selects the historical
        /// byte-compatible response shape.
        opts: Option<QueryOpts>,
        /// Tenant name for admission control; `None` = anonymous. Only
        /// meaningful on servers configured with a tenant table.
        auth: Option<String>,
    },
    /// Liveness probe.
    Ping {
        /// Client-chosen id, echoed in the response.
        id: u64,
    },
    /// Server + cache counters.
    Stats {
        /// Client-chosen id, echoed in the response.
        id: u64,
    },
    /// Stop the server after responding.
    Shutdown {
        /// Client-chosen id, echoed in the response.
        id: u64,
    },
    /// Ingest new documents into the live index (writable servers only).
    Add {
        /// Client-chosen id, echoed in the response.
        id: u64,
        /// Raw document texts, one document per entry.
        texts: Vec<String>,
    },
    /// Merge delta shards into balanced base shards (writable only).
    Compact {
        /// Client-chosen id, echoed in the response.
        id: u64,
    },
}

impl Request {
    /// The echoed request id.
    pub fn id(&self) -> u64 {
        match self {
            Request::Query { id, .. }
            | Request::Ping { id }
            | Request::Stats { id }
            | Request::Shutdown { id }
            | Request::Add { id, .. }
            | Request::Compact { id } => *id,
        }
    }

    /// Decode one request line. Returns a human-readable error for
    /// anything that is not a well-formed request.
    pub fn decode(line: &str) -> Result<Request, String> {
        let v = json::parse(line.trim()).map_err(|e| format!("bad json: {e}"))?;
        if !matches!(v, Json::Obj(_)) {
            return Err("request must be a json object".into());
        }
        let id = v.get("id").and_then(Json::as_f64).unwrap_or(0.0);
        if !(0.0..=9.0e15).contains(&id) || id.fract() != 0.0 {
            return Err("\"id\" must be a non-negative integer".into());
        }
        let id = id as u64;
        if let Some(q) = v.get("query") {
            let text = q
                .as_str()
                .ok_or_else(|| "\"query\" must be a string".to_string())?;
            let cache = match v.get("cache") {
                None => true,
                Some(c) => c
                    .as_bool()
                    .ok_or_else(|| "\"cache\" must be a boolean".to_string())?,
            };
            let opts = match v.get("opts") {
                None => None,
                Some(o) => Some(decode_opts(o)?),
            };
            let auth = match v.get("auth") {
                None => None,
                Some(a) => {
                    let a = a
                        .as_str()
                        .ok_or_else(|| "\"auth\" must be a string".to_string())?;
                    if a.is_empty() {
                        return Err("\"auth\" must be a non-empty string".into());
                    }
                    Some(a.to_string())
                }
            };
            return Ok(Request::Query {
                id,
                text: text.to_string(),
                cache,
                opts,
                auth,
            });
        }
        match v.get("cmd").and_then(Json::as_str) {
            Some("ping") => Ok(Request::Ping { id }),
            Some("stats") => Ok(Request::Stats { id }),
            Some("shutdown") => Ok(Request::Shutdown { id }),
            Some("compact") => Ok(Request::Compact { id }),
            Some("add") => {
                let Some(Json::Arr(items)) = v.get("texts") else {
                    return Err("\"add\" needs a \"texts\" array".into());
                };
                let mut texts = Vec::with_capacity(items.len());
                for item in items {
                    match item.as_str() {
                        Some(s) => texts.push(s.to_string()),
                        None => return Err("\"texts\" entries must be strings".into()),
                    }
                }
                Ok(Request::Add { id, texts })
            }
            Some(other) => Err(format!("unknown cmd {other:?}")),
            None => Err("request needs \"query\" or \"cmd\"".into()),
        }
    }

    /// Encode a request as one protocol line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        match self {
            Request::Query {
                id,
                text,
                cache,
                opts,
                auth,
            } => {
                out.push_str(&format!("{{\"id\":{id},\"query\":"));
                write_escaped(&mut out, text);
                if !cache {
                    out.push_str(",\"cache\":false");
                }
                if let Some(auth) = auth {
                    out.push_str(",\"auth\":");
                    write_escaped(&mut out, auth);
                }
                if let Some(opts) = opts {
                    out.push_str(",\"opts\":");
                    encode_opts(&mut out, opts);
                }
                out.push('}');
            }
            Request::Ping { id } => out.push_str(&format!("{{\"id\":{id},\"cmd\":\"ping\"}}")),
            Request::Stats { id } => out.push_str(&format!("{{\"id\":{id},\"cmd\":\"stats\"}}")),
            Request::Shutdown { id } => {
                out.push_str(&format!("{{\"id\":{id},\"cmd\":\"shutdown\"}}"))
            }
            Request::Add { id, texts } => {
                out.push_str(&format!("{{\"id\":{id},\"cmd\":\"add\",\"texts\":["));
                for (i, t) in texts.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(&mut out, t);
                }
                out.push_str("]}");
            }
            Request::Compact { id } => {
                out.push_str(&format!("{{\"id\":{id},\"cmd\":\"compact\"}}"))
            }
        }
        out
    }
}

/// Decode a wire `opts` object. Strict: unknown keys, wrong types, and
/// out-of-range values are errors (so typos fail loudly instead of
/// silently running with default semantics).
fn decode_opts(v: &Json) -> Result<QueryOpts, String> {
    let Json::Obj(fields) = v else {
        return Err("\"opts\" must be a json object".into());
    };
    let uint = |value: &Json, key: &str| -> Result<u64, String> {
        let n = value
            .as_f64()
            .ok_or_else(|| format!("\"{key}\" must be a non-negative integer"))?;
        if !(0.0..=9.0e15).contains(&n) || n.fract() != 0.0 {
            return Err(format!("\"{key}\" must be a non-negative integer"));
        }
        Ok(n as u64)
    };
    let mut opts = QueryOpts::default();
    for (key, value) in fields {
        match key.as_str() {
            "limit" => opts.limit = Some(uint(value, "limit")?),
            "offset" => opts.offset = Some(uint(value, "offset")?),
            "min_score" => {
                let s = value
                    .as_f64()
                    .ok_or_else(|| "\"min_score\" must be a number".to_string())?;
                if !s.is_finite() {
                    return Err("\"min_score\" must be a finite number".into());
                }
                opts.min_score = Some(s);
            }
            "order" => {
                opts.order = Some(match value.as_str() {
                    Some("doc") => WireOrder::Doc,
                    Some("score_desc") => WireOrder::ScoreDesc,
                    _ => return Err("\"order\" must be \"doc\" or \"score_desc\"".into()),
                })
            }
            "deadline_ms" => opts.deadline_ms = Some(uint(value, "deadline_ms")?),
            "explain" => {
                opts.explain = value
                    .as_bool()
                    .ok_or_else(|| "\"explain\" must be a boolean".to_string())?
            }
            "stream" => {
                opts.stream = value
                    .as_bool()
                    .ok_or_else(|| "\"stream\" must be a boolean".to_string())?
            }
            other => return Err(format!("unknown opts key {other:?}")),
        }
    }
    Ok(opts)
}

/// Canonical encoding of a wire `opts` object (field order fixed).
fn encode_opts(out: &mut String, opts: &QueryOpts) {
    out.push('{');
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
    };
    if let Some(limit) = opts.limit {
        sep(out);
        out.push_str(&format!("\"limit\":{limit}"));
    }
    if let Some(offset) = opts.offset {
        sep(out);
        out.push_str(&format!("\"offset\":{offset}"));
    }
    if let Some(min_score) = opts.min_score {
        sep(out);
        out.push_str("\"min_score\":");
        write_f64(out, min_score);
    }
    if let Some(order) = opts.order {
        sep(out);
        out.push_str(match order {
            WireOrder::Doc => "\"order\":\"doc\"",
            WireOrder::ScoreDesc => "\"order\":\"score_desc\"",
        });
    }
    if let Some(ms) = opts.deadline_ms {
        sep(out);
        out.push_str(&format!("\"deadline_ms\":{ms}"));
    }
    if opts.explain {
        sep(out);
        out.push_str("\"explain\":true");
    }
    if opts.stream {
        sep(out);
        out.push_str("\"stream\":true");
    }
    out.push('}');
}

/// Deterministic JSON rendering of result rows: a pure function of the
/// rows, shared by the server and by in-process evaluation, so "the served
/// bytes equal the sequential engine's bytes" is a direct string equality
/// (the conformance suite asserts exactly that).
pub fn rows_json(rows: &[Row]) -> String {
    let mut out = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"doc\":{},\"score\":", row.doc));
        write_f64(&mut out, row.score);
        out.push_str(",\"values\":[");
        for (j, v) in row.values.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_escaped(&mut out, &v.name);
            out.push_str(",\"text\":");
            write_escaped(&mut out, &v.text);
            out.push_str(&format!(
                ",\"sid\":{},\"start\":{},\"end\":{}}}",
                v.sid, v.start, v.end
            ));
        }
        out.push_str("]}");
    }
    out.push(']');
    out
}

/// JSON rendering of a [`Profile`]: stage timers in microseconds plus the
/// candidate/tuple and cache counters.
pub fn profile_json(p: &Profile) -> String {
    let mut out = format!(
        "{{\"normalize_us\":{},\"dpli_us\":{},\"load_article_us\":{},\"gsp_us\":{},\"extract_us\":{},\"satisfying_us\":{},\"candidates\":{},\"delta_candidates\":{},\"raw_tuples\":{},\"compiled_cache_hits\":{},\"compiled_cache_misses\":{},\"result_cache_hits\":{},\"result_cache_misses\":{}",
        p.normalize.as_micros(),
        p.dpli.as_micros(),
        p.load_article.as_micros(),
        p.gsp.as_micros(),
        p.extract.as_micros(),
        p.satisfying.as_micros(),
        p.candidate_sentences,
        p.delta_candidates,
        p.raw_tuples,
        p.compiled_cache_hits,
        p.compiled_cache_misses,
        p.result_cache_hits,
        p.result_cache_misses,
    );
    // Present only on coordinator-answered queries: single-node profile
    // lines keep the exact legacy byte shape.
    if p.remote_shards > 0 {
        out.push_str(&format!(
            ",\"remote_shards\":{},\"remote_wait_us\":{}",
            p.remote_shards,
            p.remote_wait.as_micros()
        ));
    }
    out.push('}');
    out
}

/// Encode a successful query response (no trailing newline).
pub fn ok_response(id: u64, out: &QueryOutput) -> String {
    format!(
        "{{\"id\":{id},\"ok\":true,\"num_rows\":{},\"rows\":{},\"profile\":{}}}",
        out.rows.len(),
        rows_json(&out.rows),
        profile_json(&out.profile),
    )
}

/// Encode the extended response for an opts-bearing query request (no
/// trailing newline): the legacy shape plus `"total_matches"` and
/// `"truncated"` before the rows, and — when the request asked for one —
/// the `"explain"` report after the profile. Requests without `opts`
/// must keep using [`ok_response`] (bit-compatible with older clients).
pub fn opts_response(id: u64, out: &QueryOutput) -> String {
    let mut line = format!(
        "{{\"id\":{id},\"ok\":true,\"num_rows\":{},\"total_matches\":{},\"truncated\":{},\"rows\":{},\"profile\":{}",
        out.rows.len(),
        out.total_matches,
        out.truncated,
        rows_json(&out.rows),
        profile_json(&out.profile),
    );
    if let Some(explain) = &out.explain {
        line.push_str(",\"explain\":");
        line.push_str(&explain_json(explain));
    }
    line.push('}');
    line
}

/// JSON rendering of an [`Explain`] report: the chosen skip plans and the
/// per-shard evaluation counters.
pub fn explain_json(e: &Explain) -> String {
    let mut out = String::from("{\"plans\":[");
    for (i, plan) in e.plans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_escaped(&mut out, plan);
    }
    out.push_str("],\"shards\":[");
    for (i, s) in e.shards.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"shard\":{},\"delta\":{},\"lookups\":{},\"candidates\":{},\"docs\":{},\"docs_processed\":{},\"tuples\":{},\"rows\":{},\"min_score_pruned\":{},\"early_stopped\":{}",
            s.shard,
            s.is_delta,
            s.lookups,
            s.candidates,
            s.docs,
            s.docs_processed,
            s.tuples,
            s.rows,
            s.min_score_pruned,
            s.early_stopped,
        ));
        out.push_str(",\"score_bound\":");
        write_f64(&mut out, s.score_bound);
        out.push_str(",\"heap_floor\":");
        match s.heap_floor {
            Some(floor) => write_f64(&mut out, floor),
            None => out.push_str("null"),
        }
        out.push_str(&format!(
            ",\"bound_skipped_docs\":{},\"block_bound_skipped_docs\":{},\"probes\":{}}}",
            s.bound_skipped_docs, s.block_bound_skipped_docs, s.probes
        ));
    }
    out.push(']');
    // Coordinator fan-out accounting. Rendered only when present so every
    // single-node explain line stays byte-identical to the pre-cluster
    // wire shape (guarded by `legacy_response_shape_is_unchanged_…`).
    if !e.remote_shards.is_empty() {
        out.push_str(",\"remote_shards\":[");
        for (i, w) in e.remote_shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"worker\":");
            write_escaped(&mut out, &w.worker);
            out.push_str(",\"addr\":");
            write_escaped(&mut out, &w.addr);
            out.push_str(&format!(
                ",\"doc_base\":{},\"docs\":{},\"rows\":{},\"rtt_ms\":",
                w.doc_base, w.docs, w.rows
            ));
            write_f64(&mut out, w.rtt_ms);
            out.push_str(",\"retries\":");
            out.push_str(&w.retries.to_string());
            out.push_str(",\"error\":");
            match &w.error {
                Some(msg) => write_escaped(&mut out, msg),
                None => out.push_str("null"),
            }
            out.push('}');
        }
        out.push(']');
    }
    out.push('}');
    out
}

/// Encode an error response (no trailing newline).
pub fn err_response(id: u64, message: &str) -> String {
    let mut out = format!("{{\"id\":{id},\"ok\":false,\"error\":");
    write_escaped(&mut out, message);
    out.push('}');
    out
}

/// Encode a structured admission-control error (no trailing newline):
/// the HTTP-equivalent `code` (401 for an unknown tenant, 429 for
/// rate/queue overload), the offending `tenant` (or `null` for
/// anonymous callers), and a `retry_after_ms` hint when the refusal is
/// transient. Overloaded requests are always *answered* — never
/// silently dropped.
pub fn overload_response(
    id: u64,
    tenant: Option<&str>,
    overload: &koko_core::tenant::Overload,
) -> String {
    use koko_core::tenant::Overload;
    let mut out = format!("{{\"id\":{id},\"ok\":false,\"error\":");
    let (message, code) = match overload {
        Overload::UnknownTenant => ("unknown tenant", 401u32),
        Overload::RateLimited { .. } => ("rate limited", 429),
        Overload::QueueFull { .. } => ("admission queue full", 429),
    };
    write_escaped(&mut out, message);
    out.push_str(&format!(",\"code\":{code},\"tenant\":"));
    match tenant {
        Some(name) => write_escaped(&mut out, name),
        None => out.push_str("null"),
    }
    match overload {
        Overload::RateLimited { retry_after } => {
            // Round up so the client never retries a hair too early.
            let ms = retry_after.as_millis().max(1);
            out.push_str(&format!(",\"retry_after_ms\":{ms}"));
        }
        Overload::QueueFull { max_queue } => {
            out.push_str(&format!(",\"max_queue\":{max_queue}"));
        }
        Overload::UnknownTenant => {}
    }
    out.push('}');
    out
}

/// Encode the header frame of a streamed query response: the row totals
/// up front so clients can size buffers, `"stream":true` marking the
/// frame kind. Chunks ([`stream_chunk`]) and a trailer
/// ([`stream_trailer`]) follow on the same connection.
pub fn stream_header(id: u64, out: &QueryOutput) -> String {
    format!(
        "{{\"id\":{id},\"ok\":true,\"stream\":true,\"num_rows\":{},\"total_matches\":{},\"truncated\":{}}}",
        out.rows.len(),
        out.total_matches,
        out.truncated,
    )
}

/// Encode one chunk frame of a streamed response: `chunk` is the
/// 0-based sequence number, `rows` the slice rendered with the same
/// canonical [`rows_json`] as single-line responses — concatenating all
/// chunks' row arrays is byte-identical to the unstreamed `rows`.
pub fn stream_chunk(id: u64, chunk: usize, rows: &[Row]) -> String {
    format!(
        "{{\"id\":{id},\"ok\":true,\"chunk\":{chunk},\"rows\":{}}}",
        rows_json(rows)
    )
}

/// Encode the trailer frame of a streamed response: `"done":true`, the
/// chunk count for integrity checking, then the profile and (when
/// requested) the explain report — the fields a single-line extended
/// response carries after its rows.
pub fn stream_trailer(id: u64, chunks: usize, out: &QueryOutput) -> String {
    let mut line = format!(
        "{{\"id\":{id},\"ok\":true,\"done\":true,\"chunks\":{chunks},\"profile\":{}",
        profile_json(&out.profile),
    );
    if let Some(explain) = &out.explain {
        line.push_str(",\"explain\":");
        line.push_str(&explain_json(explain));
    }
    line.push('}');
    line
}

/// Extract the `"rows":[...]` payload of a [`stream_chunk`] frame (the
/// array runs to the frame's closing brace).
pub fn stream_rows(line: &str) -> Option<&str> {
    let start = line.find("\"rows\":")? + "\"rows\":".len();
    let rest = &line[start..];
    let end = rest.rfind(']')?;
    Some(&rest[..=end])
}

/// Extract the `"rows":[...]` payload of a response line, for callers
/// that want the byte-exact rows rendering without re-serializing.
pub fn response_rows(line: &str) -> Option<&str> {
    let start = line.find("\"rows\":")? + "\"rows\":".len();
    let rest = &line[start..];
    // The rows array is followed by `,"profile"` in every ok response.
    let end = rest.find(",\"profile\"")?;
    Some(&rest[..end])
}

#[cfg(test)]
mod tests {
    use super::*;
    use koko_core::OutValue;

    #[test]
    fn request_round_trip() {
        for req in [
            Request::Query {
                id: 7,
                text: "extract x:Entity from \"a\nb\" if ()".into(),
                cache: false,
                opts: None,
                auth: None,
            },
            Request::Query {
                id: 0,
                text: koko_lang::queries::EXAMPLE_2_1.into(),
                cache: true,
                opts: None,
                auth: None,
            },
            Request::Query {
                id: 8,
                text: "extract x:Entity from t if ()".into(),
                cache: true,
                opts: Some(QueryOpts::default()),
                auth: None,
            },
            Request::Query {
                id: 9,
                text: "extract x:Entity from t if ()".into(),
                cache: false,
                opts: Some(QueryOpts {
                    limit: Some(10),
                    offset: Some(2),
                    min_score: Some(0.5),
                    order: Some(WireOrder::ScoreDesc),
                    deadline_ms: Some(250),
                    explain: true,
                    stream: false,
                }),
                auth: Some("tenant \"a\"/7".into()),
            },
            Request::Query {
                id: 10,
                text: "q".into(),
                cache: true,
                opts: Some(QueryOpts {
                    order: Some(WireOrder::Doc),
                    stream: true,
                    ..QueryOpts::default()
                }),
                auth: Some("alice".into()),
            },
            Request::Ping { id: 1 },
            Request::Stats { id: 2 },
            Request::Shutdown { id: 3 },
            Request::Add {
                id: 4,
                texts: vec![
                    "Anna ate cake.\nSecond line.".into(),
                    "go \"Falcons\"!".into(),
                ],
            },
            Request::Add {
                id: 5,
                texts: Vec::new(),
            },
            Request::Compact { id: 6 },
        ] {
            let line = req.encode();
            assert!(!line.contains('\n'), "one request = one line: {line:?}");
            assert_eq!(Request::decode(&line).unwrap(), req);
        }
    }

    #[test]
    fn decode_rejects_malformed() {
        for bad in [
            "",
            "not json",
            "[1,2]",
            "{\"cmd\":\"reboot\"}",
            "{\"query\":5}",
            "{\"query\":\"q\",\"cache\":\"yes\"}",
            "{\"id\":-1,\"cmd\":\"ping\"}",
            "{\"id\":1.5,\"cmd\":\"ping\"}",
            "{}",
            "{\"cmd\":\"add\"}",
            "{\"cmd\":\"add\",\"texts\":\"not an array\"}",
            "{\"cmd\":\"add\",\"texts\":[1,2]}",
            "{\"query\":\"q\",\"opts\":5}",
            "{\"query\":\"q\",\"opts\":{\"limit\":-1}}",
            "{\"query\":\"q\",\"opts\":{\"limit\":1.5}}",
            "{\"query\":\"q\",\"opts\":{\"min_score\":\"high\"}}",
            "{\"query\":\"q\",\"opts\":{\"order\":\"sideways\"}}",
            "{\"query\":\"q\",\"opts\":{\"explain\":1}}",
            "{\"query\":\"q\",\"opts\":{\"limitt\":3}}",
            "{\"query\":\"q\",\"opts\":{\"deadline_ms\":-5}}",
            "{\"query\":\"q\",\"opts\":{\"stream\":1}}",
            "{\"query\":\"q\",\"auth\":5}",
            "{\"query\":\"q\",\"auth\":\"\"}",
        ] {
            assert!(Request::decode(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rows_rendering_is_deterministic_and_extractable() {
        let rows = vec![Row {
            doc: 3,
            score: 0.75,
            values: vec![OutValue {
                name: "e".into(),
                text: "chocolate \"ice\" cream".into(),
                sid: 9,
                start: 2,
                end: 5,
            }],
        }];
        let a = rows_json(&rows);
        let b = rows_json(&rows);
        assert_eq!(a, b);
        let out = QueryOutput {
            rows,
            ..QueryOutput::default()
        };
        let line = ok_response(4, &out);
        assert_eq!(response_rows(&line), Some(a.as_str()));
        assert!(crate::json::parse(&line).is_ok(), "response is valid json");
    }

    #[test]
    fn legacy_response_shape_is_unchanged_and_extended_shape_adds_fields() {
        let out = QueryOutput {
            rows: vec![],
            total_matches: 7,
            truncated: true,
            explain: Some(koko_core::Explain {
                plans: vec!["e = a + [skip b: derived from neighbours]".into()],
                shards: vec![koko_core::ShardExplain {
                    shard: 0,
                    candidates: 3,
                    docs: 2,
                    docs_processed: 1,
                    early_stopped: true,
                    score_bound: 1.3,
                    heap_floor: Some(0.5),
                    bound_skipped_docs: 1,
                    block_bound_skipped_docs: 2,
                    probes: 9,
                    ..koko_core::ShardExplain::default()
                }],
                remote_shards: vec![],
            }),
            profile: Profile::default(),
        };
        // Legacy shape: no new keys, even though the output carries them.
        let legacy = ok_response(1, &out);
        assert!(!legacy.contains("total_matches"), "{legacy}");
        assert!(!legacy.contains("truncated"), "{legacy}");
        assert!(!legacy.contains("explain"), "{legacy}");
        // Extended shape: totals before rows, explain after profile, and
        // `response_rows` still extracts the rows payload.
        let extended = opts_response(1, &out);
        assert!(
            extended.contains("\"total_matches\":7,\"truncated\":true,\"rows\":"),
            "{extended}"
        );
        assert!(extended.contains("\"explain\":{\"plans\":["), "{extended}");
        assert!(
            extended.contains(
                "\"early_stopped\":true,\"score_bound\":1.3,\"heap_floor\":0.5,\"bound_skipped_docs\":1,\"block_bound_skipped_docs\":2,\"probes\":9"
            ),
            "{extended}"
        );
        assert_eq!(response_rows(&extended), Some("[]"));
        assert!(crate::json::parse(&extended).is_ok(), "valid json");
    }

    #[test]
    fn cluster_fields_render_only_on_coordinator_answers() {
        // Single-node: neither profile nor explain may grow new keys.
        let p = Profile::default();
        assert!(!profile_json(&p).contains("remote"), "{}", profile_json(&p));
        // Coordinator: the remote accounting appears, appended after the
        // legacy keys so existing parsers keep working.
        let p = Profile {
            remote_shards: 2,
            remote_wait: std::time::Duration::from_millis(3),
            ..Profile::default()
        };
        assert!(
            profile_json(&p).ends_with(",\"remote_shards\":2,\"remote_wait_us\":3000}"),
            "{}",
            profile_json(&p)
        );
        let e = koko_core::Explain {
            plans: vec![],
            shards: vec![],
            remote_shards: vec![koko_core::RemoteShardExplain {
                worker: "w0".into(),
                addr: "127.0.0.1:4101".into(),
                doc_base: 0,
                docs: 4,
                rows: 2,
                rtt_ms: 1.5,
                error: None,
                retries: 0,
            }],
        };
        let json = explain_json(&e);
        assert!(
            json.contains(
                "\"remote_shards\":[{\"worker\":\"w0\",\"addr\":\"127.0.0.1:4101\",\"doc_base\":0,\"docs\":4,\"rows\":2,\"rtt_ms\":1.5,\"retries\":0,\"error\":null}]"
            ),
            "{json}"
        );
        assert!(crate::json::parse(&json).is_ok(), "valid json");
        // A failed worker renders its structured error.
        let e = koko_core::Explain {
            remote_shards: vec![koko_core::RemoteShardExplain {
                worker: "w1".into(),
                error: Some("timeout".into()),
                retries: 2,
                ..koko_core::RemoteShardExplain::default()
            }],
            ..koko_core::Explain::default()
        };
        assert!(
            explain_json(&e).contains("\"retries\":2,\"error\":\"timeout\""),
            "{}",
            explain_json(&e)
        );
    }

    #[test]
    fn streamed_frames_reassemble_to_the_single_response_rows() {
        let row = |doc: u32, score: f64| Row {
            doc,
            score,
            values: vec![OutValue {
                name: "e".into(),
                text: format!("value {doc}"),
                sid: doc,
                start: 0,
                end: 2,
            }],
        };
        let out = QueryOutput {
            rows: (0..10).map(|i| row(i, 0.5)).collect(),
            total_matches: 12,
            truncated: true,
            ..QueryOutput::default()
        };

        let header = stream_header(42, &out);
        assert_eq!(
            header,
            "{\"id\":42,\"ok\":true,\"stream\":true,\"num_rows\":10,\
             \"total_matches\":12,\"truncated\":true}"
        );
        assert!(crate::json::parse(&header).is_ok());

        // Chunk at an arbitrary boundary; concatenated inner arrays must
        // equal the canonical single-response rendering byte-for-byte.
        let mut rebuilt = String::from("[");
        let mut chunks = 0;
        for (i, slice) in out.rows.chunks(3).enumerate() {
            let frame = stream_chunk(42, i, slice);
            assert!(crate::json::parse(&frame).is_ok(), "{frame}");
            let rows = stream_rows(&frame).unwrap();
            assert!(rows.starts_with('[') && rows.ends_with(']'));
            if rebuilt.len() > 1 && rows.len() > 2 {
                rebuilt.push(',');
            }
            rebuilt.push_str(&rows[1..rows.len() - 1]);
            chunks += 1;
        }
        rebuilt.push(']');
        assert_eq!(rebuilt, rows_json(&out.rows));

        let trailer = stream_trailer(42, chunks, &out);
        assert!(trailer.contains("\"done\":true,\"chunks\":4,\"profile\":{"));
        assert!(!trailer.contains("explain"), "no explain requested");
        assert!(crate::json::parse(&trailer).is_ok());

        // An empty result still has a well-formed (chunkless) stream.
        let empty = QueryOutput::default();
        assert!(stream_header(1, &empty).contains("\"num_rows\":0"));
        assert!(stream_trailer(1, 0, &empty).contains("\"chunks\":0"));
    }

    #[test]
    fn overload_responses_are_structured_json() {
        use koko_core::tenant::Overload;
        let line = overload_response(
            3,
            Some("alice"),
            &Overload::RateLimited {
                retry_after: std::time::Duration::from_millis(120),
            },
        );
        assert_eq!(
            line,
            "{\"id\":3,\"ok\":false,\"error\":\"rate limited\",\"code\":429,\
             \"tenant\":\"alice\",\"retry_after_ms\":120}"
        );
        let v = crate::json::parse(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));

        let line = overload_response(4, Some("bob"), &Overload::QueueFull { max_queue: 8 });
        assert!(line.contains("\"code\":429") && line.contains("\"max_queue\":8"));

        let line = overload_response(5, None, &Overload::UnknownTenant);
        assert!(line.contains("\"code\":401") && line.contains("\"tenant\":null"));
        assert!(crate::json::parse(&line).is_ok());

        // Sub-millisecond retry hints round up, never to zero.
        let line = overload_response(
            6,
            Some("c"),
            &Overload::RateLimited {
                retry_after: std::time::Duration::from_micros(10),
            },
        );
        assert!(line.contains("\"retry_after_ms\":1"), "{line}");
    }

    #[test]
    fn wire_opts_lower_onto_query_requests() {
        let opts = QueryOpts {
            limit: Some(3),
            offset: Some(1),
            min_score: Some(0.25),
            order: Some(WireOrder::ScoreDesc),
            deadline_ms: Some(100),
            explain: true,
            stream: false,
        };
        let req = opts.to_request("q", false);
        assert_eq!(
            req,
            koko_core::QueryRequest::new("q")
                .cache(false)
                .limit(3)
                .offset(1)
                .min_score(0.25)
                .order(koko_core::Order::ScoreDesc)
                .deadline(std::time::Duration::from_millis(100))
                .explain(true)
        );
        assert!(QueryOpts::default().is_default());
        assert!(!opts.is_default());
        assert_eq!(
            QueryOpts::default().to_request("q", true),
            koko_core::QueryRequest::new("q")
        );
    }

    #[test]
    fn error_response_is_valid_json() {
        let line = err_response(9, "parse error: \"oops\"\nline 2");
        let v = crate::json::parse(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert!(v
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("oops"));
    }
}
