//! A minimal JSON value, parser and writer — just enough for the serve
//! protocol, with no dependencies (the workspace is offline by policy).
//!
//! The parser is total: any byte string returns `Ok` or a structured
//! [`JsonError`], never a panic (the server feeds it raw network input,
//! and the fuzz suite holds it to that). Nesting depth is bounded so
//! adversarial input cannot blow the stack.

use std::fmt;

/// Maximum nesting depth the parser accepts.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (duplicate keys keep the last value
    /// on lookup, matching common JSON semantics).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (last duplicate wins); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and the byte offset it went wrong at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub position: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.position)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err("trailing characters after value", pos));
    }
    Ok(value)
}

fn err(message: &str, position: usize) -> JsonError {
    JsonError {
        message: message.to_string(),
        position,
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth > MAX_DEPTH {
        return Err(err("nesting too deep", *pos));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'{') => parse_obj(bytes, pos, depth),
        Some(b'[') => parse_arr(bytes, pos, depth),
        Some(b'"') => parse_str(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(bytes, pos),
        Some(_) => Err(err("unexpected character", *pos)),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err("bad literal", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err("bad number", start))?;
    let n: f64 = text.parse().map_err(|_| err("bad number", start))?;
    if !n.is_finite() {
        return Err(err("number out of range", start));
    }
    Ok(Json::Num(n))
}

/// Four hex digits at `at`, as a code unit.
fn read_hex4(bytes: &[u8], at: usize) -> Option<u32> {
    let hex = bytes
        .get(at..at + 4)
        .and_then(|h| std::str::from_utf8(h).ok())?;
    u32::from_str_radix(hex, 16).ok()
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    let start = *pos;
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err("unterminated string", start)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut cp = read_hex4(bytes, *pos + 1)
                            .ok_or_else(|| err("bad \\u escape", *pos))?;
                        *pos += 4;
                        // High surrogate: combine with a following
                        // `\uDC00..\uDFFF` escape (standard JSON encoders
                        // emit non-BMP characters as surrogate pairs).
                        if (0xd800..0xdc00).contains(&cp)
                            && bytes.get(*pos + 1) == Some(&b'\\')
                            && bytes.get(*pos + 2) == Some(&b'u')
                        {
                            if let Some(lo) = read_hex4(bytes, *pos + 3) {
                                if (0xdc00..0xe000).contains(&lo) {
                                    cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                    *pos += 6;
                                }
                            }
                        }
                        // Lone surrogates map to the replacement
                        // character rather than failing.
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(err("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is &str, so boundaries
                // are sound; step by the encoded length).
                let rest = &bytes[*pos..];
                let s = unsafe { std::str::from_utf8_unchecked(rest) };
                let ch = s.chars().next().ok_or_else(|| err("bad utf-8", *pos))?;
                if (ch as u32) < 0x20 {
                    return Err(err("raw control character in string", *pos));
                }
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err("expected ',' or ']'", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err("expected object key", *pos));
        }
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err("expected ':'", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(err("expected ',' or '}'", *pos)),
        }
    }
}

/// Append `s` to `out` as a JSON string literal (quotes included).
/// Escaping is canonical — the same input always yields the same bytes —
/// which the byte-identical serving conformance relies on.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a JSON rendering of an `f64`. Integral values print without a
/// fraction (`3` not `3.0`); the rest use Rust's shortest round-trip
/// formatting. Non-finite values (never produced by the engine) become
/// `null` so the output stays valid JSON.
pub fn write_f64(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n:?}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("3.5").unwrap(), Json::Num(3.5));
        assert_eq!(parse("-2").unwrap(), Json::Num(-2.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested() {
        let v = parse(r#"{"a": [1, {"b": "c\n"}], "d": null}"#).unwrap();
        assert_eq!(v.get("d"), Some(&Json::Null));
        let Json::Arr(items) = v.get("a").unwrap() else {
            panic!("a is an array");
        };
        assert_eq!(items[0], Json::Num(1.0));
        assert_eq!(items[1].get("b").unwrap().as_str(), Some("c\n"));
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "", "{", "[1,", "\"open", "{\"a\"}", "tru", "1 2", "{a:1}", "[0x1]", "nan", "1e999",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn surrogate_pairs_combine() {
        // Standard encoders escape non-BMP chars as surrogate pairs.
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap().as_str(),
            Some("\u{1f600}")
        );
        // ... and the raw (unescaped) form decodes identically.
        assert_eq!(parse("\"\u{1f600}\"").unwrap().as_str(), Some("\u{1f600}"));
        // Lone / malformed surrogates degrade to U+FFFD, never panic.
        assert_eq!(parse(r#""\ud83d""#).unwrap().as_str(), Some("\u{fffd}"));
        assert_eq!(parse(r#""\ud83dA""#).unwrap().as_str(), Some("\u{fffd}A"));
        assert_eq!(parse(r#""\ude00""#).unwrap().as_str(), Some("\u{fffd}"));
    }

    #[test]
    fn escape_round_trips() {
        let original = "a \"b\"\\\n\tc\u{1}d é ∧";
        let mut enc = String::new();
        write_escaped(&mut enc, original);
        assert_eq!(parse(&enc).unwrap().as_str(), Some(original));
    }

    #[test]
    fn f64_rendering() {
        let mut s = String::new();
        write_f64(&mut s, 3.0);
        s.push(' ');
        write_f64(&mut s, 0.25);
        s.push(' ');
        write_f64(&mut s, f64::NAN);
        assert_eq!(s, "3 0.25 null");
    }
}
