//! `koko-serve` — the serve-many layer over the KOKO engine: load a
//! `.koko` snapshot once, answer many concurrent queries fast.
//!
//! The paper (§1, §6.3) frames semantic querying as an interactive
//! workload: preprocessing and indexing happen once, then analysts issue
//! declarative queries against the built index. This crate is that posture
//! as a long-running process:
//!
//! * [`server::Server`] — a nonblocking event-loop TCP server. A single
//!   reactor thread (readiness via `koko-net`: epoll on Linux, `poll(2)`
//!   elsewhere) owns every connection's read/write buffers and multiplexes
//!   thousands of connections; a worker pool sized to the cores evaluates
//!   queries against one engine ([`koko_core::Koko`], i.e. one shared
//!   `Arc<Snapshot>` plus the compiled-query and result caches). Requests
//!   may be pipelined (responses return in request order per connection),
//!   responses may be streamed in bounded chunks, and per-tenant admission
//!   control (token-bucket rate limits, bounded queues, concurrency caps)
//!   answers overload with structured 401/429 lines instead of silent
//!   drops. Served rows are byte-identical to a sequential
//!   [`koko_core::Koko::query`] call — the workspace's serving conformance
//!   suite (`tests/serve_conformance.rs`) asserts exact bytes under
//!   concurrency, with caches on and off, streamed and pipelined; the
//!   fault-injection suite (`crates/serve/tests/fault_injection.rs`)
//!   asserts hostile clients (slowloris, stalled readers, half-closes,
//!   floods) degrade into structured errors or clean drops, never panics.
//! * [`protocol`] — newline-delimited JSON over TCP: one request line in,
//!   one response line out (or header/chunk/trailer frames when
//!   streaming). No network or serialization dependencies (std-only, per
//!   the workspace's offline-shim policy); the tiny JSON layer lives in
//!   [`json`].
//! * [`client::Client`] / [`client::run_load`] / [`client::run_load_open`]
//!   — a blocking client (with auth and client-side stream reassembly)
//!   plus closed-loop and open-loop (fixed arrival rate, p50/p95/p99) load
//!   generators (the CLI's `koko client` mode and the served-QPS sections
//!   of `table2_scaleup`).
//!
//! # One-liner
//!
//! ```text
//! koko build corpus.txt -o corpus.koko
//! koko serve corpus.koko --threads 8 --cache 1024 &
//! echo '{"query":"extract x:Entity from \"t\" if ()"}' | nc 127.0.0.1 4100
//! ```
//!
//! See `docs/SERVING.md` for the wire protocol, cache semantics and
//! tuning flags.

#![deny(missing_docs)]

pub mod client;
pub mod json;
pub mod protocol;
pub mod server;

pub use client::{
    is_transient, run_load, run_load_as, run_load_open, run_load_with, Client, LoadReport,
    OpenLoadReport, RetryPolicy, ServeError, StreamedResponse,
};
pub use protocol::{
    ok_response, opts_response, overload_response, rows_json, QueryOpts, Request, WireOrder,
};
pub use server::{Server, ServerConfig};
