//! `koko-serve` — the serve-many layer over the KOKO engine: load a
//! `.koko` snapshot once, answer many concurrent queries fast.
//!
//! The paper (§1, §6.3) frames semantic querying as an interactive
//! workload: preprocessing and indexing happen once, then analysts issue
//! declarative queries against the built index. This crate is that posture
//! as a long-running process:
//!
//! * [`server::Server`] — a multi-threaded TCP server. One engine
//!   ([`koko_core::Koko`], i.e. one shared `Arc<Snapshot>` plus the
//!   compiled-query and result caches) is cloned into a fixed pool of
//!   worker threads; each worker serves whole connections off an accept
//!   queue. Served rows are byte-identical to a sequential
//!   [`koko_core::Koko::query`] call — the workspace's serving conformance
//!   suite (`tests/serve_conformance.rs`) asserts exact bytes under
//!   concurrency, with caches on and off.
//! * [`protocol`] — newline-delimited JSON over TCP: one request line in,
//!   one response line out. No network or serialization dependencies
//!   (std-only, per the workspace's offline-shim policy); the tiny JSON
//!   layer lives in [`json`].
//! * [`client::Client`] / [`client::run_load`] — a blocking client and a
//!   multi-threaded closed-loop load generator (the CLI's `koko client`
//!   mode and the served-QPS section of `table2_scaleup`).
//!
//! # One-liner
//!
//! ```text
//! koko build corpus.txt -o corpus.koko
//! koko serve corpus.koko --threads 8 --cache 1024 &
//! echo '{"query":"extract x:Entity from \"t\" if ()"}' | nc 127.0.0.1 4100
//! ```
//!
//! See `docs/SERVING.md` for the wire protocol, cache semantics and
//! tuning flags.

#![deny(missing_docs)]

pub mod client;
pub mod json;
pub mod protocol;
pub mod server;

pub use client::{run_load, run_load_with, Client, LoadReport};
pub use protocol::{ok_response, opts_response, rows_json, QueryOpts, Request, WireOrder};
pub use server::Server;
