//! The concurrent query server: one loaded engine ([`Koko`], an
//! `Arc<Snapshot>` under the hood), a `TcpListener`, and a fixed pool of
//! worker threads that each take whole connections off an accept queue.
//!
//! Every worker clones the engine façade, so all of them share one
//! snapshot *and* one set of query caches — a query compiled or answered
//! on worker 0 is a cache hit on worker 7. Determinism: workers evaluate
//! with the per-shard fan-out disabled (the connection pool is the
//! parallelism), which keeps thread usage bounded at `threads` and keeps
//! served rows byte-identical to the sequential [`Koko::query`] path.

use crate::protocol::{err_response, ok_response, Request};
use koko_core::Koko;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// State shared by the acceptor and every worker.
struct Shared {
    koko: Koko,
    stop: AtomicBool,
    /// Accept wire `add` / `compact` commands. The engine's own live-index
    /// write lock serializes the mutations; read-only servers refuse them
    /// outright.
    writable: bool,
    /// Total requests answered (all kinds, including errors).
    served: AtomicU64,
    /// Query requests answered successfully.
    queries_ok: AtomicU64,
    /// Query requests answered with an error (parse failures etc.).
    queries_err: AtomicU64,
    /// Documents ingested over the wire since the server started.
    docs_added: AtomicU64,
    addr: SocketAddr,
    threads: usize,
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`Server::shutdown`] (or send the `shutdown` command over the
/// wire) for a clean stop.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serve
    /// `koko` read-only on `threads` worker threads (`0` = one per core).
    /// Returns once the listener is live; [`Server::local_addr`] has the
    /// port.
    pub fn bind(koko: Koko, addr: &str, threads: usize) -> std::io::Result<Server> {
        Server::bind_with(koko, addr, threads, false)
    }

    /// [`Server::bind`] with an explicit writability switch. A writable
    /// server additionally accepts the wire `add` and `compact` commands:
    /// writers serialize on the engine's live-index write lock while
    /// queries on other workers keep reading the previously published
    /// epoch — readers are never blocked on a write in progress.
    pub fn bind_with(
        koko: Koko,
        addr: &str,
        threads: usize,
        writable: bool,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // 0 = auto; explicit counts are capped so a mistyped flag cannot
        // ask the OS for millions of threads (the spawn would abort).
        let threads = if threads == 0 {
            koko_par::available_threads()
        } else {
            threads.min(4096)
        };
        // The worker pool is the parallelism: per-query shard fan-out on
        // top of it would spawn threads × shards workers. Turn it off for
        // the serving copy (results never depend on it — only wall-clock).
        let mut koko = koko;
        koko.opts.parallel = false;
        let shared = Arc::new(Shared {
            koko,
            stop: AtomicBool::new(false),
            writable,
            served: AtomicU64::new(0),
            queries_ok: AtomicU64::new(0),
            queries_err: AtomicU64::new(0),
            docs_added: AtomicU64::new(0),
            addr: local,
            threads,
        });

        // Accepted connections flow through an mpsc queue; workers pull
        // whole connections (a connection occupies its worker until the
        // client disconnects, so `threads` bounds concurrent connections
        // being served — further ones queue).
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<JoinHandle<()>> = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || loop {
                    let conn = match rx.lock() {
                        Ok(guard) => guard.recv(),
                        Err(_) => return,
                    };
                    match conn {
                        Ok(stream) => serve_connection(&shared, stream),
                        Err(_) => return, // acceptor gone: drain done
                    }
                })
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.stop.load(Ordering::SeqCst) {
                        break; // the wake-up connection lands here
                    }
                    if let Ok(stream) = stream {
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                }
                // tx drops here; idle workers unblock and exit.
            })
        };

        Ok(Server {
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The worker-pool width.
    pub fn threads(&self) -> usize {
        self.shared.threads
    }

    /// Whether this server accepts wire `add` / `compact` commands.
    pub fn writable(&self) -> bool {
        self.shared.writable
    }

    /// Total requests answered so far.
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// Stop accepting, finish in-flight connections, and join every
    /// thread. Idempotent with the wire-level `shutdown` command.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor if it is parked in accept().
        let _ = TcpStream::connect(self.shared.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// True once a shutdown (handle- or wire-initiated) has begun.
    pub fn is_stopping(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Block until the server stops (e.g. a client sends `shutdown`).
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Longest request line the server accepts. Queries are human-written
/// text; a line beyond this is hostile or broken, and answering it with
/// an unbounded buffer would let one client exhaust server memory.
pub const MAX_REQUEST_BYTES: usize = 1 << 20;

/// How often an idle connection's worker re-checks the stop flag. Bounds
/// how long a shutdown can be delayed by clients holding idle keep-alive
/// connections (nothing mid-request is ever interrupted).
const IDLE_POLL: std::time::Duration = std::time::Duration::from_millis(100);

/// One step of bounded line reading.
enum LineRead {
    /// A complete `\n`-terminated line (newline stripped).
    Line(String),
    /// Clean EOF from the client.
    Eof,
    /// The read timed out with no (or a partial) line; already-read bytes
    /// stay in `acc`. The caller re-checks the stop flag and polls again.
    Idle,
    /// The line exceeded the size limit.
    TooLong,
}

/// Poll for one line of at most `max` bytes, accumulating partial reads
/// across timeouts in `acc`. `Err` is a real I/O failure.
fn poll_line<R: BufRead>(
    reader: &mut R,
    acc: &mut Vec<u8>,
    max: usize,
) -> std::io::Result<LineRead> {
    loop {
        let available = match reader.fill_buf() {
            Ok(available) => available,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Ok(LineRead::Idle)
            }
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return Ok(LineRead::Eof);
        }
        if let Some(pos) = available.iter().position(|&b| b == b'\n') {
            acc.extend_from_slice(&available[..pos]);
            reader.consume(pos + 1);
            if acc.len() > max {
                return Ok(LineRead::TooLong);
            }
            let line = String::from_utf8_lossy(acc).into_owned();
            acc.clear();
            return Ok(LineRead::Line(line));
        }
        let n = available.len();
        acc.extend_from_slice(available);
        reader.consume(n);
        if acc.len() > max {
            return Ok(LineRead::TooLong);
        }
    }
}

/// Serve one connection to completion: request line in, response line out.
fn serve_connection(shared: &Shared, stream: TcpStream) {
    // Request/response lines are small; Nagle + delayed ACK would add a
    // per-request latency floor in the tens of milliseconds. The read
    // timeout lets the worker notice a shutdown while a connection idles.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let Ok(peer_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(peer_half);
    let mut writer = BufWriter::new(stream);
    let mut acc: Vec<u8> = Vec::new();
    loop {
        let line = match poll_line(&mut reader, &mut acc, MAX_REQUEST_BYTES) {
            Ok(LineRead::Line(line)) => line,
            Ok(LineRead::Eof) => break, // client closed cleanly
            Ok(LineRead::Idle) => {
                // Nothing (complete) arrived: drop idle connections once
                // a shutdown has started, otherwise keep waiting.
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Ok(LineRead::TooLong) => {
                // Oversized line: answer once, then drop the connection
                // (the rest of the flood is unread).
                let _ = writer
                    .write_all(err_response(0, "request line too long").as_bytes())
                    .and_then(|()| writer.write_all(b"\n"))
                    .and_then(|()| writer.flush());
                break;
            }
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, stop_after) = handle_line(shared, &line);
        shared.served.fetch_add(1, Ordering::Relaxed);
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if stop_after {
            shared.stop.store(true, Ordering::SeqCst);
            // Wake the acceptor so it observes the flag.
            let _ = TcpStream::connect(shared.addr);
            break;
        }
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
    }
}

/// The engine handle wire writers mutate through. The serving copy keeps
/// `parallel` off because per-query shard fan-out on top of the worker
/// pool would multiply threads — but that rationale does not apply to
/// writes: they serialize on the live-index write mutex, so the single
/// active writer may parallelize its NLP parse and shard rebuilds
/// (results are identical either way; only the lock-hold time shrinks).
fn writer_handle(shared: &Shared) -> Koko {
    let mut writer = shared.koko.clone();
    writer.opts.parallel = true;
    writer
}

/// Answer one request line. Returns the response and whether the server
/// should stop after sending it.
fn handle_line(shared: &Shared, line: &str) -> (String, bool) {
    match Request::decode(line) {
        Err(message) => (err_response(0, &message), false),
        Ok(Request::Ping { id }) => (format!("{{\"id\":{id},\"ok\":true,\"pong\":true}}"), false),
        Ok(Request::Shutdown { id }) => (
            format!("{{\"id\":{id},\"ok\":true,\"stopping\":true}}"),
            true,
        ),
        Ok(Request::Stats { id }) => {
            let cache = shared.koko.cache_stats();
            let snap = shared.koko.snapshot();
            let response = format!(
                "{{\"id\":{id},\"ok\":true,\"stats\":{{\"threads\":{},\"documents\":{},\"shards\":{},\"delta_shards\":{},\"delta_documents\":{},\"epoch\":{},\"generation\":{},\"writable\":{},\"docs_added\":{},\"served\":{},\"queries_ok\":{},\"queries_err\":{},\"compiled_cache_hits\":{},\"compiled_cache_misses\":{},\"result_cache_hits\":{},\"result_cache_misses\":{},\"result_cache_capacity\":{}}}}}",
                shared.threads,
                snap.corpus().num_documents(),
                snap.num_shards(),
                snap.num_delta_shards(),
                snap.num_delta_documents(),
                snap.epoch(),
                snap.generation(),
                shared.writable,
                shared.docs_added.load(Ordering::Relaxed),
                shared.served.load(Ordering::Relaxed),
                shared.queries_ok.load(Ordering::Relaxed),
                shared.queries_err.load(Ordering::Relaxed),
                cache.compiled_hits,
                cache.compiled_misses,
                cache.result_hits,
                cache.result_misses,
                shared.koko.opts.result_cache,
            );
            (response, false)
        }
        Ok(Request::Query {
            id,
            text,
            cache,
            opts,
        }) => {
            // Without `opts` the request follows the historical path and
            // response shape bit-for-bit; with `opts` (even an empty
            // object) it runs as a QueryRequest and gets the extended
            // response carrying `total_matches` / `truncated` / explain.
            let result = match &opts {
                None => shared.koko.query_with_cache(&text, cache),
                Some(o) => shared.koko.run(&o.to_request(&text, cache)),
            };
            match result {
                Ok(out) => {
                    shared.queries_ok.fetch_add(1, Ordering::Relaxed);
                    let line = match opts {
                        None => ok_response(id, &out),
                        Some(_) => crate::protocol::opts_response(id, &out),
                    };
                    (line, false)
                }
                Err(e) => {
                    shared.queries_err.fetch_add(1, Ordering::Relaxed);
                    (err_response(id, &e.to_string()), false)
                }
            }
        }
        Ok(Request::Add { id, texts }) => {
            if !shared.writable {
                return (
                    err_response(
                        id,
                        "server is read-only (start with --writable to accept add)",
                    ),
                    false,
                );
            }
            let report = writer_handle(shared).add_texts(&texts);
            shared
                .docs_added
                .fetch_add(report.added as u64, Ordering::Relaxed);
            (
                format!(
                    "{{\"id\":{id},\"ok\":true,\"added\":{},\"documents\":{},\"epoch\":{},\"generation\":{},\"delta_shards\":{},\"delta_documents\":{}}}",
                    report.added,
                    report.documents,
                    report.epoch,
                    report.generation,
                    report.delta_shards,
                    report.delta_documents,
                ),
                false,
            )
        }
        Ok(Request::Compact { id }) => {
            if !shared.writable {
                return (
                    err_response(
                        id,
                        "server is read-only (start with --writable to accept compact)",
                    ),
                    false,
                );
            }
            let report = writer_handle(shared).compact();
            (
                format!(
                    "{{\"id\":{id},\"ok\":true,\"merged_deltas\":{},\"shards\":{},\"epoch\":{},\"generation\":{}}}",
                    report.merged_deltas, report.shards, report.epoch, report.generation,
                ),
                false,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use koko_core::EngineOpts;

    fn test_engine(result_cache: usize) -> Koko {
        Koko::from_texts_with_opts(
            &[
                "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
                "Anna ate some delicious cheesecake that she bought at a grocery store.",
            ],
            EngineOpts {
                result_cache,
                // Workers are the parallelism; shard fan-out off keeps the
                // test deterministic on 1-core CI boxes too.
                parallel: false,
                num_shards: 1,
                ..EngineOpts::default()
            },
        )
    }

    #[test]
    fn serves_queries_pings_and_stats() {
        let server = Server::bind(test_engine(8), "127.0.0.1:0", 2).unwrap();
        let mut client = Client::connect(&server.local_addr().to_string()).unwrap();

        let pong = client.ping().unwrap();
        assert!(pong.contains("\"pong\":true"), "{pong}");

        let q = koko_lang::queries::EXAMPLE_2_1;
        let first = client.query(q, true).unwrap();
        assert!(first.contains("\"ok\":true"), "{first}");
        assert!(first.contains("\"result_cache_misses\":1"), "{first}");
        let second = client.query(q, true).unwrap();
        assert!(second.contains("\"result_cache_hits\":1"), "{second}");
        assert_eq!(
            crate::protocol::response_rows(&first),
            crate::protocol::response_rows(&second),
            "cached rows byte-identical"
        );

        let stats = client.stats().unwrap();
        assert!(stats.contains("\"queries_ok\":2"), "{stats}");
        assert!(stats.contains("\"result_cache_hits\":1"), "{stats}");

        let bad = client.query("not a query", true).unwrap();
        assert!(bad.contains("\"ok\":false"), "{bad}");
        assert!(bad.contains("parse error"), "{bad}");

        drop(client);
        server.shutdown();
    }

    #[test]
    fn malformed_lines_get_errors_and_keep_the_connection() {
        let server = Server::bind(test_engine(0), "127.0.0.1:0", 1).unwrap();
        let mut client = Client::connect(&server.local_addr().to_string()).unwrap();
        let r = client.send_raw("this is not json").unwrap();
        assert!(r.contains("\"ok\":false"), "{r}");
        let r = client.send_raw("{\"cmd\":\"reboot\"}").unwrap();
        assert!(r.contains("unknown cmd"), "{r}");
        // The connection survived both errors.
        assert!(client.ping().unwrap().contains("pong"));
        drop(client);
        server.shutdown();
    }

    #[test]
    fn oversized_request_lines_are_rejected_not_buffered() {
        use std::io::{BufRead, BufReader, Write};
        let server = Server::bind(test_engine(0), "127.0.0.1:0", 1).unwrap();
        let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
        // Stream well past the limit without a newline; the server must
        // answer with an error and drop the connection instead of
        // buffering indefinitely.
        let chunk = vec![b'x'; 64 * 1024];
        let mut sent = 0usize;
        while sent <= MAX_REQUEST_BYTES + chunk.len() {
            if stream.write_all(&chunk).is_err() {
                break; // server already hung up mid-flood: acceptable
            }
            sent += chunk.len();
        }
        let _ = stream.write_all(b"\n");
        let _ = stream.flush();
        let mut response = String::new();
        let _ = BufReader::new(&stream).read_line(&mut response);
        // Either the error response arrived, or the server closed first.
        assert!(
            response.is_empty() || response.contains("request line too long"),
            "{response}"
        );
        drop(stream);
        server.shutdown();
    }

    #[test]
    fn read_only_servers_refuse_online_updates() {
        let server = Server::bind(test_engine(0), "127.0.0.1:0", 1).unwrap();
        assert!(!server.writable());
        let mut client = Client::connect(&server.local_addr().to_string()).unwrap();
        let r = client.add(&["New doc.".to_string()]).unwrap();
        assert!(r.contains("\"ok\":false") && r.contains("read-only"), "{r}");
        let r = client.compact().unwrap();
        assert!(r.contains("\"ok\":false") && r.contains("read-only"), "{r}");
        // The connection and the corpus are untouched.
        let stats = client.stats().unwrap();
        assert!(stats.contains("\"documents\":2"), "{stats}");
        assert!(stats.contains("\"writable\":false"), "{stats}");
        drop(client);
        server.shutdown();
    }

    #[test]
    fn writable_server_adds_compacts_and_serves_the_new_docs() {
        let server = Server::bind_with(test_engine(8), "127.0.0.1:0", 2, true).unwrap();
        assert!(server.writable());
        let addr = server.local_addr().to_string();
        let mut client = Client::connect(&addr).unwrap();

        // Cache a result, then add a matching document: the epoch-keyed
        // result cache must not serve the stale rows.
        let q = koko_lang::queries::EXAMPLE_2_1;
        let before = client.query(q, true).unwrap();
        let added = client
            .add(&["Bob ate some delicious croissant at the cafe.".to_string()])
            .unwrap();
        assert!(added.contains("\"ok\":true"), "{added}");
        assert!(added.contains("\"added\":1"), "{added}");
        assert!(added.contains("\"documents\":3"), "{added}");
        assert!(added.contains("\"delta_shards\":1"), "{added}");

        let after = client.query(q, true).unwrap();
        assert_ne!(
            crate::protocol::response_rows(&before),
            crate::protocol::response_rows(&after),
            "new document must appear in results"
        );
        assert!(after.contains("\"delta_candidates\":1"), "{after}");

        // A second client (other worker) sees the same state.
        let mut other = Client::connect(&addr).unwrap();
        let stats = other.stats().unwrap();
        assert!(stats.contains("\"documents\":3"), "{stats}");
        assert!(stats.contains("\"docs_added\":1"), "{stats}");
        assert!(stats.contains("\"writable\":true"), "{stats}");

        // Compaction merges the delta; rows stay byte-identical.
        let compacted = client.compact().unwrap();
        assert!(compacted.contains("\"merged_deltas\":1"), "{compacted}");
        let final_rows = client.query(q, true).unwrap();
        assert_eq!(
            crate::protocol::response_rows(&after),
            crate::protocol::response_rows(&final_rows),
            "compaction must not change rows"
        );
        assert!(
            final_rows.contains("\"delta_candidates\":0"),
            "{final_rows}"
        );

        drop(client);
        drop(other);
        server.shutdown();
    }

    #[test]
    fn wire_shutdown_stops_the_server() {
        let server = Server::bind(test_engine(0), "127.0.0.1:0", 2).unwrap();
        let addr = server.local_addr().to_string();
        let mut client = Client::connect(&addr).unwrap();
        let bye = client.send_raw("{\"cmd\":\"shutdown\"}").unwrap();
        assert!(bye.contains("\"stopping\":true"), "{bye}");
        drop(client);
        server.join(); // returns only because the wire shutdown landed
    }

    #[test]
    fn shutdown_completes_despite_idle_connections() {
        let server = Server::bind(test_engine(0), "127.0.0.1:0", 2).unwrap();
        let addr = server.local_addr().to_string();
        // A keep-alive client that connects and never sends a request.
        let idle = std::net::TcpStream::connect(&addr).unwrap();
        let mut client = Client::connect(&addr).unwrap();
        let bye = client.shutdown().unwrap();
        assert!(bye.contains("\"stopping\":true"), "{bye}");
        drop(client);
        // join() must return even though `idle` is still open: its worker
        // notices the stop flag at the next idle poll and drops it.
        server.join();
        drop(idle);
    }
}
