//! The event-loop query server: one reactor thread multiplexing every
//! connection over nonblocking readiness I/O ([`koko_net::Poller`]), a
//! fixed pool of worker threads executing queries, and per-tenant
//! admission control in front of the workers.
//!
//! Architecture (see `docs/SERVING.md` for the full picture):
//!
//! * The **reactor** owns the listener, every connection's read/write
//!   buffers, and all admission state. It parses request lines, answers
//!   control requests (`ping`/`stats`/`shutdown`, decode errors,
//!   admission refusals) inline, and hands query/write work to the
//!   worker pool. Responses are written back through per-connection
//!   nonblocking write buffers — a stalled reader can never pin a
//!   worker or the reactor (the old thread-per-connection server wrote
//!   with blocking `write_all`; that hazard is gone by construction).
//! * **Workers** each clone the engine façade, so all of them share one
//!   snapshot *and* one set of query caches — a query compiled or
//!   answered on worker 0 is a cache hit on worker 7. Workers evaluate
//!   with per-shard fan-out disabled (the pool is the parallelism),
//!   which keeps served rows byte-identical to the sequential
//!   [`Koko::query`] path.
//! * **Pipelining**: a client may send many requests without waiting;
//!   responses come back in request order per connection (out-of-order
//!   completions park in a per-connection reorder map). Reading from a
//!   connection pauses once [`ServerConfig::pipeline_depth`] responses
//!   are outstanding or its write backlog passes the read-pause
//!   watermark — backpressure, not an error.
//! * **Streaming**: `opts.stream: true` answers with header, chunk and
//!   trailer frames; chunks are serialized lazily as the socket drains,
//!   so a 100k-row answer never materializes as one giant JSON line.
//! * **Admission**: with a configured [`TenantTable`], each query's
//!   `auth` field is charged against that tenant's token bucket,
//!   concurrency bound and admission queue
//!   ([`koko_core::tenant::AdmissionState`]); refusals are structured
//!   429/401 responses, never silent drops.
//! * **Graceful drain**: shutdown (wire command or
//!   [`Server::shutdown`]) stops accepting and reading, finishes every
//!   dispatched and admitted request, flushes write buffers, then
//!   closes — bounded by [`ServerConfig::drain_timeout`].

use crate::protocol::{
    err_response, ok_response, opts_response, overload_response, stream_chunk, stream_header,
    stream_trailer, Request,
};
use koko_core::tenant::{Admission, AdmissionState, TenantTable};
use koko_core::{Koko, QueryOutput, QueryRequest};
use koko_net::{Interest, Poller, Waker};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Longest request line the server accepts. Queries are human-written
/// text; a line beyond this is hostile or broken, and answering it with
/// an unbounded buffer would let one client exhaust server memory.
pub const MAX_REQUEST_BYTES: usize = 1 << 20;

/// Rows per streamed chunk frame.
const STREAM_CHUNK_ROWS: usize = 256;
/// Serialize responses into a connection's write buffer until it holds
/// this much; more is pulled in as the socket drains (streaming frames
/// are born lazily at this watermark).
const WRITE_LOW_WATER: usize = 64 * 1024;
/// Stop reading new requests from a connection whose un-flushed write
/// backlog passes this (resumes when the client drains it).
const READ_PAUSE_WATER: usize = 256 * 1024;
/// Most bytes ingested from one connection per readiness event (level
/// triggering re-reports whatever is left, so no data is lost — this
/// just stops one firehose client from starving the rest of the loop).
const READ_BUDGET: usize = 256 * 1024;

const LISTENER_TOKEN: usize = usize::MAX;
const WAKER_TOKEN: usize = usize::MAX - 1;

/// Tuning and policy for [`Server::bind_config`]. `Default` reproduces
/// the open (tenant-less) server: admission off, generous buffers.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing queries (`0` = one per core, capped 4096).
    pub threads: usize,
    /// Accept wire `add` / `compact` commands.
    pub writable: bool,
    /// Per-tenant admission policies; an empty table disables admission.
    pub tenants: TenantTable,
    /// Most simultaneously open connections; further accepts are answered
    /// with a structured 429 line and closed.
    pub max_connections: usize,
    /// Drop a connection once its buffered-but-unread responses exceed
    /// this many bytes (a stalled or malicious reader).
    pub write_buffer_cap: usize,
    /// Most in-flight (unanswered) requests per connection before the
    /// reactor stops reading more from it.
    pub pipeline_depth: usize,
    /// Longest a graceful drain waits for in-flight work before closing.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            threads: 0,
            writable: false,
            tenants: TenantTable::new(),
            max_connections: 4096,
            write_buffer_cap: 64 << 20,
            pipeline_depth: 128,
            drain_timeout: Duration::from_secs(30),
        }
    }
}

/// State shared by the reactor and every worker.
struct Shared {
    koko: Koko,
    stop: AtomicBool,
    /// Accept wire `add` / `compact` commands. The engine's own live-index
    /// write lock serializes the mutations; read-only servers refuse them
    /// outright.
    writable: bool,
    /// Total requests answered (all kinds, including errors).
    served: AtomicU64,
    /// Query requests answered successfully.
    queries_ok: AtomicU64,
    /// Query requests answered with an engine error.
    queries_err: AtomicU64,
    /// Documents ingested over the wire since the server started.
    docs_added: AtomicU64,
    addr: SocketAddr,
    threads: usize,
}

/// Work shipped to the pool.
enum JobKind {
    /// The historical no-opts path: byte-exact legacy response shape.
    LegacyQuery {
        text: String,
        cache: bool,
    },
    /// A [`QueryRequest`] run; `legacy_shape` keeps the old response keys
    /// (a no-opts request that only needed tenant deadline shaping).
    Run {
        req: QueryRequest,
        legacy_shape: bool,
        stream: bool,
    },
    Add {
        texts: Vec<String>,
    },
    Compact,
}

struct Job {
    conn: usize,
    gen: u64,
    seq: u64,
    id: u64,
    tenant: Option<String>,
    /// Whether admission charged a concurrency slot for this job.
    admitted: bool,
    kind: JobKind,
}

/// A finished response waiting its turn in the per-connection order.
enum Reply {
    Line(String),
    Stream { id: u64, out: Box<QueryOutput> },
}

impl Reply {
    /// Approximate buffered size, for the stalled-reader cap. Streams
    /// count only their header: their rows are serialized lazily and the
    /// write low-watermark bounds how much of them ever sits in memory.
    fn cost(&self) -> usize {
        match self {
            Reply::Line(s) => s.len() + 1,
            Reply::Stream { .. } => 64,
        }
    }
}

struct Done {
    conn: usize,
    gen: u64,
    seq: u64,
    tenant: Option<String>,
    admitted: bool,
    reply: Reply,
}

/// A request admitted to a tenant's queue, waiting for a slot.
struct Parked {
    conn: usize,
    gen: u64,
    seq: u64,
    id: u64,
    kind: JobKind,
}

/// An in-progress streamed response: rows are cut into chunk frames as
/// the socket drains.
struct StreamState {
    id: u64,
    out: Box<QueryOutput>,
    next_row: usize,
    chunk: usize,
}

struct Conn {
    stream: TcpStream,
    gen: u64,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    /// Next sequence number to assign to an arriving request.
    next_seq: u64,
    /// Next sequence number to emit (responses go out in arrival order).
    next_write_seq: u64,
    finished: BTreeMap<u64, Reply>,
    /// Bytes parked in `finished` (the write-cap accounting).
    finished_bytes: usize,
    /// Requests assigned a seq but not yet fully written out.
    outstanding: usize,
    cur_stream: Option<StreamState>,
    read_closed: bool,
    /// Close as soon as the write buffer flushes (protocol violation).
    closing: bool,
    interest: Interest,
}

impl Conn {
    fn pending_write(&self) -> usize {
        self.wbuf.len() - self.wpos
    }
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`Server::shutdown`] (or send the `shutdown` command over the
/// wire) for a clean stop.
pub struct Server {
    shared: Arc<Shared>,
    waker: Arc<Waker>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serve
    /// `koko` read-only on `threads` worker threads (`0` = one per core).
    /// Returns once the listener is live; [`Server::local_addr`] has the
    /// port.
    pub fn bind(koko: Koko, addr: &str, threads: usize) -> std::io::Result<Server> {
        Server::bind_with(koko, addr, threads, false)
    }

    /// [`Server::bind`] with an explicit writability switch. A writable
    /// server additionally accepts the wire `add` and `compact` commands:
    /// writers serialize on the engine's live-index write lock while
    /// queries on other workers keep reading the previously published
    /// epoch — readers are never blocked on a write in progress.
    pub fn bind_with(
        koko: Koko,
        addr: &str,
        threads: usize,
        writable: bool,
    ) -> std::io::Result<Server> {
        Server::bind_config(
            koko,
            addr,
            ServerConfig {
                threads,
                writable,
                ..ServerConfig::default()
            },
        )
    }

    /// Bind with full [`ServerConfig`] control: tenant admission,
    /// connection caps, buffer bounds, drain budget.
    pub fn bind_config(koko: Koko, addr: &str, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        // 0 = auto; explicit counts are capped so a mistyped flag cannot
        // ask the OS for millions of threads (the spawn would abort).
        let threads = if config.threads == 0 {
            koko_par::available_threads()
        } else {
            config.threads.min(4096)
        };
        // The worker pool is the parallelism: per-query shard fan-out on
        // top of it would spawn threads × shards workers. Turn it off for
        // the serving copy (results never depend on it — only wall-clock).
        let mut koko = koko;
        koko.opts.parallel = false;
        let shared = Arc::new(Shared {
            koko,
            stop: AtomicBool::new(false),
            writable: config.writable,
            served: AtomicU64::new(0),
            queries_ok: AtomicU64::new(0),
            queries_err: AtomicU64::new(0),
            docs_added: AtomicU64::new(0),
            addr: local,
            threads,
        });

        let mut poller = Poller::new()?;
        let waker = Arc::new(Waker::new()?);
        poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
        poller.register(waker.poll_fd(), WAKER_TOKEN, Interest::READ)?;

        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let (done_tx, done_rx) = mpsc::channel::<Done>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let workers: Vec<JoinHandle<()>> = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let job_rx = Arc::clone(&job_rx);
                let done_tx = done_tx.clone();
                let waker = Arc::clone(&waker);
                std::thread::spawn(move || worker_loop(&shared, &job_rx, &done_tx, &waker))
            })
            .collect();

        let reactor = {
            let shared = Arc::clone(&shared);
            let waker = Arc::clone(&waker);
            let adm = AdmissionState::new(config.tenants.clone());
            std::thread::spawn(move || {
                Reactor {
                    shared,
                    poller,
                    waker,
                    listener,
                    conns: Vec::new(),
                    free: Vec::new(),
                    num_conns: 0,
                    gen_counter: 0,
                    adm,
                    parked: HashMap::new(),
                    job_tx,
                    done_rx,
                    jobs_in_flight: 0,
                    draining: false,
                    drain_started: None,
                    start: Instant::now(),
                    config,
                }
                .run();
            })
        };

        Ok(Server {
            shared,
            waker,
            reactor: Some(reactor),
            workers,
        })
    }

    /// The bound address (resolves the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The worker-pool width.
    pub fn threads(&self) -> usize {
        self.shared.threads
    }

    /// Whether this server accepts wire `add` / `compact` commands.
    pub fn writable(&self) -> bool {
        self.shared.writable
    }

    /// Total requests answered so far.
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// Stop accepting, drain in-flight work, flush every connection, and
    /// join every thread. Idempotent with the wire `shutdown` command.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// True once a shutdown (handle- or wire-initiated) has begun.
    pub fn is_stopping(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Block until the server stops (e.g. a client sends `shutdown`).
    pub fn join(mut self) {
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// The engine handle wire writers mutate through. The serving copy keeps
/// `parallel` off because per-query shard fan-out on top of the worker
/// pool would multiply threads — but that rationale does not apply to
/// writes: they serialize on the live-index write mutex, so the single
/// active writer may parallelize its NLP parse and shard rebuilds
/// (results are identical either way; only the lock-hold time shrinks).
fn writer_handle(shared: &Shared) -> Koko {
    let mut writer = shared.koko.clone();
    writer.opts.parallel = true;
    writer
}

fn worker_loop(
    shared: &Shared,
    jobs: &Mutex<mpsc::Receiver<Job>>,
    done_tx: &mpsc::Sender<Done>,
    waker: &Waker,
) {
    loop {
        let job = {
            let Ok(guard) = jobs.lock() else { return };
            match guard.recv() {
                Ok(job) => job,
                Err(_) => return, // reactor gone: drain done
            }
        };
        let reply = execute(shared, job.id, job.kind);
        let delivered = done_tx
            .send(Done {
                conn: job.conn,
                gen: job.gen,
                seq: job.seq,
                tenant: job.tenant,
                admitted: job.admitted,
                reply,
            })
            .is_ok();
        if delivered {
            waker.wake();
        }
    }
}

/// Run one job to completion on a worker thread.
fn execute(shared: &Shared, id: u64, kind: JobKind) -> Reply {
    match kind {
        JobKind::LegacyQuery { text, cache } => match shared.koko.query_with_cache(&text, cache) {
            Ok(out) => {
                shared.queries_ok.fetch_add(1, Ordering::Relaxed);
                Reply::Line(ok_response(id, &out))
            }
            Err(e) => {
                shared.queries_err.fetch_add(1, Ordering::Relaxed);
                Reply::Line(err_response(id, &e.to_string()))
            }
        },
        JobKind::Run {
            req,
            legacy_shape,
            stream,
        } => match shared.koko.run(&req) {
            Ok(out) => {
                shared.queries_ok.fetch_add(1, Ordering::Relaxed);
                if stream {
                    Reply::Stream {
                        id,
                        out: Box::new(out),
                    }
                } else if legacy_shape {
                    Reply::Line(ok_response(id, &out))
                } else {
                    Reply::Line(opts_response(id, &out))
                }
            }
            Err(e) => {
                shared.queries_err.fetch_add(1, Ordering::Relaxed);
                Reply::Line(err_response(id, &e.to_string()))
            }
        },
        JobKind::Add { texts } => {
            let report = writer_handle(shared).add_texts(&texts);
            shared
                .docs_added
                .fetch_add(report.added as u64, Ordering::Relaxed);
            Reply::Line(format!(
                "{{\"id\":{id},\"ok\":true,\"added\":{},\"documents\":{},\"epoch\":{},\"generation\":{},\"delta_shards\":{},\"delta_documents\":{}}}",
                report.added,
                report.documents,
                report.epoch,
                report.generation,
                report.delta_shards,
                report.delta_documents,
            ))
        }
        JobKind::Compact => {
            let report = writer_handle(shared).compact();
            Reply::Line(format!(
                "{{\"id\":{id},\"ok\":true,\"merged_deltas\":{},\"shards\":{},\"epoch\":{},\"generation\":{}}}",
                report.merged_deltas, report.shards, report.epoch, report.generation,
            ))
        }
    }
}

struct Reactor {
    shared: Arc<Shared>,
    poller: Poller,
    waker: Arc<Waker>,
    listener: TcpListener,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    num_conns: usize,
    gen_counter: u64,
    adm: AdmissionState,
    /// Admitted-but-queued requests, per tenant (keyed like the
    /// admission state: `None` = anonymous under the default policy).
    parked: HashMap<Option<String>, VecDeque<Parked>>,
    job_tx: mpsc::Sender<Job>,
    done_rx: mpsc::Receiver<Done>,
    jobs_in_flight: usize,
    draining: bool,
    drain_started: Option<Instant>,
    start: Instant,
    config: ServerConfig,
}

impl Reactor {
    fn run(mut self) {
        let mut events = Vec::new();
        loop {
            if self.shared.stop.load(Ordering::SeqCst) {
                self.enter_drain();
            }
            while let Ok(done) = self.done_rx.try_recv() {
                self.on_done(done);
            }
            if self.draining && self.drain_finished() {
                break;
            }
            // The waker makes wakeups immediate; the timeout is only a
            // backstop (and the drain-deadline check cadence).
            let timeout = if self.draining {
                Duration::from_millis(50)
            } else {
                Duration::from_millis(500)
            };
            if self.poller.poll(&mut events, Some(timeout)).is_err() {
                break;
            }
            for ev in &events {
                match ev.token {
                    LISTENER_TOKEN => self.accept_all(),
                    WAKER_TOKEN => self.waker.drain(),
                    token => self.on_conn_event(token, ev.readable, ev.hangup),
                }
            }
        }
        // Close everything still open; dropping `job_tx` (with self)
        // lets idle workers exit.
        for slot in self.conns.iter_mut() {
            *slot = None;
        }
    }

    /// Begin (or continue) a graceful drain: stop accepting and reading;
    /// in-flight and admitted-queued work still completes and flushes.
    fn enter_drain(&mut self) {
        if self.draining {
            return;
        }
        self.draining = true;
        self.drain_started = Some(Instant::now());
        self.shared.stop.store(true, Ordering::SeqCst);
        let _ = self.poller.deregister(self.listener.as_raw_fd());
        for token in 0..self.conns.len() {
            if self.conns[token].is_some() {
                self.service(token);
            }
        }
    }

    /// True once the drain may complete: nothing running, nothing
    /// queued, every surviving connection fully flushed — or the drain
    /// budget is spent.
    fn drain_finished(&mut self) -> bool {
        if let Some(started) = self.drain_started {
            if started.elapsed() > self.config.drain_timeout {
                return true;
            }
        }
        if self.jobs_in_flight > 0 {
            return false;
        }
        if self.parked.values().any(|q| !q.is_empty()) {
            return false;
        }
        for token in 0..self.conns.len() {
            if let Some(conn) = &self.conns[token] {
                if conn.pending_write() > 0
                    || conn.cur_stream.is_some()
                    || !conn.finished.is_empty()
                {
                    return false;
                }
            }
        }
        true
    }

    fn accept_all(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.draining {
                        continue; // accepted by the OS backlog; just drop
                    }
                    if self.num_conns >= self.config.max_connections {
                        // Structured refusal, best-effort: the socket is
                        // fresh so one small write virtually never blocks.
                        let mut stream = stream;
                        let line = format!(
                            "{{\"id\":0,\"ok\":false,\"error\":\"server at connection capacity\",\"code\":429,\"max_connections\":{}}}\n",
                            self.config.max_connections
                        );
                        let _ = stream.write(line.as_bytes());
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // Request/response lines are small; Nagle + delayed
                    // ACK would add a latency floor in the tens of ms.
                    let _ = stream.set_nodelay(true);
                    let token = self.free.pop().unwrap_or_else(|| {
                        self.conns.push(None);
                        self.conns.len() - 1
                    });
                    self.gen_counter += 1;
                    let fd = stream.as_raw_fd();
                    let conn = Conn {
                        stream,
                        gen: self.gen_counter,
                        rbuf: Vec::new(),
                        wbuf: Vec::new(),
                        wpos: 0,
                        next_seq: 0,
                        next_write_seq: 0,
                        finished: BTreeMap::new(),
                        finished_bytes: 0,
                        outstanding: 0,
                        cur_stream: None,
                        read_closed: false,
                        closing: false,
                        interest: Interest::READ,
                    };
                    if self.poller.register(fd, token, Interest::READ).is_err() {
                        self.free.push(token);
                        continue;
                    }
                    self.conns[token] = Some(conn);
                    self.num_conns += 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn close(&mut self, token: usize) {
        let Some(conn) = self.conns[token].take() else {
            return;
        };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        self.num_conns -= 1;
        self.free.push(token);
        // Un-park anything this connection had admitted but not started.
        let gen = conn.gen;
        for (tenant, queue) in self.parked.iter_mut() {
            let before = queue.len();
            queue.retain(|p| !(p.conn == token && p.gen == gen));
            for _ in queue.len()..before {
                self.adm.forget_queued(tenant.as_deref());
            }
        }
    }

    fn on_conn_event(&mut self, token: usize, readable: bool, hangup: bool) {
        if token >= self.conns.len() || self.conns[token].is_none() {
            return;
        }
        if hangup {
            // EPOLLHUP/EPOLLERR: the peer is fully gone — responses are
            // undeliverable, so drop straight away.
            self.close(token);
            return;
        }
        if readable && !self.read_some(token) {
            return; // closed on read error
        }
        self.service(token);
    }

    /// Pull bytes into the connection's line buffer (bounded per pass;
    /// level-triggered polling re-reports any remainder). Returns false
    /// if the connection was closed.
    fn read_some(&mut self, token: usize) -> bool {
        let Some(conn) = self.conns[token].as_mut() else {
            return false;
        };
        let mut fatal = false;
        if conn.read_closed || conn.closing {
            // Drain-and-discard so the kernel buffer can't wedge the
            // event loop reporting a connection we no longer read.
            let mut sink = [0u8; 4096];
            loop {
                match conn.stream.read(&mut sink) {
                    Ok(0) => {
                        conn.read_closed = true;
                        break;
                    }
                    Ok(_) => continue,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        fatal = true;
                        break;
                    }
                }
            }
        } else {
            let mut taken = 0usize;
            let mut tmp = [0u8; 16 * 1024];
            loop {
                if taken >= READ_BUDGET || conn.rbuf.len() > MAX_REQUEST_BYTES {
                    break;
                }
                match conn.stream.read(&mut tmp) {
                    Ok(0) => {
                        conn.read_closed = true;
                        break;
                    }
                    Ok(n) => {
                        conn.rbuf.extend_from_slice(&tmp[..n]);
                        taken += n;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        fatal = true;
                        break;
                    }
                }
            }
        }
        if fatal {
            self.close(token);
            return false;
        }
        true
    }

    /// Process buffered lines, pump writes, and refresh poll interest —
    /// the one entry point after any state change on a connection.
    fn service(&mut self, token: usize) {
        loop {
            let before = self.conn_fingerprint(token);
            self.process_lines(token);
            self.pump(token);
            if self.conns[token].is_none() || self.conn_fingerprint(token) == before {
                break;
            }
        }
        self.update_interest(token);
        self.maybe_close_quiet(token);
    }

    fn conn_fingerprint(&self, token: usize) -> (usize, usize, u64, usize) {
        match self.conns.get(token).and_then(|c| c.as_ref()) {
            Some(c) => (
                c.rbuf.len(),
                c.pending_write(),
                c.next_write_seq,
                c.outstanding,
            ),
            None => (0, 0, 0, 0),
        }
    }

    /// Close a connection that has nothing left to say or hear.
    fn maybe_close_quiet(&mut self, token: usize) {
        let Some(conn) = self.conns.get(token).and_then(|c| c.as_ref()) else {
            return;
        };
        let flushed = conn.pending_write() == 0 && conn.cur_stream.is_none();
        let done = conn.outstanding == 0 && flushed;
        if (conn.closing && flushed && conn.outstanding == 0)
            || (conn.read_closed && done)
            || (self.draining && done)
        {
            self.close(token);
        }
    }

    fn process_lines(&mut self, token: usize) {
        loop {
            let Some(conn) = self.conns[token].as_mut() else {
                return;
            };
            if conn.closing || self.draining {
                return;
            }
            if conn.outstanding >= self.config.pipeline_depth {
                return; // backpressure: bytes stay buffered
            }
            let pos = conn.rbuf.iter().position(|&b| b == b'\n');
            let partial_too_long = pos.is_none() && conn.rbuf.len() > MAX_REQUEST_BYTES;
            let Some(pos) = pos else {
                if partial_too_long {
                    self.refuse_line_too_long(token);
                }
                return;
            };
            let line = String::from_utf8_lossy(&conn.rbuf[..pos]).into_owned();
            conn.rbuf.drain(..=pos);
            if line.len() > MAX_REQUEST_BYTES {
                self.refuse_line_too_long(token);
                return;
            }
            if line.trim().is_empty() {
                continue;
            }
            self.handle_line(token, &line);
        }
    }

    /// Oversized line: answer once, then drop the connection (the rest
    /// of the flood is never read).
    fn refuse_line_too_long(&mut self, token: usize) {
        let Some(conn) = self.conns[token].as_mut() else {
            return;
        };
        let seq = conn.next_seq;
        conn.next_seq += 1;
        conn.outstanding += 1;
        conn.closing = true;
        conn.read_closed = true;
        conn.rbuf.clear();
        self.finish(
            token,
            seq,
            Reply::Line(err_response(0, "request line too long")),
        );
    }

    /// Park a completed response at its sequence slot (the write pump
    /// emits strictly in order) and account for it.
    fn finish(&mut self, token: usize, seq: u64, reply: Reply) {
        let Some(conn) = self.conns[token].as_mut() else {
            return;
        };
        conn.finished_bytes += reply.cost();
        conn.finished.insert(seq, reply);
        self.shared.served.fetch_add(1, Ordering::Relaxed);
        let over_cap = conn.finished_bytes + conn.pending_write() > self.config.write_buffer_cap;
        if over_cap {
            // A reader this far behind is stalled or hostile; a clean
            // drop beats unbounded buffering (it cannot read an error
            // line either — that's what it's not doing).
            self.close(token);
        }
    }

    fn dispatch(&mut self, job: Job) {
        self.jobs_in_flight += 1;
        let _ = self.job_tx.send(job);
    }

    fn handle_line(&mut self, token: usize, line: &str) {
        let Some(conn) = self.conns[token].as_mut() else {
            return;
        };
        let seq = conn.next_seq;
        conn.next_seq += 1;
        conn.outstanding += 1;
        let gen = conn.gen;
        match Request::decode(line) {
            Err(message) => self.finish(token, seq, Reply::Line(err_response(0, &message))),
            Ok(Request::Ping { id }) => self.finish(
                token,
                seq,
                Reply::Line(format!("{{\"id\":{id},\"ok\":true,\"pong\":true}}")),
            ),
            Ok(Request::Shutdown { id }) => {
                self.finish(
                    token,
                    seq,
                    Reply::Line(format!("{{\"id\":{id},\"ok\":true,\"stopping\":true}}")),
                );
                self.shared.stop.store(true, Ordering::SeqCst);
            }
            Ok(Request::Stats { id }) => {
                let line = self.stats_line(id);
                self.finish(token, seq, Reply::Line(line));
            }
            Ok(Request::Add { id, texts }) => {
                if !self.shared.writable {
                    self.finish(
                        token,
                        seq,
                        Reply::Line(err_response(
                            id,
                            "server is read-only (start with --writable to accept add)",
                        )),
                    );
                    return;
                }
                self.dispatch(Job {
                    conn: token,
                    gen,
                    seq,
                    id,
                    tenant: None,
                    admitted: false,
                    kind: JobKind::Add { texts },
                });
            }
            Ok(Request::Compact { id }) => {
                if !self.shared.writable {
                    self.finish(
                        token,
                        seq,
                        Reply::Line(err_response(
                            id,
                            "server is read-only (start with --writable to accept compact)",
                        )),
                    );
                    return;
                }
                self.dispatch(Job {
                    conn: token,
                    gen,
                    seq,
                    id,
                    tenant: None,
                    admitted: false,
                    kind: JobKind::Compact,
                });
            }
            Ok(Request::Query {
                id,
                text,
                cache,
                opts,
                auth,
            }) => {
                let kind = self.build_query_kind(&text, cache, &opts, auth.as_deref());
                if !self.adm.enabled() {
                    self.dispatch(Job {
                        conn: token,
                        gen,
                        seq,
                        id,
                        tenant: None,
                        admitted: false,
                        kind,
                    });
                    return;
                }
                let now_s = self.start.elapsed().as_secs_f64();
                match self.adm.admit(auth.as_deref(), now_s) {
                    Admission::Dispatch => self.dispatch(Job {
                        conn: token,
                        gen,
                        seq,
                        id,
                        tenant: auth,
                        admitted: true,
                        kind,
                    }),
                    Admission::Enqueue => {
                        self.parked.entry(auth).or_default().push_back(Parked {
                            conn: token,
                            gen,
                            seq,
                            id,
                            kind,
                        });
                    }
                    Admission::Reject(overload) => {
                        self.finish(
                            token,
                            seq,
                            Reply::Line(overload_response(id, auth.as_deref(), &overload)),
                        );
                    }
                }
            }
        }
    }

    /// Lower a wire query onto a job, applying tenant request shaping
    /// (deadline defaults/caps). No-opts requests keep the exact
    /// historical execution path unless their tenant shapes deadlines.
    fn build_query_kind(
        &self,
        text: &str,
        cache: bool,
        opts: &Option<crate::protocol::QueryOpts>,
        auth: Option<&str>,
    ) -> JobKind {
        let shaping = self
            .adm
            .table()
            .policy_for(auth)
            .map(|p| p.default_deadline.is_some() || p.deadline_cap.is_some())
            .unwrap_or(false);
        match opts {
            None if !shaping => JobKind::LegacyQuery {
                text: text.to_string(),
                cache,
            },
            None => {
                let mut req = QueryRequest::new(text).cache(cache);
                self.adm.shape_request(auth, &mut req);
                JobKind::Run {
                    req,
                    legacy_shape: true,
                    stream: false,
                }
            }
            Some(o) => {
                let mut req = o.to_request(text, cache);
                self.adm.shape_request(auth, &mut req);
                JobKind::Run {
                    req,
                    legacy_shape: false,
                    stream: o.stream,
                }
            }
        }
    }

    fn stats_line(&self, id: u64) -> String {
        let shared = &self.shared;
        let cache = shared.koko.cache_stats();
        let snap = shared.koko.snapshot();
        format!(
            "{{\"id\":{id},\"ok\":true,\"stats\":{{\"threads\":{},\"documents\":{},\"shards\":{},\"delta_shards\":{},\"delta_documents\":{},\"epoch\":{},\"generation\":{},\"writable\":{},\"docs_added\":{},\"served\":{},\"queries_ok\":{},\"queries_err\":{},\"compiled_cache_hits\":{},\"compiled_cache_misses\":{},\"result_cache_hits\":{},\"result_cache_misses\":{},\"result_cache_capacity\":{},\"connections\":{},\"tenants\":{},\"draining\":{}}}}}",
            shared.threads,
            snap.num_documents(),
            snap.num_shards(),
            snap.num_delta_shards(),
            snap.num_delta_documents(),
            snap.epoch(),
            snap.generation(),
            shared.writable,
            shared.docs_added.load(Ordering::Relaxed),
            shared.served.load(Ordering::Relaxed),
            shared.queries_ok.load(Ordering::Relaxed),
            shared.queries_err.load(Ordering::Relaxed),
            cache.compiled_hits,
            cache.compiled_misses,
            cache.result_hits,
            cache.result_misses,
            shared.koko.opts.result_cache,
            self.num_conns,
            self.adm.table().len(),
            self.draining,
        )
    }

    fn on_done(&mut self, done: Done) {
        self.jobs_in_flight -= 1;
        if done.admitted {
            self.adm.on_complete(done.tenant.as_deref());
            self.promote_parked(&done.tenant);
        }
        let live = self.conns.get(done.conn).and_then(|c| c.as_ref());
        if live.map(|c| c.gen) == Some(done.gen) {
            self.finish(done.conn, done.seq, done.reply);
            self.service(done.conn);
        }
    }

    /// Move freed concurrency slots to this tenant's queued requests.
    fn promote_parked(&mut self, tenant: &Option<String>) {
        loop {
            let has_queued = self.parked.get(tenant).is_some_and(|q| !q.is_empty());
            if !has_queued || !self.adm.try_dispatch_queued(tenant.as_deref()) {
                return;
            }
            let parked = self
                .parked
                .get_mut(tenant)
                .and_then(|q| q.pop_front())
                .expect("checked non-empty");
            self.dispatch(Job {
                conn: parked.conn,
                gen: parked.gen,
                seq: parked.seq,
                id: parked.id,
                tenant: tenant.clone(),
                admitted: true,
                kind: parked.kind,
            });
        }
    }

    /// Serialize due responses into the write buffer (in seq order, up
    /// to the low watermark) and flush as much as the socket takes.
    fn pump(&mut self, token: usize) {
        let low_water = WRITE_LOW_WATER.min(self.config.write_buffer_cap);
        loop {
            let mut must_close = false;
            let Some(conn) = self.conns[token].as_mut() else {
                return;
            };
            // Fill phase.
            let mut filled = false;
            while conn.pending_write() < low_water {
                if let Some(st) = conn.cur_stream.as_mut() {
                    if st.next_row < st.out.rows.len() {
                        let end = (st.next_row + STREAM_CHUNK_ROWS).min(st.out.rows.len());
                        let frame = stream_chunk(st.id, st.chunk, &st.out.rows[st.next_row..end]);
                        st.chunk += 1;
                        st.next_row = end;
                        conn.wbuf.extend_from_slice(frame.as_bytes());
                        conn.wbuf.push(b'\n');
                    } else {
                        let frame = stream_trailer(st.id, st.chunk, &st.out);
                        conn.wbuf.extend_from_slice(frame.as_bytes());
                        conn.wbuf.push(b'\n');
                        conn.cur_stream = None;
                        conn.outstanding -= 1;
                    }
                    filled = true;
                    continue;
                }
                match conn.finished.remove(&conn.next_write_seq) {
                    Some(reply) => {
                        conn.finished_bytes -= reply.cost();
                        conn.next_write_seq += 1;
                        match reply {
                            Reply::Line(s) => {
                                conn.wbuf.extend_from_slice(s.as_bytes());
                                conn.wbuf.push(b'\n');
                                conn.outstanding -= 1;
                            }
                            Reply::Stream { id, out } => {
                                let header = stream_header(id, &out);
                                conn.wbuf.extend_from_slice(header.as_bytes());
                                conn.wbuf.push(b'\n');
                                conn.cur_stream = Some(StreamState {
                                    id,
                                    out,
                                    next_row: 0,
                                    chunk: 0,
                                });
                            }
                        }
                        filled = true;
                    }
                    None => break,
                }
            }
            // Flush phase.
            let mut wrote = false;
            while conn.wpos < conn.wbuf.len() {
                match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                    Ok(0) => {
                        must_close = true;
                        break;
                    }
                    Ok(n) => {
                        conn.wpos += n;
                        wrote = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        must_close = true;
                        break;
                    }
                }
            }
            if conn.wpos == conn.wbuf.len() {
                conn.wbuf.clear();
                conn.wpos = 0;
            } else if conn.wpos > WRITE_LOW_WATER {
                conn.wbuf.drain(..conn.wpos);
                conn.wpos = 0;
            }
            // Another lap only while both phases made progress (a lap
            // that filled but could not flush would spin).
            let more_due =
                conn.cur_stream.is_some() || conn.finished.contains_key(&conn.next_write_seq);
            let keep_going = filled && wrote && more_due && conn.pending_write() < low_water;
            if must_close {
                self.close(token);
                return;
            }
            if !keep_going {
                return;
            }
        }
    }

    fn update_interest(&mut self, token: usize) {
        let Some(conn) = self.conns[token].as_mut() else {
            return;
        };
        let desired = Interest {
            readable: !conn.read_closed
                && !conn.closing
                && !self.draining
                && conn.outstanding < self.config.pipeline_depth
                && conn.pending_write() < READ_PAUSE_WATER,
            writable: conn.pending_write() > 0 || conn.cur_stream.is_some(),
        };
        if desired != conn.interest {
            let fd = conn.stream.as_raw_fd();
            conn.interest = desired;
            let _ = self.poller.modify(fd, token, desired);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use koko_core::tenant::TenantPolicy;
    use koko_core::EngineOpts;
    use std::io::{BufRead, BufReader};

    fn test_engine(result_cache: usize) -> Koko {
        Koko::from_texts_with_opts(
            &[
                "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
                "Anna ate some delicious cheesecake that she bought at a grocery store.",
            ],
            EngineOpts {
                result_cache,
                // Workers are the parallelism; shard fan-out off keeps the
                // test deterministic on 1-core CI boxes too.
                parallel: false,
                num_shards: 1,
                ..EngineOpts::default()
            },
        )
    }

    #[test]
    fn serves_queries_pings_and_stats() {
        let server = Server::bind(test_engine(8), "127.0.0.1:0", 2).unwrap();
        let mut client = Client::connect(&server.local_addr().to_string()).unwrap();

        let pong = client.ping().unwrap();
        assert!(pong.contains("\"pong\":true"), "{pong}");

        let q = koko_lang::queries::EXAMPLE_2_1;
        let first = client.query(q, true).unwrap();
        assert!(first.contains("\"ok\":true"), "{first}");
        assert!(first.contains("\"result_cache_misses\":1"), "{first}");
        let second = client.query(q, true).unwrap();
        assert!(second.contains("\"result_cache_hits\":1"), "{second}");
        assert_eq!(
            crate::protocol::response_rows(&first),
            crate::protocol::response_rows(&second),
            "cached rows byte-identical"
        );

        let stats = client.stats().unwrap();
        assert!(stats.contains("\"queries_ok\":2"), "{stats}");
        assert!(stats.contains("\"result_cache_hits\":1"), "{stats}");

        let bad = client.query("not a query", true).unwrap();
        assert!(bad.contains("\"ok\":false"), "{bad}");
        assert!(bad.contains("parse error"), "{bad}");

        drop(client);
        server.shutdown();
    }

    #[test]
    fn malformed_lines_get_errors_and_keep_the_connection() {
        let server = Server::bind(test_engine(0), "127.0.0.1:0", 1).unwrap();
        let mut client = Client::connect(&server.local_addr().to_string()).unwrap();
        let r = client.send_raw("this is not json").unwrap();
        assert!(r.contains("\"ok\":false"), "{r}");
        let r = client.send_raw("{\"cmd\":\"reboot\"}").unwrap();
        assert!(r.contains("unknown cmd"), "{r}");
        // The connection survived both errors.
        assert!(client.ping().unwrap().contains("pong"));
        drop(client);
        server.shutdown();
    }

    #[test]
    fn oversized_request_lines_are_rejected_not_buffered() {
        let server = Server::bind(test_engine(0), "127.0.0.1:0", 1).unwrap();
        let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
        // Stream well past the limit without a newline; the server must
        // answer with an error and drop the connection instead of
        // buffering indefinitely.
        let chunk = vec![b'x'; 64 * 1024];
        let mut sent = 0usize;
        while sent <= MAX_REQUEST_BYTES + chunk.len() {
            if stream.write_all(&chunk).is_err() {
                break; // server already hung up mid-flood: acceptable
            }
            sent += chunk.len();
        }
        let _ = stream.write_all(b"\n");
        let _ = stream.flush();
        let mut response = String::new();
        let _ = BufReader::new(&stream).read_line(&mut response);
        // Either the error response arrived, or the server closed first.
        assert!(
            response.is_empty() || response.contains("request line too long"),
            "{response}"
        );
        drop(stream);
        server.shutdown();
    }

    #[test]
    fn read_only_servers_refuse_online_updates() {
        let server = Server::bind(test_engine(0), "127.0.0.1:0", 1).unwrap();
        assert!(!server.writable());
        let mut client = Client::connect(&server.local_addr().to_string()).unwrap();
        let r = client.add(&["New doc.".to_string()]).unwrap();
        assert!(r.contains("\"ok\":false") && r.contains("read-only"), "{r}");
        let r = client.compact().unwrap();
        assert!(r.contains("\"ok\":false") && r.contains("read-only"), "{r}");
        // The connection and the corpus are untouched.
        let stats = client.stats().unwrap();
        assert!(stats.contains("\"documents\":2"), "{stats}");
        assert!(stats.contains("\"writable\":false"), "{stats}");
        drop(client);
        server.shutdown();
    }

    #[test]
    fn writable_server_adds_compacts_and_serves_the_new_docs() {
        let server = Server::bind_with(test_engine(8), "127.0.0.1:0", 2, true).unwrap();
        assert!(server.writable());
        let addr = server.local_addr().to_string();
        let mut client = Client::connect(&addr).unwrap();

        // Cache a result, then add a matching document: the epoch-keyed
        // result cache must not serve the stale rows.
        let q = koko_lang::queries::EXAMPLE_2_1;
        let before = client.query(q, true).unwrap();
        let added = client
            .add(&["Bob ate some delicious croissant at the cafe.".to_string()])
            .unwrap();
        assert!(added.contains("\"ok\":true"), "{added}");
        assert!(added.contains("\"added\":1"), "{added}");
        assert!(added.contains("\"documents\":3"), "{added}");
        assert!(added.contains("\"delta_shards\":1"), "{added}");

        let after = client.query(q, true).unwrap();
        assert_ne!(
            crate::protocol::response_rows(&before),
            crate::protocol::response_rows(&after),
            "new document must appear in results"
        );
        assert!(after.contains("\"delta_candidates\":1"), "{after}");

        // A second client sees the same state.
        let mut other = Client::connect(&addr).unwrap();
        let stats = other.stats().unwrap();
        assert!(stats.contains("\"documents\":3"), "{stats}");
        assert!(stats.contains("\"docs_added\":1"), "{stats}");
        assert!(stats.contains("\"writable\":true"), "{stats}");

        // Compaction merges the delta; rows stay byte-identical.
        let compacted = client.compact().unwrap();
        assert!(compacted.contains("\"merged_deltas\":1"), "{compacted}");
        let final_rows = client.query(q, true).unwrap();
        assert_eq!(
            crate::protocol::response_rows(&after),
            crate::protocol::response_rows(&final_rows),
            "compaction must not change rows"
        );
        assert!(
            final_rows.contains("\"delta_candidates\":0"),
            "{final_rows}"
        );

        drop(client);
        drop(other);
        server.shutdown();
    }

    #[test]
    fn wire_shutdown_stops_the_server() {
        let server = Server::bind(test_engine(0), "127.0.0.1:0", 2).unwrap();
        let addr = server.local_addr().to_string();
        let mut client = Client::connect(&addr).unwrap();
        let bye = client.send_raw("{\"cmd\":\"shutdown\"}").unwrap();
        assert!(bye.contains("\"stopping\":true"), "{bye}");
        drop(client);
        server.join(); // returns only because the wire shutdown landed
    }

    #[test]
    fn shutdown_completes_despite_idle_connections() {
        let server = Server::bind(test_engine(0), "127.0.0.1:0", 2).unwrap();
        let addr = server.local_addr().to_string();
        // A keep-alive client that connects and never sends a request.
        let idle = std::net::TcpStream::connect(&addr).unwrap();
        let mut client = Client::connect(&addr).unwrap();
        let bye = client.shutdown().unwrap();
        assert!(bye.contains("\"stopping\":true"), "{bye}");
        drop(client);
        // join() must return even though `idle` is still open: the drain
        // closes idle connections once nothing is in flight.
        server.join();
        drop(idle);
    }

    #[test]
    fn pipelined_requests_answer_in_request_order() {
        let server = Server::bind(test_engine(8), "127.0.0.1:0", 2).unwrap();
        let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
        // Fire a burst of requests without reading a single response:
        // queries (worker round-trips) interleaved with pings (answered
        // inline by the reactor) — responses must still come back in
        // request order.
        let q = koko_lang::queries::EXAMPLE_2_1
            .replace('"', "\\\"")
            .replace('\n', " ");
        let mut batch = String::new();
        for id in 1..=9u64 {
            if id % 3 == 0 {
                batch.push_str(&format!("{{\"id\":{id},\"cmd\":\"ping\"}}\n"));
            } else {
                batch.push_str(&format!("{{\"id\":{id},\"query\":\"{q}\"}}\n"));
            }
        }
        stream.write_all(batch.as_bytes()).unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream);
        for id in 1..=9u64 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(
                line.starts_with(&format!("{{\"id\":{id},")),
                "response out of order: expected id {id}, got {line}"
            );
        }
        server.shutdown();
    }

    #[test]
    fn streamed_response_is_byte_identical_after_reassembly() {
        let server = Server::bind(test_engine(0), "127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr().to_string();
        let q = koko_lang::queries::EXAMPLE_2_1;

        // Reference: the one-line extended response.
        let mut client = Client::connect(&addr).unwrap();
        let single = client
            .query_with_opts(q, true, crate::protocol::QueryOpts::default())
            .unwrap();
        let expected_rows = crate::protocol::response_rows(&single).unwrap().to_string();

        // Streamed: header, chunks, trailer over a raw socket.
        let mut stream = std::net::TcpStream::connect(&addr).unwrap();
        let line = Request::Query {
            id: 5,
            text: q.into(),
            cache: true,
            opts: Some(crate::protocol::QueryOpts {
                stream: true,
                ..Default::default()
            }),
            auth: None,
        }
        .encode();
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut header = String::new();
        reader.read_line(&mut header).unwrap();
        assert!(
            header.contains("\"stream\":true") && header.contains("\"id\":5"),
            "{header}"
        );
        let mut rebuilt = String::from("[");
        let mut chunks = 0usize;
        loop {
            let mut frame = String::new();
            reader.read_line(&mut frame).unwrap();
            if frame.contains("\"done\":true") {
                assert!(frame.contains(&format!("\"chunks\":{chunks}")), "{frame}");
                assert!(frame.contains("\"profile\":{"), "{frame}");
                break;
            }
            assert!(frame.contains(&format!("\"chunk\":{chunks}")), "{frame}");
            let rows = crate::protocol::stream_rows(frame.trim_end()).unwrap();
            if rebuilt.len() > 1 && rows.len() > 2 {
                rebuilt.push(',');
            }
            rebuilt.push_str(&rows[1..rows.len() - 1]);
            chunks += 1;
        }
        rebuilt.push(']');
        assert_eq!(
            rebuilt, expected_rows,
            "stream reassembly must be byte-identical"
        );
        drop(client);
        server.shutdown();
    }

    #[test]
    fn tenant_admission_rejects_with_structured_errors() {
        let mut tenants = TenantTable::new();
        tenants.insert(
            "alice",
            TenantPolicy {
                rate_per_s: 1.0, // 1 rps, burst 2: the third burst query trips it
                burst: 2.0,
                max_queue: 4,
                max_concurrent: 2,
                default_deadline: None,
                deadline_cap: None,
            },
        );
        let server = Server::bind_config(
            test_engine(0),
            "127.0.0.1:0",
            ServerConfig {
                threads: 1,
                tenants,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut client = Client::connect(&server.local_addr().to_string()).unwrap();
        let q = koko_lang::queries::EXAMPLE_2_1;

        // Unknown tenant: 401-equivalent, connection stays open.
        let r = client.query_as(q, true, None, Some("mallory")).unwrap();
        assert!(
            r.contains("\"ok\":false") && r.contains("\"code\":401"),
            "{r}"
        );
        assert!(r.contains("\"tenant\":\"mallory\""), "{r}");

        // Anonymous with no default policy: also refused.
        let r = client.query(q, true).unwrap();
        assert!(
            r.contains("\"code\":401") && r.contains("\"tenant\":null"),
            "{r}"
        );

        // The configured tenant burns its burst, then gets a 429 with a
        // retry hint.
        let r = client.query_as(q, true, None, Some("alice")).unwrap();
        assert!(r.contains("\"ok\":true"), "{r}");
        let r = client.query_as(q, true, None, Some("alice")).unwrap();
        assert!(r.contains("\"ok\":true"), "{r}");
        let r = client.query_as(q, true, None, Some("alice")).unwrap();
        assert!(
            r.contains("\"code\":429") && r.contains("\"retry_after_ms\""),
            "{r}"
        );
        assert!(r.contains("\"tenant\":\"alice\""), "{r}");

        drop(client);
        server.shutdown();
    }

    #[test]
    fn tenant_deadline_caps_shape_requests_not_shapes() {
        // A tenant whose deadline cap is generous enough to never fire:
        // responses (legacy and extended) stay byte-identical to an
        // unconstrained run, proving shaping rides the same path.
        let mut tenants = TenantTable::new();
        let policy = TenantPolicy {
            deadline_cap: Some(Duration::from_secs(3600)),
            ..TenantPolicy::default()
        };
        tenants.insert("alice", policy);
        let server = Server::bind_config(
            test_engine(0),
            "127.0.0.1:0",
            ServerConfig {
                threads: 1,
                tenants,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let open = Server::bind(test_engine(0), "127.0.0.1:0", 1).unwrap();

        let q = koko_lang::queries::EXAMPLE_2_1;
        let mut tenant_client = Client::connect(&server.local_addr().to_string()).unwrap();
        let mut open_client = Client::connect(&open.local_addr().to_string()).unwrap();
        let shaped = tenant_client
            .query_as(q, true, None, Some("alice"))
            .unwrap();
        let free = open_client.query(q, true).unwrap();
        assert_eq!(
            crate::protocol::response_rows(&shaped),
            crate::protocol::response_rows(&free),
            "deadline shaping must not change rows"
        );
        assert!(shaped.contains("\"num_rows\":"), "{shaped}");
        assert!(!shaped.contains("total_matches"), "legacy shape preserved");

        drop(tenant_client);
        drop(open_client);
        server.shutdown();
        open.shutdown();
    }
}
