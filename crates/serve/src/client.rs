//! Client side of the serve protocol: a blocking one-connection client
//! plus a multi-threaded load generator for benchmarks and the CLI's
//! `koko client` mode.

use crate::protocol::{QueryOpts, Request};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A blocking client holding one connection. Requests are answered in
/// order (the protocol is one response line per request line).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connect to a serve endpoint, e.g. `"127.0.0.1:4100"`.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Small request lines: disable Nagle so each request leaves now.
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
            next_id: 1,
        })
    }

    /// Send one raw line and read one response line (protocol-agnostic —
    /// used by tests to exercise the server's error handling).
    pub fn send_raw(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }

    fn send(&mut self, request: &Request) -> std::io::Result<String> {
        self.send_raw(&request.encode())
    }

    /// Evaluate a query; `cache: false` bypasses the server's caches for
    /// this request. Returns the raw response line.
    pub fn query(&mut self, text: &str, cache: bool) -> std::io::Result<String> {
        let id = self.fresh_id();
        self.send(&Request::Query {
            id,
            text: text.to_string(),
            cache,
            opts: None,
            auth: None,
        })
    }

    /// [`Client::query`] with per-request [`QueryOpts`] (limit / offset /
    /// min_score / order / deadline / explain). The response is the
    /// extended shape carrying `total_matches` and `truncated`.
    pub fn query_with_opts(
        &mut self,
        text: &str,
        cache: bool,
        opts: QueryOpts,
    ) -> std::io::Result<String> {
        let id = self.fresh_id();
        self.send(&Request::Query {
            id,
            text: text.to_string(),
            cache,
            opts: Some(opts),
            auth: None,
        })
    }

    /// The fully general query: optional [`QueryOpts`] and an optional
    /// `auth` tenant identity for servers running admission control.
    /// Returns the raw response line (which may be a structured 401/429
    /// overload refusal — the connection stays usable either way).
    pub fn query_as(
        &mut self,
        text: &str,
        cache: bool,
        opts: Option<QueryOpts>,
        auth: Option<&str>,
    ) -> std::io::Result<String> {
        let id = self.fresh_id();
        self.send(&Request::Query {
            id,
            text: text.to_string(),
            cache,
            opts,
            auth: auth.map(str::to_string),
        })
    }

    /// Run a query with `opts.stream` forced on and reassemble the
    /// chunked response client-side. If the server refuses the request
    /// before streaming starts (parse error, overload), the refusal line
    /// comes back in `header` with zero chunks and empty `rows_json`.
    pub fn query_stream(
        &mut self,
        text: &str,
        cache: bool,
        mut opts: QueryOpts,
        auth: Option<&str>,
    ) -> std::io::Result<StreamedResponse> {
        opts.stream = true;
        let header = self.query_as(text, cache, Some(opts), auth)?;
        if !header.contains("\"stream\":true") {
            return Ok(StreamedResponse {
                header,
                rows_json: String::new(),
                chunks: 0,
                trailer: String::new(),
            });
        }
        let mut rows_json = String::from("[");
        let mut chunks = 0usize;
        loop {
            let mut frame = String::new();
            let n = self.reader.read_line(&mut frame)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed mid-stream",
                ));
            }
            while frame.ends_with('\n') || frame.ends_with('\r') {
                frame.pop();
            }
            if frame.contains("\"done\":true") {
                rows_json.push(']');
                return Ok(StreamedResponse {
                    header,
                    rows_json,
                    chunks,
                    trailer: frame,
                });
            }
            let rows = crate::protocol::stream_rows(&frame).ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("malformed stream chunk: {frame}"),
                )
            })?;
            if rows_json.len() > 1 && rows.len() > 2 {
                rows_json.push(',');
            }
            rows_json.push_str(&rows[1..rows.len() - 1]);
            chunks += 1;
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> std::io::Result<String> {
        let id = self.fresh_id();
        self.send(&Request::Ping { id })
    }

    /// Server + cache counters.
    pub fn stats(&mut self) -> std::io::Result<String> {
        let id = self.fresh_id();
        self.send(&Request::Stats { id })
    }

    /// Ask the server to stop.
    pub fn shutdown(&mut self) -> std::io::Result<String> {
        let id = self.fresh_id();
        self.send(&Request::Shutdown { id })
    }

    /// Ingest new documents into a writable server's live index. Returns
    /// the raw response line (`added`, `documents`, `epoch`, …), or an
    /// `"ok":false` error line from a read-only server.
    pub fn add(&mut self, texts: &[String]) -> std::io::Result<String> {
        let id = self.fresh_id();
        self.send(&Request::Add {
            id,
            texts: texts.to_vec(),
        })
    }

    /// Ask a writable server to merge its delta shards into the base.
    pub fn compact(&mut self) -> std::io::Result<String> {
        let id = self.fresh_id();
        self.send(&Request::Compact { id })
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }
}

/// Structured failure of the retrying connect/query paths. A plain
/// [`Client::connect`] still surfaces the raw [`std::io::Error`]; the
/// retrying entry points classify it: transient faults (refused, reset,
/// aborted, timed out — the signatures of a server mid-restart) are
/// retried with jittered backoff and only after the budget is exhausted
/// collapse into [`ServeError::Unavailable`], while everything else
/// (permission, unreachable network, protocol violations) fails fast as
/// [`ServeError::Io`].
#[derive(Debug)]
pub enum ServeError {
    /// The endpoint stayed transiently unreachable through every retry
    /// attempt — the server is down or restarting. Carries the address,
    /// how many attempts were spent, and the last underlying error.
    Unavailable {
        /// The `host:port` that never answered.
        addr: String,
        /// Connect attempts made (≥ 1).
        attempts: usize,
        /// The error the final attempt died with.
        last: std::io::Error,
    },
    /// A non-transient I/O error; retrying would not help.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Unavailable {
                addr,
                attempts,
                last,
            } => write!(
                f,
                "server {addr} unavailable after {attempts} attempt{}: {last}",
                if *attempts == 1 { "" } else { "s" }
            ),
            ServeError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ServeError> for std::io::Error {
    fn from(e: ServeError) -> std::io::Error {
        match e {
            ServeError::Io(io) => io,
            ServeError::Unavailable { .. } => {
                std::io::Error::new(std::io::ErrorKind::ConnectionRefused, e.to_string())
            }
        }
    }
}

/// Whether an I/O error looks like a server mid-restart (worth retrying)
/// rather than a permanent failure. `UnexpectedEof` is included: a
/// restarting server closes accepted connections before its listener is
/// torn down, which the read side observes as a clean EOF.
pub fn is_transient(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::UnexpectedEof
    )
}

/// Bounded retry with jittered exponential backoff. The jitter is a
/// deterministic LCG seeded per policy, so tests are reproducible and the
/// library needs no RNG dependency; distinct callers should vary `seed`
/// (the cluster coordinator seeds per worker) so a restarted server is
/// not hit by every client on the same schedule.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts (≥ 1); `1` means "no retry".
    pub attempts: usize,
    /// Backoff before the first retry; doubles per attempt.
    pub base: Duration,
    /// Ceiling on any single backoff sleep.
    pub cap: Duration,
    /// Jitter seed; each sleep is scaled into `[50%, 100%]` of the
    /// exponential step by the next LCG draw.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base: Duration::from_millis(25),
            cap: Duration::from_millis(500),
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl RetryPolicy {
    /// The jittered sleep before retry number `retry` (0-based).
    pub fn backoff(&self, retry: u32, seed: &mut u64) -> Duration {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let unit = ((*seed >> 33) & 0x7FFF_FFFF) as f64 / (1u64 << 31) as f64; // [0, 1)
        let exp = self
            .base
            .saturating_mul(1u32 << retry.min(16))
            .min(self.cap);
        exp.mul_f64(0.5 + 0.5 * unit)
    }
}

impl Client {
    /// [`Client::connect`] with bounded retry + jittered backoff for
    /// transient faults (the regression fix for clients racing a server
    /// restart: a refused/reset connect used to surface as a raw
    /// [`std::io::Error`] on the first try). Non-transient errors fail
    /// fast; exhaustion returns [`ServeError::Unavailable`].
    pub fn connect_with_retry(addr: &str, policy: RetryPolicy) -> Result<Client, ServeError> {
        let attempts = policy.attempts.max(1);
        let mut seed = policy.seed;
        let mut last: Option<std::io::Error> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(policy.backoff(attempt as u32 - 1, &mut seed));
            }
            match Client::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) if is_transient(&e) => last = Some(e),
                Err(e) => return Err(ServeError::Io(e)),
            }
        }
        Err(ServeError::Unavailable {
            addr: addr.to_string(),
            attempts,
            last: last.unwrap_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "no attempt made")
            }),
        })
    }

    /// One query with reconnect-on-transient-failure: connects (with
    /// retry), sends, and — if the connection dies mid-round-trip with a
    /// transient error, as against a restarting server — reconnects and
    /// resends under the same bounded budget. Queries are read-only and
    /// idempotent, so the resend is safe.
    pub fn query_with_reconnect(
        addr: &str,
        text: &str,
        cache: bool,
        opts: Option<QueryOpts>,
        auth: Option<&str>,
        policy: RetryPolicy,
    ) -> Result<String, ServeError> {
        let attempts = policy.attempts.max(1);
        let mut seed = policy.seed;
        let mut last: Option<std::io::Error> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(policy.backoff(attempt as u32 - 1, &mut seed));
            }
            let mut client = match Client::connect(addr) {
                Ok(c) => c,
                Err(e) if is_transient(&e) => {
                    last = Some(e);
                    continue;
                }
                Err(e) => return Err(ServeError::Io(e)),
            };
            match client.query_as(text, cache, opts, auth) {
                Ok(line) => return Ok(line),
                Err(e) if is_transient(&e) => last = Some(e),
                Err(e) => return Err(ServeError::Io(e)),
            }
        }
        Err(ServeError::Unavailable {
            addr: addr.to_string(),
            attempts,
            last: last.unwrap_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "no attempt made")
            }),
        })
    }
}

/// A streamed query response reassembled client-side by
/// [`Client::query_stream`].
#[derive(Debug, Clone)]
pub struct StreamedResponse {
    /// The header frame (or the whole refusal line when the server never
    /// started streaming — then `chunks == 0` and `rows_json` is empty).
    pub header: String,
    /// Every chunk's rows concatenated back into one JSON array —
    /// byte-identical to the `rows` of the equivalent unstreamed response.
    pub rows_json: String,
    /// Chunk frames received.
    pub chunks: usize,
    /// The trailer frame (`done`, `chunks`, `profile`).
    pub trailer: String,
}

/// What one load-generation run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Client threads used.
    pub threads: usize,
    /// Requests sent (= responses received) across all threads.
    pub requests: usize,
    /// Responses with `"ok":true`.
    pub ok: usize,
    /// Responses with `"ok":false`.
    pub errors: usize,
    /// Wall-clock for the whole run.
    pub wall: Duration,
    /// `requests / wall` in queries per second.
    pub qps: f64,
    /// Every response line, grouped per thread in send order — byte-exact,
    /// so callers can assert conformance against a local evaluation.
    pub responses: Vec<Vec<String>>,
}

/// Fire `repeat` rounds of `queries` from each of `threads` concurrent
/// connections and collect every response. Each thread opens one
/// connection and sends its requests back-to-back (closed-loop load).
/// `cache: false` marks every request cache-bypassing.
pub fn run_load(
    addr: &str,
    queries: &[String],
    threads: usize,
    repeat: usize,
    cache: bool,
) -> std::io::Result<LoadReport> {
    run_load_with(addr, queries, threads, repeat, cache, None)
}

/// [`run_load`] with optional per-request [`QueryOpts`] attached to every
/// query (the CLI's `koko client --limit/--min-score/...` path).
pub fn run_load_with(
    addr: &str,
    queries: &[String],
    threads: usize,
    repeat: usize,
    cache: bool,
    opts: Option<QueryOpts>,
) -> std::io::Result<LoadReport> {
    run_load_as(addr, queries, threads, repeat, cache, opts, None)
}

/// [`run_load_with`] plus an `auth` tenant identity attached to every
/// request — closed-loop load against a server running admission control
/// (refusals count into `errors`).
pub fn run_load_as(
    addr: &str,
    queries: &[String],
    threads: usize,
    repeat: usize,
    cache: bool,
    opts: Option<QueryOpts>,
    auth: Option<&str>,
) -> std::io::Result<LoadReport> {
    // Clamp to something a machine can actually run; absurd requests are
    // caller bugs and must not overflow allocation sizes (the CLI also
    // validates, this is the library's own floor/ceiling).
    let threads = threads.clamp(1, 4096);
    let t0 = Instant::now();
    let per_thread: Vec<std::io::Result<Vec<String>>> =
        koko_par::par_map_range(threads, threads, |_| {
            let mut client = Client::connect(addr)?;
            let mut responses =
                Vec::with_capacity(queries.len().saturating_mul(repeat).min(1 << 16));
            for _ in 0..repeat {
                for q in queries {
                    responses.push(match (opts, auth) {
                        (None, None) => client.query(q, cache)?,
                        (opts, auth) => client.query_as(q, cache, opts, auth)?,
                    });
                }
            }
            Ok(responses)
        });
    let wall = t0.elapsed();

    let mut responses = Vec::with_capacity(threads);
    for r in per_thread {
        responses.push(r?);
    }
    let requests: usize = responses.iter().map(Vec::len).sum();
    let ok = responses
        .iter()
        .flatten()
        .filter(|r| r.contains("\"ok\":true"))
        .count();
    Ok(LoadReport {
        threads,
        requests,
        ok,
        errors: requests - ok,
        wall,
        qps: requests as f64 / wall.as_secs_f64().max(1e-9),
        responses,
    })
}

/// What one open-loop run measured. Latencies are measured from each
/// request's *scheduled* arrival time, not its actual send time, so a
/// server that falls behind the offered rate shows the queueing delay in
/// its tail percentiles instead of hiding it (no coordinated omission).
#[derive(Debug, Clone)]
pub struct OpenLoadReport {
    /// Connections used to carry the schedule.
    pub threads: usize,
    /// Requests sent (= responses received).
    pub requests: usize,
    /// Responses with `"ok":true`.
    pub ok: usize,
    /// Responses with `"ok":false`.
    pub errors: usize,
    /// Wall-clock for the whole run.
    pub wall: Duration,
    /// The fixed arrival rate the schedule was built for.
    pub offered_rps: f64,
    /// `requests / wall` actually achieved.
    pub achieved_rps: f64,
    /// Median latency (scheduled arrival → response received).
    pub p50: Duration,
    /// 95th-percentile latency.
    pub p95: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Open-loop (fixed-arrival-rate) load: `requests` arrivals are scheduled
/// at exactly `rate_rps` starting now, striped round-robin across
/// `threads` connections; each connection sleeps until an arrival's
/// scheduled time, sends it, and measures latency from that scheduled
/// time. Queries cycle through `queries`; `auth` attaches a tenant
/// identity to every request. Overload refusals count as `errors` — an
/// open-loop run against a rate-limited tenant is how you *measure* the
/// admission boundary.
#[allow(clippy::too_many_arguments)]
pub fn run_load_open(
    addr: &str,
    queries: &[String],
    threads: usize,
    requests: usize,
    rate_rps: f64,
    cache: bool,
    opts: Option<QueryOpts>,
    auth: Option<&str>,
) -> std::io::Result<OpenLoadReport> {
    let threads = threads.clamp(1, 4096);
    let requests = requests.max(1);
    let rate_rps = if rate_rps.is_finite() && rate_rps > 0.0 {
        rate_rps
    } else {
        1.0
    };
    let t0 = Instant::now();
    let per_thread: Vec<std::io::Result<Vec<(Duration, bool)>>> =
        koko_par::par_map_range(threads, threads, |i| {
            let mut client = Client::connect(addr)?;
            let mut samples = Vec::with_capacity(requests / threads + 1);
            let mut k = i;
            while k < requests {
                let sched = Duration::from_secs_f64(k as f64 / rate_rps);
                let now = t0.elapsed();
                if sched > now {
                    std::thread::sleep(sched - now);
                }
                let q = &queries[k % queries.len()];
                let response = match opts {
                    None => client.query_as(q, cache, None, auth)?,
                    Some(o) => client.query_as(q, cache, Some(o), auth)?,
                };
                samples.push((
                    t0.elapsed().saturating_sub(sched),
                    response.contains("\"ok\":true"),
                ));
                k += threads;
            }
            Ok(samples)
        });
    let wall = t0.elapsed();

    let mut latencies = Vec::with_capacity(requests);
    let mut ok = 0usize;
    let mut total = 0usize;
    for r in per_thread {
        for (latency, was_ok) in r? {
            latencies.push(latency);
            ok += usize::from(was_ok);
            total += 1;
        }
    }
    latencies.sort_unstable();
    Ok(OpenLoadReport {
        threads,
        requests: total,
        ok,
        errors: total - ok,
        wall,
        offered_rps: rate_rps,
        achieved_rps: total as f64 / wall.as_secs_f64().max(1e-9),
        p50: percentile(&latencies, 0.50),
        p95: percentile(&latencies, 0.95),
        p99: percentile(&latencies, 0.99),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;
    use koko_core::{EngineOpts, Koko};

    #[test]
    fn load_generator_counts_and_collects() {
        let koko = Koko::from_texts_with_opts(
            &["Anna ate some delicious cheesecake."],
            EngineOpts {
                result_cache: 8,
                parallel: false,
                num_shards: 1,
                ..EngineOpts::default()
            },
        );
        let server = Server::bind(koko, "127.0.0.1:0", 2).unwrap();
        let addr = server.local_addr().to_string();
        let queries = vec![
            koko_lang::queries::EXAMPLE_2_1.to_string(),
            "definitely not a query".to_string(),
        ];
        let report = run_load(&addr, &queries, 2, 3, true).unwrap();
        assert_eq!(report.requests, 12);
        assert_eq!(report.ok, 6);
        assert_eq!(report.errors, 6);
        assert_eq!(report.responses.len(), 2);
        assert!(report.qps > 0.0);
        server.shutdown();
    }

    #[test]
    fn open_loop_reports_percentiles_at_a_fixed_rate() {
        let koko = Koko::from_texts_with_opts(
            &["Anna ate some delicious cheesecake."],
            EngineOpts {
                result_cache: 8,
                parallel: false,
                num_shards: 1,
                ..EngineOpts::default()
            },
        );
        let server = Server::bind(koko, "127.0.0.1:0", 2).unwrap();
        let addr = server.local_addr().to_string();
        let queries = vec![koko_lang::queries::EXAMPLE_2_1.to_string()];
        // 20 arrivals at 200 rps: the schedule spans ~100ms and every
        // request should land well inside it on a warm cache.
        let report = run_load_open(&addr, &queries, 2, 20, 200.0, true, None, None).unwrap();
        assert_eq!(report.requests, 20);
        assert_eq!(report.ok, 20);
        assert_eq!(report.errors, 0);
        assert!(report.p50 <= report.p95 && report.p95 <= report.p99);
        assert!(report.achieved_rps > 0.0);
        assert!((report.offered_rps - 200.0).abs() < 1e-9);
        server.shutdown();
    }

    /// A fast-failing policy for tests (total worst-case sleep ~6ms).
    fn fast_policy(attempts: usize) -> RetryPolicy {
        RetryPolicy {
            attempts,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(4),
            seed: 7,
        }
    }

    #[test]
    fn connect_with_retry_exhaustion_is_a_structured_unavailable() {
        // Bind-then-drop reserves a port with nothing listening on it:
        // every connect is a transient ConnectionRefused.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        match Client::connect_with_retry(&addr, fast_policy(3)) {
            Err(ServeError::Unavailable {
                addr: a, attempts, ..
            }) => {
                assert_eq!(a, addr);
                assert_eq!(attempts, 3);
            }
            Err(ServeError::Io(e)) => panic!("refused connect misclassified as permanent: {e}"),
            Ok(_) => panic!("connect to a dead port succeeded"),
        }
    }

    #[test]
    fn connect_with_retry_rides_out_a_server_restart() {
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        // "Restart": the server comes up on the reserved port only after
        // the first connect attempts have been refused.
        let addr2 = addr.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            let koko = Koko::from_texts_with_opts(
                &["Anna ate some delicious cheesecake."],
                EngineOpts {
                    parallel: false,
                    num_shards: 1,
                    ..EngineOpts::default()
                },
            );
            Server::bind(koko, &addr2, 1).unwrap()
        });
        let policy = RetryPolicy {
            attempts: 40,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(10),
            seed: 11,
        };
        let mut client = Client::connect_with_retry(&addr, policy)
            .expect("bounded retry must outlast the restart window");
        assert!(client.ping().unwrap().contains("\"ok\":true"));
        handle.join().unwrap().shutdown();
    }

    #[test]
    fn query_with_reconnect_resends_after_a_mid_restart_disconnect() {
        // A hand-rolled flaky endpoint: the first accepted connection is
        // dropped on the floor (the client sees EOF/reset mid-round-trip,
        // exactly what a restarting server produces), the second is
        // answered properly.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (first, _) = listener.accept().unwrap();
            drop(first);
            let (second, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(second.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let mut w = second;
            w.write_all(b"{\"id\":1,\"ok\":true,\"rows\":[]}\n")
                .unwrap();
            w.flush().unwrap();
        });
        let line = Client::query_with_reconnect(
            &addr,
            "extract x:Entity from t if ()",
            true,
            None,
            None,
            fast_policy(5),
        )
        .expect("one dropped connection must not surface to the caller");
        assert!(line.contains("\"ok\":true"), "{line}");
        server.join().unwrap();
    }

    #[test]
    fn client_side_stream_reassembly_matches_the_unstreamed_rows() {
        let koko = Koko::from_texts_with_opts(
            &[
                "Anna ate some delicious cheesecake.",
                "Bob ate a delicious croissant.",
            ],
            EngineOpts {
                result_cache: 0,
                parallel: false,
                num_shards: 1,
                ..EngineOpts::default()
            },
        );
        let server = Server::bind(koko, "127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr().to_string();
        let q = koko_lang::queries::EXAMPLE_2_1;
        let mut client = Client::connect(&addr).unwrap();
        let plain = client
            .query_with_opts(q, true, QueryOpts::default())
            .unwrap();
        let streamed = client
            .query_stream(q, true, QueryOpts::default(), None)
            .unwrap();
        assert!(streamed.chunks >= 1, "{}", streamed.header);
        assert_eq!(
            crate::protocol::response_rows(&plain).unwrap(),
            streamed.rows_json,
            "client reassembly must be byte-identical"
        );
        assert!(streamed.trailer.contains("\"done\":true"));
        server.shutdown();
    }
}
