//! Client side of the serve protocol: a blocking one-connection client
//! plus a multi-threaded load generator for benchmarks and the CLI's
//! `koko client` mode.

use crate::protocol::{QueryOpts, Request};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A blocking client holding one connection. Requests are answered in
/// order (the protocol is one response line per request line).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connect to a serve endpoint, e.g. `"127.0.0.1:4100"`.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Small request lines: disable Nagle so each request leaves now.
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
            next_id: 1,
        })
    }

    /// Send one raw line and read one response line (protocol-agnostic —
    /// used by tests to exercise the server's error handling).
    pub fn send_raw(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }

    fn send(&mut self, request: &Request) -> std::io::Result<String> {
        self.send_raw(&request.encode())
    }

    /// Evaluate a query; `cache: false` bypasses the server's caches for
    /// this request. Returns the raw response line.
    pub fn query(&mut self, text: &str, cache: bool) -> std::io::Result<String> {
        let id = self.fresh_id();
        self.send(&Request::Query {
            id,
            text: text.to_string(),
            cache,
            opts: None,
        })
    }

    /// [`Client::query`] with per-request [`QueryOpts`] (limit / offset /
    /// min_score / order / deadline / explain). The response is the
    /// extended shape carrying `total_matches` and `truncated`.
    pub fn query_with_opts(
        &mut self,
        text: &str,
        cache: bool,
        opts: QueryOpts,
    ) -> std::io::Result<String> {
        let id = self.fresh_id();
        self.send(&Request::Query {
            id,
            text: text.to_string(),
            cache,
            opts: Some(opts),
        })
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> std::io::Result<String> {
        let id = self.fresh_id();
        self.send(&Request::Ping { id })
    }

    /// Server + cache counters.
    pub fn stats(&mut self) -> std::io::Result<String> {
        let id = self.fresh_id();
        self.send(&Request::Stats { id })
    }

    /// Ask the server to stop.
    pub fn shutdown(&mut self) -> std::io::Result<String> {
        let id = self.fresh_id();
        self.send(&Request::Shutdown { id })
    }

    /// Ingest new documents into a writable server's live index. Returns
    /// the raw response line (`added`, `documents`, `epoch`, …), or an
    /// `"ok":false` error line from a read-only server.
    pub fn add(&mut self, texts: &[String]) -> std::io::Result<String> {
        let id = self.fresh_id();
        self.send(&Request::Add {
            id,
            texts: texts.to_vec(),
        })
    }

    /// Ask a writable server to merge its delta shards into the base.
    pub fn compact(&mut self) -> std::io::Result<String> {
        let id = self.fresh_id();
        self.send(&Request::Compact { id })
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }
}

/// What one load-generation run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Client threads used.
    pub threads: usize,
    /// Requests sent (= responses received) across all threads.
    pub requests: usize,
    /// Responses with `"ok":true`.
    pub ok: usize,
    /// Responses with `"ok":false`.
    pub errors: usize,
    /// Wall-clock for the whole run.
    pub wall: Duration,
    /// `requests / wall` in queries per second.
    pub qps: f64,
    /// Every response line, grouped per thread in send order — byte-exact,
    /// so callers can assert conformance against a local evaluation.
    pub responses: Vec<Vec<String>>,
}

/// Fire `repeat` rounds of `queries` from each of `threads` concurrent
/// connections and collect every response. Each thread opens one
/// connection and sends its requests back-to-back (closed-loop load).
/// `cache: false` marks every request cache-bypassing.
pub fn run_load(
    addr: &str,
    queries: &[String],
    threads: usize,
    repeat: usize,
    cache: bool,
) -> std::io::Result<LoadReport> {
    run_load_with(addr, queries, threads, repeat, cache, None)
}

/// [`run_load`] with optional per-request [`QueryOpts`] attached to every
/// query (the CLI's `koko client --limit/--min-score/...` path).
pub fn run_load_with(
    addr: &str,
    queries: &[String],
    threads: usize,
    repeat: usize,
    cache: bool,
    opts: Option<QueryOpts>,
) -> std::io::Result<LoadReport> {
    // Clamp to something a machine can actually run; absurd requests are
    // caller bugs and must not overflow allocation sizes (the CLI also
    // validates, this is the library's own floor/ceiling).
    let threads = threads.clamp(1, 4096);
    let t0 = Instant::now();
    let per_thread: Vec<std::io::Result<Vec<String>>> =
        koko_par::par_map_range(threads, threads, |_| {
            let mut client = Client::connect(addr)?;
            let mut responses =
                Vec::with_capacity(queries.len().saturating_mul(repeat).min(1 << 16));
            for _ in 0..repeat {
                for q in queries {
                    responses.push(match opts {
                        None => client.query(q, cache)?,
                        Some(opts) => client.query_with_opts(q, cache, opts)?,
                    });
                }
            }
            Ok(responses)
        });
    let wall = t0.elapsed();

    let mut responses = Vec::with_capacity(threads);
    for r in per_thread {
        responses.push(r?);
    }
    let requests: usize = responses.iter().map(Vec::len).sum();
    let ok = responses
        .iter()
        .flatten()
        .filter(|r| r.contains("\"ok\":true"))
        .count();
    Ok(LoadReport {
        threads,
        requests,
        ok,
        errors: requests - ok,
        wall,
        qps: requests as f64 / wall.as_secs_f64().max(1e-9),
        responses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;
    use koko_core::{EngineOpts, Koko};

    #[test]
    fn load_generator_counts_and_collects() {
        let koko = Koko::from_texts_with_opts(
            &["Anna ate some delicious cheesecake."],
            EngineOpts {
                result_cache: 8,
                parallel: false,
                num_shards: 1,
                ..EngineOpts::default()
            },
        );
        let server = Server::bind(koko, "127.0.0.1:0", 2).unwrap();
        let addr = server.local_addr().to_string();
        let queries = vec![
            koko_lang::queries::EXAMPLE_2_1.to_string(),
            "definitely not a query".to_string(),
        ];
        let report = run_load(&addr, &queries, 2, 3, true).unwrap();
        assert_eq!(report.requests, 12);
        assert_eq!(report.ok, 6);
        assert_eq!(report.errors, 6);
        assert_eq!(report.responses.len(), 2);
        assert!(report.qps > 0.0);
        server.shutdown();
    }
}
