//! Model-based properties for per-tenant admission control
//! ([`koko_core::tenant::AdmissionState`]), driven with random operation
//! sequences: concurrency bounds are never exceeded, queue bounds are
//! never exceeded, a tenant with budget is never starved, unknown
//! tenants are always refused, and every refusal renders a structured
//! overload line carrying the right tenant id.

use koko_core::tenant::{Admission, AdmissionState, Overload, TenantPolicy, TenantTable};
use koko_serve::overload_response;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// The fixed cast of tenants the random sequences run against.
///  * `a` — rate-limited, small queue, two concurrency slots
///  * `b` — unlimited rate, no queue, one slot
///  * anonymous — served under a default policy, one slot
///  * `ghost` — not configured: must always be refused
fn table() -> TenantTable {
    let mut t = TenantTable::new();
    t.insert(
        "a",
        TenantPolicy {
            rate_per_s: 5.0,
            burst: 2.0,
            max_queue: 2,
            max_concurrent: 2,
            default_deadline: None,
            deadline_cap: None,
        },
    );
    t.insert(
        "b",
        TenantPolicy {
            rate_per_s: 0.0, // unlimited
            burst: 1.0,
            max_queue: 0,
            max_concurrent: 1,
            default_deadline: None,
            deadline_cap: None,
        },
    );
    t.set_default(TenantPolicy {
        rate_per_s: 0.0,
        burst: 1.0,
        max_queue: 1,
        max_concurrent: 1,
        default_deadline: None,
        deadline_cap: None,
    });
    t
}

fn tenant_of(idx: u8) -> Option<&'static str> {
    match idx % 4 {
        0 => Some("a"),
        1 => Some("b"),
        2 => None, // anonymous, default policy
        _ => Some("ghost"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random interleavings of admissions, completions and clock
    /// advances: the admission state's counters always agree with an
    /// independently tracked model, and never exceed the configured
    /// concurrency / queue bounds.
    #[test]
    fn bounds_hold_under_random_operation_sequences(
        ops in prop::collection::vec((0u8..3, 0u8..4, 0u32..3000), 0..200),
    ) {
        let t = table();
        let mut adm = AdmissionState::new(t.clone());
        let mut now_s = 0.0f64;
        // Mirror of (in_flight, queued) per tenant key.
        let mut model: BTreeMap<Option<&str>, (usize, usize)> = BTreeMap::new();

        for (kind, who, dt_ms) in ops {
            let tenant = tenant_of(who);
            let policy = t.policy_for(tenant).cloned();
            match kind {
                // Admit one request.
                0 => {
                    let entry = model.entry(tenant).or_insert((0, 0));
                    match adm.admit(tenant, now_s) {
                        Admission::Dispatch => {
                            let p = policy.as_ref().expect("dispatch implies a policy");
                            entry.0 += 1;
                            prop_assert!(
                                entry.0 <= p.max_concurrent.max(1),
                                "concurrency bound exceeded for {tenant:?}: {}",
                                entry.0
                            );
                        }
                        Admission::Enqueue => {
                            let p = policy.as_ref().expect("enqueue implies a policy");
                            prop_assert_eq!(
                                entry.0, p.max_concurrent.max(1),
                                "must only queue once concurrency is saturated"
                            );
                            entry.1 += 1;
                            prop_assert!(
                                entry.1 <= p.max_queue,
                                "queue bound exceeded for {tenant:?}: {}",
                                entry.1
                            );
                        }
                        Admission::Reject(overload) => {
                            match &overload {
                                Overload::UnknownTenant => {
                                    prop_assert!(policy.is_none(), "known tenant got 401");
                                }
                                Overload::RateLimited { retry_after } => {
                                    let p = policy.as_ref().unwrap();
                                    prop_assert!(
                                        p.rate_per_s > 0.0,
                                        "unlimited-rate tenant {tenant:?} was rate limited"
                                    );
                                    prop_assert!(*retry_after > std::time::Duration::ZERO);
                                }
                                Overload::QueueFull { max_queue } => {
                                    let p = policy.as_ref().unwrap();
                                    prop_assert_eq!(*max_queue, p.max_queue);
                                    prop_assert_eq!(
                                        entry.0, p.max_concurrent.max(1),
                                        "queue-full with free concurrency slots"
                                    );
                                    prop_assert_eq!(entry.1, p.max_queue);
                                }
                            }
                            // Every refusal renders as structured JSON with
                            // the right tenant id and code.
                            let line = overload_response(7, tenant, &overload);
                            match tenant {
                                Some(name) if policy.is_some() || matches!(overload, Overload::UnknownTenant) => {
                                    prop_assert!(
                                        line.contains(&format!("\"tenant\":\"{name}\"")),
                                        "{line}"
                                    );
                                }
                                None => prop_assert!(line.contains("\"tenant\":null"), "{line}"),
                                _ => {}
                            }
                            let code = if matches!(overload, Overload::UnknownTenant) { 401 } else { 429 };
                            prop_assert!(line.contains(&format!("\"code\":{code}")), "{line}");
                        }
                    }
                }
                // Complete one running request, then promote queued work.
                1 => {
                    let entry = model.entry(tenant).or_insert((0, 0));
                    if entry.0 > 0 {
                        adm.on_complete(tenant);
                        entry.0 -= 1;
                        if adm.try_dispatch_queued(tenant) {
                            prop_assert!(entry.1 > 0, "promoted from an empty queue");
                            entry.1 -= 1;
                            entry.0 += 1;
                            let p = policy.as_ref().unwrap();
                            prop_assert!(entry.0 <= p.max_concurrent.max(1));
                        }
                    }
                }
                // Let time pass (never backwards).
                _ => {
                    now_s += f64::from(dt_ms) * 1e-3;
                }
            }

            // The state's diagnostics agree with the model at every step.
            for key in [Some("a"), Some("b"), None] {
                let (inf, q) = model.get(&key).copied().unwrap_or((0, 0));
                prop_assert_eq!(adm.in_flight(key), inf, "in_flight drifted for {:?}", key);
                prop_assert_eq!(adm.queued(key), q, "queued drifted for {:?}", key);
            }
            prop_assert_eq!(adm.in_flight(Some("ghost")), 0);
        }
    }

    /// A tenant with budget is never starved: after an idle gap long
    /// enough to refill its bucket to the brim (`burst / rate` seconds),
    /// a request with free concurrency slots must dispatch — no matter
    /// what traffic came before.
    #[test]
    fn a_tenant_with_budget_is_never_starved(
        rate in 0.5f64..50.0,
        burst in 1.0f64..8.0,
        bursts_before in 0usize..6,
        gap_extra_ms in 0u32..1000,
    ) {
        let mut t = TenantTable::new();
        t.insert(
            "a",
            TenantPolicy {
                rate_per_s: rate,
                burst,
                max_queue: 0,
                max_concurrent: usize::MAX, // isolate the rate limiter
                default_deadline: None,
                deadline_cap: None,
            },
        );
        let mut adm = AdmissionState::new(t);
        let mut now_s = 0.0f64;

        // Arbitrary earlier traffic, including refusals.
        for _ in 0..bursts_before {
            let a = adm.admit(Some("a"), now_s);
            if matches!(a, Admission::Dispatch) {
                adm.on_complete(Some("a"));
            }
            now_s += 0.01;
        }

        // Idle long enough to refill the whole burst, then admit.
        now_s += burst / rate + f64::from(gap_extra_ms) * 1e-3;
        let decision = adm.admit(Some("a"), now_s);
        prop_assert!(
            matches!(decision, Admission::Dispatch),
            "tenant with a full bucket and free slots was refused: {decision:?}"
        );
    }
}
