//! Robustness properties for the serve wire protocol: the JSON parser and
//! request decoder face raw network bytes, so they must be total — `Ok`
//! or a structured error, never a panic — and encode/decode must round
//! trip for every representable request.

use koko_serve::json;
use koko_serve::{QueryOpts, Request, WireOrder};
use proptest::prelude::*;

/// An arbitrary wire `opts` object, driven by a mask of which fields are
/// present (min_score kept to exactly representable halves so encode →
/// decode is a float round trip).
fn arb_opts() -> impl Strategy<Value = QueryOpts> {
    (
        0u32..128,
        (0u64..1000, 0u64..1000),
        (0u32..8, any::<bool>()),
        0u64..100_000,
    )
        .prop_map(
            |(mask, (limit, offset), (half, score_desc), deadline_ms)| QueryOpts {
                limit: (mask & 1 != 0).then_some(limit),
                offset: (mask & 2 != 0).then_some(offset),
                min_score: (mask & 4 != 0).then(|| f64::from(half) * 0.5),
                order: (mask & 8 != 0).then_some(if score_desc {
                    WireOrder::ScoreDesc
                } else {
                    WireOrder::Doc
                }),
                deadline_ms: (mask & 16 != 0).then_some(deadline_ms),
                explain: mask & 32 != 0,
                stream: mask & 64 != 0,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary strings: parsing never panics.
    #[test]
    fn json_parse_is_total(input in ".{0,300}") {
        let _ = json::parse(&input);
    }

    /// JSON-shaped strings assembled from structural fragments: much
    /// higher parse success rate, still total.
    #[test]
    fn json_parse_is_total_on_json_shaped_input(
        pieces in prop::collection::vec(
            prop::sample::select(vec![
                "{", "}", "[", "]", ",", ":", "\"", "\"a\"", "null", "true",
                "false", "0", "-1.5", "1e3", "\\", "\\u0041", "\\q", "{\"q\":",
            ]),
            0..24,
        )
    ) {
        let _ = json::parse(&pieces.concat());
    }

    /// Request decoding never panics, on anything.
    #[test]
    fn request_decode_is_total(input in ".{0,300}") {
        let _ = Request::decode(&input);
    }

    /// Whatever a client encodes, the server decodes back verbatim —
    /// including queries containing newlines, quotes and unicode, and
    /// `auth` tenant identities with arbitrary (non-empty) content.
    #[test]
    fn request_round_trips(
        (id, cache) in (0u64..1_000_000, any::<bool>()),
        text in ".{0,120}",
        with_opts in any::<bool>(),
        raw_opts in arb_opts(),
        auth in (any::<bool>(), ".{1,40}").prop_map(|(some, s)| some.then_some(s)),
    ) {
        let opts = with_opts.then_some(raw_opts);
        let req = Request::Query { id, text, cache, opts, auth };
        let line = req.encode();
        prop_assert!(!line.contains('\n'), "encoded request must be one line");
        prop_assert_eq!(Request::decode(&line).unwrap(), req);
    }

    /// An encoded request split at an arbitrary byte boundary and fed to
    /// the decoder as two fragments: each fragment alone must decode to a
    /// structured error or a *different* valid request — never panic —
    /// and the reassembled line still round-trips. This is exactly what
    /// the event-loop server sees when a TCP segment boundary lands
    /// mid-frame.
    #[test]
    fn chunk_boundary_split_frames_never_panic(
        (id, cache) in (0u64..1_000_000, any::<bool>()),
        text in ".{0,80}",
        raw_opts in arb_opts(),
        auth in (any::<bool>(), "[a-z]{1,12}").prop_map(|(some, s)| some.then_some(s)),
        split_frac in 0.0f64..1.0,
    ) {
        let req = Request::Query { id, text, cache, opts: Some(raw_opts), auth };
        let line = req.encode();
        // Snap the split point to a char boundary inside the line.
        let mut split = (line.len() as f64 * split_frac) as usize;
        while split < line.len() && !line.is_char_boundary(split) {
            split += 1;
        }
        let (head, tail) = line.split_at(split);
        let _ = Request::decode(head);
        let _ = Request::decode(tail);
        let reassembled = format!("{head}{tail}");
        prop_assert_eq!(Request::decode(&reassembled).unwrap(), req);
    }
}
