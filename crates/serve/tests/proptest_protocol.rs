//! Robustness properties for the serve wire protocol: the JSON parser and
//! request decoder face raw network bytes, so they must be total — `Ok`
//! or a structured error, never a panic — and encode/decode must round
//! trip for every representable request.

use koko_serve::json;
use koko_serve::Request;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary strings: parsing never panics.
    #[test]
    fn json_parse_is_total(input in ".{0,300}") {
        let _ = json::parse(&input);
    }

    /// JSON-shaped strings assembled from structural fragments: much
    /// higher parse success rate, still total.
    #[test]
    fn json_parse_is_total_on_json_shaped_input(
        pieces in prop::collection::vec(
            prop::sample::select(vec![
                "{", "}", "[", "]", ",", ":", "\"", "\"a\"", "null", "true",
                "false", "0", "-1.5", "1e3", "\\", "\\u0041", "\\q", "{\"q\":",
            ]),
            0..24,
        )
    ) {
        let _ = json::parse(&pieces.concat());
    }

    /// Request decoding never panics, on anything.
    #[test]
    fn request_decode_is_total(input in ".{0,300}") {
        let _ = Request::decode(&input);
    }

    /// Whatever a client encodes, the server decodes back verbatim —
    /// including queries containing newlines, quotes and unicode.
    #[test]
    fn request_round_trips(
        id in 0u64..1_000_000,
        text in ".{0,120}",
        cache in any::<bool>(),
    ) {
        let req = Request::Query { id, text, cache };
        let line = req.encode();
        prop_assert!(!line.contains('\n'), "encoded request must be one line");
        prop_assert_eq!(Request::decode(&line).unwrap(), req);
    }
}
