//! Fault injection against the event-loop server: hostile and broken
//! clients — slowloris writers, stalled readers, half-closes mid-request,
//! oversized frames, connection floods — must each produce a structured
//! error or a clean connection drop, never a panic, a hang, or degraded
//! service for well-behaved clients sharing the server.
//!
//! Every test ends with a graceful `shutdown()`: a server that survived
//! the abuse but can no longer drain would fail there.
//!
//! Cluster-side faults (killed workers, wedged workers, malformed shard
//! maps) live in `crates/cluster/tests/fault_injection.rs` — the serve
//! crate sits below the cluster layer and cannot depend on it.

use koko_core::tenant::{TenantPolicy, TenantTable};
use koko_core::{EngineOpts, Koko};
use koko_serve::{Client, Server, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn engine() -> Koko {
    Koko::from_texts_with_opts(
        &[
            "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
            "Anna ate some delicious cheesecake that she bought at a grocery store.",
        ],
        EngineOpts {
            result_cache: 8,
            parallel: false,
            num_shards: 1,
            ..EngineOpts::default()
        },
    )
}

/// A well-behaved client must keep getting answers while abuse is in
/// progress; this is the "no collateral damage" probe used by each test.
fn assert_healthy(addr: &str) {
    let mut client = Client::connect(addr).expect("healthy client connects");
    let pong = client.ping().expect("healthy client gets a pong");
    assert!(pong.contains("\"pong\":true"), "{pong}");
    let r = client
        .query(koko_lang::queries::EXAMPLE_2_1, true)
        .expect("healthy client gets query answered");
    assert!(r.contains("\"ok\":true"), "{r}");
}

#[test]
fn slowloris_writer_cannot_stall_other_clients() {
    let server = Server::bind(engine(), "127.0.0.1:0", 2).unwrap();
    let addr = server.local_addr().to_string();

    // Drip a valid request one byte at a time. Under the old
    // thread-per-connection design this pinned a worker on a blocking
    // read; the reactor just keeps the partial line buffered.
    let request = b"{\"id\":1,\"cmd\":\"ping\"}\n";
    let mut slow = TcpStream::connect(&addr).unwrap();
    slow.set_nodelay(true).unwrap();
    for &b in &request[..request.len() - 1] {
        slow.write_all(&[b]).unwrap();
        slow.flush().unwrap();
        // Interleave healthy traffic between the drips a few times.
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_healthy(&addr);

    // Once the newline finally lands, the slow client is answered too.
    slow.write_all(b"\n").unwrap();
    slow.flush().unwrap();
    let mut line = String::new();
    BufReader::new(&slow).read_line(&mut line).unwrap();
    assert!(line.contains("\"pong\":true"), "{line}");

    drop(slow);
    server.shutdown();
}

#[test]
fn stalled_reader_is_dropped_at_the_write_buffer_cap() {
    // Tiny write cap: a client that sends queries but never reads its
    // responses trips the cap and is disconnected — the regression test
    // for the old server's blocking `write_all` hazard, where a stalled
    // reader pinned a worker thread forever.
    let server = Server::bind_config(
        engine(),
        "127.0.0.1:0",
        ServerConfig {
            threads: 2,
            write_buffer_cap: 8 * 1024,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    let mut stalled = TcpStream::connect(&addr).unwrap();
    stalled.set_nodelay(true).unwrap();
    let q = koko_lang::queries::EXAMPLE_2_1
        .replace('"', "\\\"")
        .replace('\n', " ");
    // Keep sending queries without ever reading; responses (hundreds of
    // bytes each) pile up server-side until the cap closes the socket.
    let mut dropped = false;
    for id in 0..10_000u64 {
        let line = format!("{{\"id\":{id},\"query\":\"{q}\",\"cache\":false}}\n");
        if stalled.write_all(line.as_bytes()).is_err() {
            dropped = true;
            break;
        }
        if id % 64 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    if !dropped {
        // The writes may all have fit in kernel buffers; the drop then
        // shows up as EOF/reset on read.
        stalled
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut sink = [0u8; 4096];
        loop {
            match stalled.read(&mut sink) {
                Ok(0) | Err(_) => {
                    dropped = true;
                    break;
                }
                Ok(_) => {}
            }
        }
    }
    assert!(
        dropped,
        "stalled reader must be disconnected, not buffered forever"
    );

    // The server itself is unharmed.
    assert_healthy(&addr);
    server.shutdown();
}

#[test]
fn half_close_mid_request_is_a_clean_drop() {
    let server = Server::bind(engine(), "127.0.0.1:0", 1).unwrap();
    let addr = server.local_addr().to_string();

    // Half-close with a partial request buffered: the server sees EOF,
    // has no complete line to answer, and must just drop the connection.
    let mut partial = TcpStream::connect(&addr).unwrap();
    partial.write_all(b"{\"id\":1,\"cmd\":\"pi").unwrap();
    partial.shutdown(std::net::Shutdown::Write).unwrap();
    partial
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = Vec::new();
    let n = partial.read_to_end(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "no response owed for a partial request: {buf:?}");

    // Half-close with a *complete* request in flight: the response must
    // still be delivered before the server closes its side.
    let mut eager = TcpStream::connect(&addr).unwrap();
    eager.write_all(b"{\"id\":7,\"cmd\":\"ping\"}\n").unwrap();
    eager.shutdown(std::net::Shutdown::Write).unwrap();
    eager
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut response = String::new();
    eager.read_to_string(&mut response).unwrap();
    assert!(response.contains("\"pong\":true"), "{response}");

    assert_healthy(&addr);
    server.shutdown();
}

#[test]
fn oversized_frames_get_a_structured_refusal_or_clean_close() {
    let server = Server::bind(engine(), "127.0.0.1:0", 1).unwrap();
    let addr = server.local_addr().to_string();

    let mut flood = TcpStream::connect(&addr).unwrap();
    let chunk = vec![b'x'; 128 * 1024];
    let mut closed_early = false;
    for _ in 0..24 {
        // 3 MiB total, far past MAX_REQUEST_BYTES
        if flood.write_all(&chunk).is_err() {
            closed_early = true;
            break;
        }
    }
    let _ = flood.write_all(b"\n");
    flood
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut response = String::new();
    let _ = BufReader::new(&flood).read_line(&mut response);
    assert!(
        closed_early || response.is_empty() || response.contains("request line too long"),
        "{response}"
    );
    // Whatever happened, the connection must now be closed, not parked.
    let mut rest = String::new();
    let _ = BufReader::new(&flood).read_line(&mut rest);
    assert!(
        rest.is_empty(),
        "connection must be closed after refusal: {rest}"
    );

    assert_healthy(&addr);
    server.shutdown();
}

#[test]
fn connection_flood_past_the_cap_gets_structured_429s() {
    let server = Server::bind_config(
        engine(),
        "127.0.0.1:0",
        ServerConfig {
            threads: 1,
            max_connections: 4,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    // Fill the connection table with live clients…
    let mut keepers: Vec<Client> = (0..4).map(|_| Client::connect(&addr).unwrap()).collect();
    for c in &mut keepers {
        assert!(c.ping().unwrap().contains("pong"));
    }

    // …then flood past it. Every refused connection gets one structured
    // line and a close — never a silent drop.
    let mut refusals = 0;
    for _ in 0..8 {
        let flooder = TcpStream::connect(&addr).unwrap();
        flooder
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut line = String::new();
        BufReader::new(&flooder).read_line(&mut line).unwrap();
        assert!(
            line.contains("\"code\":429") && line.contains("connection capacity"),
            "{line}"
        );
        refusals += 1;
    }
    assert_eq!(refusals, 8);

    // The live clients were untouched by the flood.
    for c in &mut keepers {
        assert!(c.ping().unwrap().contains("pong"));
    }

    // Freeing a slot re-opens the door.
    keepers.pop();
    std::thread::sleep(Duration::from_millis(50));
    let mut late = Client::connect(&addr).unwrap();
    assert!(late.ping().unwrap().contains("pong"));

    drop(keepers);
    drop(late);
    server.shutdown();
}

#[test]
fn admission_flood_answers_every_request_with_no_silent_drops() {
    // A strict tenant under a pipelined flood: every request line must
    // get exactly one response line — dispatched, queued-then-served, or
    // a structured 429 — and the connection survives all of it.
    let mut tenants = TenantTable::new();
    tenants.insert(
        "alice",
        TenantPolicy {
            rate_per_s: 1000.0,
            burst: 1000.0,
            max_queue: 2,
            max_concurrent: 1,
            default_deadline: None,
            deadline_cap: None,
        },
    );
    let server = Server::bind_config(
        engine(),
        "127.0.0.1:0",
        ServerConfig {
            threads: 2,
            tenants,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    let q = koko_lang::queries::EXAMPLE_2_1
        .replace('"', "\\\"")
        .replace('\n', " ");
    let mut stream = TcpStream::connect(&addr).unwrap();
    let total = 64u64;
    let mut batch = String::new();
    for id in 1..=total {
        batch.push_str(&format!(
            "{{\"id\":{id},\"query\":\"{q}\",\"cache\":false,\"auth\":\"alice\"}}\n"
        ));
    }
    stream.write_all(batch.as_bytes()).unwrap();
    stream.flush().unwrap();

    let mut reader = BufReader::new(&stream);
    let mut served = 0u64;
    let mut rejected = 0u64;
    for id in 1..=total {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.starts_with(&format!("{{\"id\":{id},")),
            "responses must stay in request order: expected {id}, got {line}"
        );
        if line.contains("\"ok\":true") {
            served += 1;
        } else {
            assert!(
                line.contains("\"code\":429") && line.contains("\"tenant\":\"alice\""),
                "rejections must be structured: {line}"
            );
            rejected += 1;
        }
    }
    assert_eq!(served + rejected, total, "exactly one response per request");
    assert!(served >= 1, "the first request is always admitted");

    // The server is unharmed (anonymous queries are refused by policy on
    // this server, so probe with ping + an authed query).
    let mut probe = Client::connect(&addr).unwrap();
    assert!(probe.ping().unwrap().contains("pong"));
    let r = probe
        .query_as(koko_lang::queries::EXAMPLE_2_1, true, None, Some("alice"))
        .unwrap();
    assert!(
        r.contains("\"ok\":true") || r.contains("\"code\":429"),
        "{r}"
    );
    drop(probe);
    server.shutdown();
}

#[test]
fn abrupt_disconnects_with_queued_work_do_not_leak_admission_slots() {
    // Clients that pipeline work and vanish: their queued jobs must be
    // forgotten so the tenant's budget is not leaked — a later client of
    // the same tenant still gets served.
    let mut tenants = TenantTable::new();
    tenants.insert(
        "alice",
        TenantPolicy {
            rate_per_s: 0.0, // unlimited rate
            burst: 1.0,
            max_queue: 8,
            max_concurrent: 2,
            default_deadline: None,
            deadline_cap: None,
        },
    );
    let server = Server::bind_config(
        engine(),
        "127.0.0.1:0",
        ServerConfig {
            threads: 2,
            tenants,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let q = koko_lang::queries::EXAMPLE_2_1
        .replace('"', "\\\"")
        .replace('\n', " ");

    for round in 0..8 {
        let mut hitman = TcpStream::connect(&addr).unwrap();
        let mut batch = String::new();
        for id in 0..6 {
            batch.push_str(&format!(
                "{{\"id\":{id},\"query\":\"{q}\",\"cache\":false,\"auth\":\"alice\"}}\n"
            ));
        }
        hitman.write_all(batch.as_bytes()).unwrap();
        hitman.flush().unwrap();
        // Vanish without reading a single response.
        drop(hitman);
        let _ = round;
    }

    // Give the reactor a beat to notice the hangups, then prove alice
    // still has budget: a fresh, patient client is served.
    std::thread::sleep(Duration::from_millis(100));
    let mut survivor = Client::connect(&addr).unwrap();
    let r = survivor
        .query_as(koko_lang::queries::EXAMPLE_2_1, true, None, Some("alice"))
        .unwrap();
    assert!(r.contains("\"ok\":true"), "admission budget leaked: {r}");

    drop(survivor);
    server.shutdown();
}
