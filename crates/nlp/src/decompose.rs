//! Sentence decomposition into canonical clauses (§4.4.1(b)).
//!
//! The paper uses the clause-segmentation stage of an OpenIE system [2, 42]:
//! a long sentence is split into shorter canonical clauses so a descriptor
//! can match one aspect of the sentence without being diluted by the rest.
//! We derive clauses from the dependency tree: every clause-heading verb
//! (the root verb plus `conj`/`rcmod`/`ccomp`-attached verbs) yields one
//! clause whose tokens are its subtree minus any nested clause subtrees.
//!
//! Clause scores `l_j`: 1.0 for the root clause, 0.8 for embedded clauses
//! (the paper does not specify the decomposer's scores; see DESIGN.md §6).

use crate::types::{ParseLabel, PosTag, Sentence, Tid};

/// One canonical clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Clause {
    /// The verb (or nominal root) heading the clause.
    pub head: Tid,
    /// Token ids belonging to the clause, in surface order.
    pub tokens: Vec<Tid>,
    /// Clause weight `l_j` used by descriptor aggregation.
    pub score: f64,
}

impl Clause {
    /// Lower-cased clause text (for matching descriptor expansions).
    pub fn lower_words<'s>(&self, sentence: &'s Sentence) -> Vec<&'s str> {
        self.tokens
            .iter()
            .map(|&t| sentence.tokens[t as usize].lower.as_str())
            .collect()
    }

    /// First and last token ids covered by the clause.
    pub fn span(&self) -> (Tid, Tid) {
        (
            *self.tokens.first().expect("clause never empty"),
            *self.tokens.last().expect("clause never empty"),
        )
    }
}

/// Whether this token heads its own canonical clause.
fn is_clause_head(sentence: &Sentence, tid: Tid) -> bool {
    let t = &sentence.tokens[tid as usize];
    match t.label {
        ParseLabel::Root => true,
        ParseLabel::Conj | ParseLabel::Rcmod | ParseLabel::Ccomp => t.pos == PosTag::Verb,
        _ => false,
    }
}

/// Decompose a parsed sentence into canonical clauses.
pub fn decompose(sentence: &Sentence) -> Vec<Clause> {
    let n = sentence.len();
    if n == 0 {
        return Vec::new();
    }
    // Assign every token to its nearest clause-heading ancestor.
    let mut owner = vec![0 as Tid; n];
    for (i, slot) in owner.iter_mut().enumerate() {
        let mut cur = i as Tid;
        loop {
            if is_clause_head(sentence, cur) {
                *slot = cur;
                break;
            }
            match sentence.tokens[cur as usize].head {
                Some(h) => cur = h,
                None => {
                    *slot = cur;
                    break;
                }
            }
        }
    }
    let root = sentence.root().unwrap_or(0);
    let mut heads: Vec<Tid> = owner.clone();
    heads.sort_unstable();
    heads.dedup();
    let mut clauses = Vec::with_capacity(heads.len());
    for h in heads {
        let tokens: Vec<Tid> = (0..n as Tid).filter(|&i| owner[i as usize] == h).collect();
        if tokens.is_empty() {
            continue;
        }
        let score = if h == root { 1.0 } else { 0.8 };
        clauses.push(Clause {
            head: h,
            tokens,
            score,
        });
    }
    clauses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;

    fn clauses_of(text: &str) -> (Sentence, Vec<Clause>) {
        let p = Pipeline::new();
        let doc = p.parse_document(0, text);
        let s = doc.sentences.into_iter().next().expect("one sentence");
        let cs = decompose(&s);
        (s, cs)
    }

    fn clause_texts(s: &Sentence, cs: &[Clause]) -> Vec<String> {
        cs.iter()
            .map(|c| {
                c.tokens
                    .iter()
                    .map(|&t| s.tokens[t as usize].text.as_str())
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect()
    }

    #[test]
    fn simple_sentence_is_one_clause() {
        let (s, cs) = clauses_of("Anna ate some cheesecake .");
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].score, 1.0);
        assert_eq!(clause_texts(&s, &cs)[0], "Anna ate some cheesecake .");
    }

    #[test]
    fn relative_clause_is_separated() {
        let (s, cs) =
            clauses_of("Anna ate some delicious cheesecake that she bought at a grocery store .");
        assert_eq!(cs.len(), 2, "{:?}", clause_texts(&s, &cs));
        let texts = clause_texts(&s, &cs);
        assert!(texts[0].starts_with("Anna ate some delicious cheesecake"));
        assert!(texts[1].contains("she bought at a grocery store"));
        assert_eq!(cs[0].score, 1.0);
        assert_eq!(cs[1].score, 0.8);
    }

    #[test]
    fn figure1_three_clauses() {
        let (s, cs) =
            clauses_of("I ate a chocolate ice cream , which was delicious , and also ate a pie .");
        let texts = clause_texts(&s, &cs);
        assert_eq!(cs.len(), 3, "{texts:?}");
        assert!(texts.iter().any(|t| t.contains("which was delicious")));
        assert!(texts.iter().any(|t| t.contains("also ate a pie")));
        // Exactly one root clause with weight 1.0.
        assert_eq!(cs.iter().filter(|c| c.score == 1.0).count(), 1);
    }

    #[test]
    fn clause_tokens_partition_sentence() {
        let (s, cs) = clauses_of(
            "The cafe serves espresso , and the barista pours latte art when the shop opens .",
        );
        let mut all: Vec<Tid> = cs.iter().flat_map(|c| c.tokens.iter().copied()).collect();
        all.sort_unstable();
        let expect: Vec<Tid> = (0..s.len() as Tid).collect();
        assert_eq!(all, expect, "clauses must partition the sentence");
    }

    #[test]
    fn clause_spans_nonempty() {
        let (_, cs) = clauses_of("go Falcons !");
        assert!(!cs.is_empty());
        for c in &cs {
            let (a, b) = c.span();
            assert!(a <= b);
        }
    }
}
