//! POS lexicon: closed-class word lists plus open-class exception lists used
//! by the tagger. The corpus generators draw from the same lists, so the
//! deterministic tagger is accurate by construction on generated text while
//! still degrading gracefully (suffix heuristics, capitalization) on novel
//! words.

use crate::types::PosTag;
use std::collections::HashMap;

/// Determiners (including possessive determiners, which the parser attaches
/// with the `poss` label).
pub const DETERMINERS: &[&str] = &[
    "the", "a", "an", "some", "this", "these", "those", "any", "every", "each", "no", "another",
    "my", "your", "its", "our", "their", "his",
];

/// Personal / relative pronouns. (`which`, `who`, `that` double as relative
/// pronouns; the parser decides.)
pub const PRONOUNS: &[&str] = &[
    "i", "you", "he", "she", "it", "we", "they", "me", "him", "her", "us", "them", "which", "who",
    "whom", "what", "that", "someone", "everyone", "itself", "himself", "herself",
];

/// Adpositions.
pub const ADPOSITIONS: &[&str] = &[
    "in", "on", "at", "of", "to", "from", "with", "by", "for", "about", "over", "under", "near",
    "during", "after", "before", "between", "into", "through", "as", "since", "without", "inside",
    "behind", "along",
];

/// Conjunctions. Subordinators (`when`, `because` …) are folded in: the
/// parser treats a conjunction followed by a clause as clause coordination,
/// which keeps trees projective without a full subordinate-clause grammar.
pub const CONJUNCTIONS: &[&str] = &[
    "and", "or", "but", "nor", "yet", "so", "when", "while", "because", "if", "though", "until",
];

/// Adverbs.
pub const ADVERBS: &[&str] = &[
    "also",
    "very",
    "really",
    "quite",
    "always",
    "never",
    "often",
    "soon",
    "recently",
    "now",
    "today",
    "yesterday",
    "tomorrow",
    "here",
    "there",
    "not",
    "just",
    "already",
    "still",
    "finally",
    "again",
    "together",
    "nearby",
    "downtown",
    "tonight",
];

/// Auxiliary and copular verb forms.
pub const AUX_VERBS: &[&str] = &[
    "is", "was", "are", "were", "be", "been", "being", "am", "has", "have", "had", "do", "does",
    "did", "will", "would", "can", "could", "may", "might", "should", "must",
];

/// Base forms of common verbs. Inflections (`-s`, `-ed`, `-ing`) are derived
/// by the tagger via stemming.
pub const VERBS: &[&str] = &[
    "eat",
    "serve",
    "sell",
    "buy",
    "make",
    "open",
    "hire",
    "employ",
    "visit",
    "go",
    "call",
    "name",
    "prepare",
    "manufacture",
    "drink",
    "enjoy",
    "love",
    "roast",
    "brew",
    "pour",
    "host",
    "play",
    "win",
    "feel",
    "get",
    "see",
    "watch",
    "cheer",
    "move",
    "offer",
    "pull",
    "bake",
    "taste",
    "marry",
    "bear",
    "write",
    "found",
    "launch",
    "start",
    "finish",
    "meet",
    "travel",
    "arrive",
    "describe",
    "review",
    "recommend",
    "order",
    "try",
    "craft",
    "source",
    "feature",
    "announce",
    "celebrate",
    "graduate",
    "retire",
    "live",
    "work",
    "study",
];

/// Irregular verb forms → their base form.
pub const IRREGULAR_VERBS: &[(&str, &str)] = &[
    ("ate", "eat"),
    ("eaten", "eat"),
    ("bought", "buy"),
    ("made", "make"),
    ("went", "go"),
    ("gone", "go"),
    ("drank", "drink"),
    ("drunk", "drink"),
    ("won", "win"),
    ("felt", "feel"),
    ("got", "get"),
    ("saw", "see"),
    ("seen", "see"),
    ("met", "meet"),
    ("wrote", "write"),
    ("written", "write"),
    ("born", "bear"),
    ("bore", "bear"),
    ("married", "marry"),
    ("tried", "try"),
];

/// Adjectives (including nationality adjectives used by Example 2.2).
pub const ADJECTIVES: &[&str] = &[
    "delicious",
    "tasty",
    "salty",
    "sweet",
    "happy",
    "new",
    "great",
    "good",
    "best",
    "famous",
    "local",
    "fresh",
    "small",
    "large",
    "star",
    "upcoming",
    "friendly",
    "cozy",
    "excellent",
    "amazing",
    "wonderful",
    "proud",
    "glad",
    "bright",
    "quiet",
    "busy",
    "warm",
    "old",
    "young",
    "crisp",
    "rich",
    "smooth",
    "bold",
    "asian",
    "french",
    "italian",
    "japanese",
    "chinese",
    "ethiopian",
    "colombian",
    "such",
    "single",
    "seasonal",
    "daily",
    "annual",
    "grand",
];

/// Nouns that would otherwise be mis-tagged by suffix rules (e.g. `-ing`
/// nouns) plus high-frequency corpus nouns.
pub const NOUNS: &[&str] = &[
    "morning",
    "evening",
    "building",
    "wedding",
    "baking",
    "brewing",
    "ceiling",
    "cafe",
    "cafes",
    "coffee",
    "barista",
    "baristas",
    "cup",
    "cups",
    "menu",
    "team",
    "teams",
    "game",
    "games",
    "city",
    "cities",
    "country",
    "countries",
    "type",
    "types",
    "place",
    "places",
    "blog",
    "roaster",
    "roasters",
    "espresso",
    "machine",
    "bar",
    "shop",
    "owner",
    "daughter",
    "son",
    "couple",
    "years",
    "year",
    "month",
    "week",
    "day",
    "moment",
    "friend",
    "friends",
    "family",
    "dog",
    "cat",
    "book",
    "books",
    "job",
    "time",
    "people",
    "fans",
    "crowd",
    "season",
    "match",
    "championship",
    "festival",
    "fest",
    "neighborhood",
    "corner",
    "door",
    "kettle",
    "beans",
    "bean",
    "blend",
    "pour-over",
    "press",
    "victory",
    "weekend",
    "title",
    "champion",
];

/// Words spelled with `.` that must not terminate a sentence.
pub const ABBREVIATIONS: &[&str] = &[
    "St.", "Ave.", "Av.", "Mr.", "Mrs.", "Dr.", "a.m.", "p.m.", "U.S.", "No.",
];

/// A compiled lexicon: one hash lookup per token at tagging time.
#[derive(Debug, Clone)]
pub struct Lexicon {
    exact: HashMap<&'static str, PosTag>,
    verb_bases: HashMap<&'static str, ()>,
    irregular: HashMap<&'static str, &'static str>,
}

impl Default for Lexicon {
    fn default() -> Self {
        Self::new()
    }
}

impl Lexicon {
    pub fn new() -> Lexicon {
        let mut exact = HashMap::new();
        for (list, tag) in [
            (DETERMINERS, PosTag::Det),
            (PRONOUNS, PosTag::Pron),
            (ADPOSITIONS, PosTag::Adp),
            (CONJUNCTIONS, PosTag::Conj),
            (ADVERBS, PosTag::Adv),
            (AUX_VERBS, PosTag::Verb),
            (ADJECTIVES, PosTag::Adj),
            (NOUNS, PosTag::Noun),
        ] {
            for w in list {
                exact.insert(*w, tag);
            }
        }
        // Base verbs and their regular inflections resolve through
        // `verb_bases`; only the base is stored.
        let mut verb_bases = HashMap::new();
        for v in VERBS {
            verb_bases.insert(*v, ());
        }
        let mut irregular = HashMap::new();
        for (form, base) in IRREGULAR_VERBS {
            irregular.insert(*form, *base);
        }
        Lexicon {
            exact,
            verb_bases,
            irregular,
        }
    }

    /// Closed-class / exception-list lookup on a lower-cased word.
    pub fn lookup(&self, lower: &str) -> Option<PosTag> {
        self.exact.get(lower).copied()
    }

    /// Whether `lower` is a known verb form (base, irregular, or a regular
    /// `-s` / `-ed` / `-ing` inflection of a known base).
    pub fn is_verb_form(&self, lower: &str) -> bool {
        if self.verb_bases.contains_key(lower) || self.irregular.contains_key(lower) {
            return true;
        }
        self.strip_inflection(lower)
            .is_some_and(|stem| self.verb_bases.contains_key(stem.as_str()))
    }

    /// Lemma of a verb form, if recognized.
    pub fn verb_lemma(&self, lower: &str) -> Option<String> {
        if self.verb_bases.contains_key(lower) {
            return Some(lower.to_string());
        }
        if let Some(base) = self.irregular.get(lower) {
            return Some((*base).to_string());
        }
        self.strip_inflection(lower)
            .filter(|stem| self.verb_bases.contains_key(stem.as_str()))
    }

    /// Try the standard English inflection strippings.
    fn strip_inflection(&self, lower: &str) -> Option<String> {
        let candidates = |w: &str| -> Vec<String> {
            let mut out = Vec::new();
            if let Some(stem) = w.strip_suffix("ies") {
                out.push(format!("{stem}y"));
            }
            if let Some(stem) = w.strip_suffix("es") {
                out.push(stem.to_string());
            }
            if let Some(stem) = w.strip_suffix('s') {
                out.push(stem.to_string());
            }
            if let Some(stem) = w.strip_suffix("ed") {
                out.push(stem.to_string());
                out.push(format!("{stem}e"));
                // doubled final consonant: "planned" → "plan"
                if stem.len() >= 2 {
                    let b = stem.as_bytes();
                    if b[b.len() - 1] == b[b.len() - 2] {
                        out.push(stem[..stem.len() - 1].to_string());
                    }
                }
            }
            if let Some(stem) = w.strip_suffix("ing") {
                out.push(stem.to_string());
                out.push(format!("{stem}e"));
                if stem.len() >= 2 {
                    let b = stem.as_bytes();
                    if b[b.len() - 1] == b[b.len() - 2] {
                        out.push(stem[..stem.len() - 1].to_string());
                    }
                }
            }
            out
        };
        candidates(lower)
            .into_iter()
            .find(|c| self.verb_bases.contains_key(c.as_str()))
    }

    /// Whether `word` (with original casing) is a known abbreviation.
    pub fn is_abbreviation(&self, word: &str) -> bool {
        ABBREVIATIONS.contains(&word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_class_lookup() {
        let lex = Lexicon::new();
        assert_eq!(lex.lookup("the"), Some(PosTag::Det));
        assert_eq!(lex.lookup("she"), Some(PosTag::Pron));
        assert_eq!(lex.lookup("of"), Some(PosTag::Adp));
        assert_eq!(lex.lookup("and"), Some(PosTag::Conj));
        assert_eq!(lex.lookup("was"), Some(PosTag::Verb));
        assert_eq!(lex.lookup("delicious"), Some(PosTag::Adj));
        assert_eq!(lex.lookup("morning"), Some(PosTag::Noun));
        assert_eq!(lex.lookup("zzzz"), None);
    }

    #[test]
    fn verb_inflections() {
        let lex = Lexicon::new();
        for form in [
            "serve", "serves", "served", "serving", "ate", "bought", "hiring",
        ] {
            assert!(lex.is_verb_form(form), "{form}");
        }
        assert!(!lex.is_verb_form("table"));
        assert_eq!(lex.verb_lemma("serves").as_deref(), Some("serve"));
        assert_eq!(lex.verb_lemma("ate").as_deref(), Some("eat"));
        assert_eq!(lex.verb_lemma("hiring").as_deref(), Some("hire"));
        assert_eq!(lex.verb_lemma("married").as_deref(), Some("marry"));
        assert_eq!(lex.verb_lemma("chair"), None);
    }

    #[test]
    fn ing_nouns_stay_nouns() {
        // "baking" is in the noun exception list, so lexicon lookup wins over
        // the -ing verb heuristic (tagger consults lookup first).
        let lex = Lexicon::new();
        assert_eq!(lex.lookup("baking"), Some(PosTag::Noun));
        assert_eq!(lex.lookup("morning"), Some(PosTag::Noun));
    }

    #[test]
    fn abbreviations() {
        let lex = Lexicon::new();
        assert!(lex.is_abbreviation("St."));
        assert!(!lex.is_abbreviation("Stop."));
    }
}
