//! Gazetteers: closed word lists used by the NER stage, the corpus
//! generators (`koko-corpus`) and the embedding builder (`koko-embed`).
//!
//! Keeping them here — in the lowest-level crate — guarantees the three
//! consumers agree: text the generators emit is recognized by NER, and the
//! embedding vocabulary covers every entity the experiments query for.

/// Common first names (tag → `Person` when capitalized).
pub const FIRST_NAMES: &[&str] = &[
    "Anna", "Alys", "Vera", "Cyd", "Sid", "Maria", "John", "Peter", "Laura", "Kenji", "Mina",
    "Oscar", "Elena", "Marco", "Sofia", "Hana", "Igor", "Nadia", "Paulo", "Greta", "Tomas",
    "Irene", "Felix", "Clara", "Hugo", "Alice", "Brian", "Carla", "Diego", "Emma", "Frank", "Gina",
    "Henry", "Ivan", "Julia", "Kevin", "Linda", "Nora", "Owen", "Priya", "Quinn", "Rosa", "Samir",
    "Tara", "Umar", "Viola", "Wendy", "Yara", "Zane", "Leo",
];

/// Common surnames.
pub const LAST_NAMES: &[&str] = &[
    "Charisse", "Thomas", "Adler", "Baker", "Castro", "Dubois", "Evans", "Fischer", "Garcia",
    "Haines", "Ito", "Jensen", "Kovacs", "Larsen", "Moreau", "Novak", "Okafor", "Petrov", "Quist",
    "Rossi", "Sato", "Tanaka", "Ueda", "Vargas", "Weber", "Xu", "Yamada", "Zhang", "Keller",
    "Lindgren", "Mbeki", "Nakamura", "Olsen", "Price", "Romero", "Silva", "Turner", "Vidal",
    "Walsh", "Young",
];

/// City names (entity type `GPE`).
pub const CITIES: &[&str] = &[
    "Beijing",
    "Tokyo",
    "Paris",
    "London",
    "Portland",
    "Seattle",
    "Oslo",
    "Lisbon",
    "Madrid",
    "Rome",
    "Berlin",
    "Vienna",
    "Prague",
    "Dublin",
    "Athens",
    "Cairo",
    "Nairobi",
    "Lima",
    "Bogota",
    "Santiago",
    "Toronto",
    "Chicago",
    "Denver",
    "Austin",
    "Boston",
    "Melbourne",
    "Sydney",
    "Auckland",
    "Osaka",
    "Seoul",
    "Hanoi",
    "Bangkok",
    "Mumbai",
    "Delhi",
    "Jakarta",
    "Manila",
    "Lagos",
    "Accra",
    "Quito",
    "Havana",
];

/// Country names (entity type `GPE`).
pub const COUNTRIES: &[&str] = &[
    "China",
    "Japan",
    "France",
    "England",
    "Norway",
    "Portugal",
    "Spain",
    "Italy",
    "Germany",
    "Austria",
    "Ireland",
    "Greece",
    "Egypt",
    "Kenya",
    "Peru",
    "Colombia",
    "Chile",
    "Canada",
    "Australia",
    "Korea",
    "Vietnam",
    "Thailand",
    "India",
    "Indonesia",
    "Brazil",
    "Mexico",
    "Morocco",
    "Ethiopia",
    "Ghana",
    "Ecuador",
    "Cuba",
    "Poland",
    "Sweden",
    "Finland",
    "Denmark",
    "Hungary",
    "Turkey",
    "Nigeria",
];

/// Organization names.
pub const ORGS: &[&str] = &[
    "Northline Press",
    "Harbor Works",
    "Stellar Labs",
    "Crescent Group",
    "Atlas Media",
    "Pioneer Trust",
    "Vertex Studios",
    "Summit Partners",
    "Beacon Institute",
    "Orchid Society",
];

/// Sports team names (WNUT experiment; entity type `Org`).
pub const TEAMS: &[&str] = &[
    "Falcons", "Rockets", "Mariners", "Wolves", "Hornets", "Pirates", "Comets", "Bulls", "Eagles",
    "Sharks", "Tigers", "Rangers", "Blazers", "Chargers", "Royals", "Saints", "Titans", "Vikings",
    "Warriors", "Yankees", "Panthers", "Raptors", "Sounders", "Union",
];

/// Facility proper names (WNUT experiment; entity type `Facility`).
pub const FACILITY_NAMES: &[&str] = &[
    "Riverside Arena",
    "Union Field",
    "Harbor Stadium",
    "Maple Garden",
    "Summit Hall",
    "Crescent Park",
    "Liberty Dome",
    "Granite Center",
    "Meridian Court",
    "Lakeside Pavilion",
    "Ironwood Gym",
    "Cascade Theater",
    "Beacon Library",
    "Pioneer Museum",
    "Orchard Mall",
    "Century Ballpark",
];

/// Common nouns that head a facility mention (`the old stadium`).
pub const FACILITY_NOUNS: &[&str] = &[
    "stadium", "arena", "gym", "ballpark", "museum", "library", "theater", "mall", "pavilion",
    "court",
];

/// Common nouns that head a location mention (`grocery store`, Figure in §3).
pub const LOCATION_NOUNS: &[&str] = &[
    "store", "school", "market", "station", "office", "bakery", "park", "harbor", "square",
    "street", "shop",
];

/// Food nouns; compounds headed by these become `Other` entities
/// (`chocolate ice cream`, `cheesecake` in Example 3.1).
pub const FOOD_NOUNS: &[&str] = &[
    "cheesecake",
    "cake",
    "cream",
    "pie",
    "pasta",
    "pizza",
    "bread",
    "cookie",
    "cookies",
    "soup",
    "salad",
    "sandwich",
    "waffle",
    "waffles",
    "pancake",
    "pancakes",
    "croissant",
    "scone",
    "scones",
    "donut",
    "donuts",
    "toast",
    "chocolate",
    "espresso",
    "cappuccino",
    "cappuccinos",
    "macchiato",
    "macchiatos",
    "latte",
    "lattes",
    "mocha",
    "cortado",
    "coffee",
    "tea",
    "juice",
];

/// Modifier words for combinatorial cafe names (paired with
/// [`CAFE_NOUNS`], giving ~900 distinct names — novel cafe names are the
/// point of the §6.1 task, so the pool must dwarf any training split).
pub const CAFE_ADJS: &[&str] = &[
    "Copper", "Golden", "Blue", "Iron", "Velvet", "Silver", "Crimson", "Wild", "Quiet", "Amber",
    "Stone", "Green", "Paper", "Lucky", "Honest", "Drift", "North", "Rusty", "Sweet", "Clever",
    "Marble", "Cedar", "Sunny", "Misty", "Bright", "Old", "Little", "Happy", "Swift", "Warm",
];

/// Head words for combinatorial cafe names.
pub const CAFE_NOUNS: &[&str] = &[
    "Kettle", "Fox", "Heron", "Anchor", "Moon", "Pine", "Leaf", "Poppy", "Owl", "Wave", "Bridge",
    "Lantern", "Crane", "Sparrow", "Bean", "Tide", "Star", "Spoon", "Alder", "Crow", "Arch",
    "Grove", "Slope", "Husk", "Mill", "Magpie", "Otter", "Hearth", "Ember", "Canopy",
];

/// First words of synthetic cafe names (combined with [`CAFE_SUFFIXES`] or
/// used alone as two-word proper names).
pub const CAFE_CORES: &[&str] = &[
    "Copper Kettle",
    "Golden Fox",
    "Blue Heron",
    "Iron Anchor",
    "Velvet Moon",
    "Silver Pine",
    "Crimson Leaf",
    "Wild Poppy",
    "Quiet Owl",
    "Amber Wave",
    "Stone Bridge",
    "Green Lantern",
    "Paper Crane",
    "Lucky Sparrow",
    "Honest Bean",
    "Drift Tide",
    "North Star",
    "Rusty Spoon",
    "Sweet Alder",
    "Clever Crow",
    "Marble Arch",
    "Cedar Grove",
    "Sunny Slope",
    "Misty Pine",
    "Bright Husk",
    "Old Mill",
    "Little Harbor",
    "Happy Magpie",
    "Swift Otter",
    "Warm Hearth",
];

/// Suffix words that often appear inside cafe names; the Figure 9 query keys
/// boolean conditions on `Cafe`, `Coffee`, and `Roasters`.
pub const CAFE_SUFFIXES: &[&str] = &["Cafe", "Coffee", "Roasters", "Espresso", "Brewing"];

/// Espresso-machine brands the Figure 9 query must *exclude*.
pub const ESPRESSO_BRANDS: &[&str] = &["La Marzocco", "Synesso", "Aeropress", "V60"];

/// Month names (for `Date` mentions such as `1 December 1900`).
pub const MONTHS: &[&str] = &[
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];

/// Street suffixes for generated addresses (distractors in the cafe corpus).
pub const STREET_SUFFIXES: &[&str] = &["St.", "Street", "Ave.", "Avenue", "Av."];

/// Chocolate type modifiers for the Table 2 `Chocolate` query.
pub const CHOCOLATE_TYPES: &[&str] = &["Baking", "Dark", "Milk", "White", "Raw", "Couverture"];

/// Case-insensitive membership in a word list.
pub fn contains_ci(list: &[&str], word: &str) -> bool {
    list.iter().any(|w| w.eq_ignore_ascii_case(word))
}

/// A named dictionary, the target of KOKO's `str(x) in dict("…")` condition
/// (Figure 9, line 39 uses `dict("Location")`).
pub fn dictionary(name: &str) -> Option<Vec<String>> {
    let lists: &[&[&str]] = match name.to_ascii_lowercase().as_str() {
        "location" => &[CITIES, COUNTRIES, LOCATION_NOUNS, FACILITY_NAMES],
        "gpe" => &[CITIES, COUNTRIES],
        "person" => &[FIRST_NAMES, LAST_NAMES],
        "food" => &[FOOD_NOUNS],
        "team" => &[TEAMS],
        "facility" => &[FACILITY_NAMES, FACILITY_NOUNS],
        "brand" => &[ESPRESSO_BRANDS],
        _ => return None,
    };
    let mut out = Vec::new();
    for list in lists {
        out.extend(list.iter().map(|s| s.to_string()));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lists_are_nonempty_and_distinct() {
        for list in [
            FIRST_NAMES,
            LAST_NAMES,
            CITIES,
            COUNTRIES,
            TEAMS,
            FACILITY_NAMES,
            FOOD_NOUNS,
            CAFE_CORES,
        ] {
            assert!(list.len() >= 10);
            let mut sorted: Vec<_> = list.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), list.len(), "duplicate entries in gazetteer");
        }
    }

    #[test]
    fn cities_and_countries_do_not_overlap() {
        for c in CITIES {
            assert!(!contains_ci(COUNTRIES, c), "{c} in both lists");
        }
    }

    #[test]
    fn dictionary_lookup() {
        let loc = dictionary("Location").unwrap();
        assert!(loc.iter().any(|w| w == "Beijing"));
        assert!(loc.iter().any(|w| w == "store"));
        assert!(dictionary("nonsense").is_none());
    }

    #[test]
    fn contains_ci_is_case_insensitive() {
        assert!(contains_ci(CITIES, "tokyo"));
        assert!(contains_ci(CITIES, "TOKYO"));
        assert!(!contains_ci(CITIES, "Gotham"));
    }
}
