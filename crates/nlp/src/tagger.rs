//! POS tagging: lexicon lookup → gazetteer/capitalization → suffix
//! heuristics → default NOUN.
//!
//! The priority order matters and is tested against the paper's Figure 1
//! annotations (see `pipeline::tests`).

use crate::gazetteer;
use crate::lexicon::Lexicon;
use crate::types::PosTag;

/// Tag one sentence of surface tokens.
pub fn tag(tokens: &[String], lex: &Lexicon) -> Vec<PosTag> {
    let lowers: Vec<String> = tokens.iter().map(|t| t.to_lowercase()).collect();
    let mut tags = Vec::with_capacity(tokens.len());
    for (i, tok) in tokens.iter().enumerate() {
        tags.push(tag_one(tok, &lowers[i], i, tokens, lex));
    }
    // Contextual repair: "that" heading a noun phrase is a determiner, not a
    // relative pronoun ("that cake" vs "cake that she bought").
    for i in 0..tokens.len() {
        if lowers[i] == "that"
            && tags[i] == PosTag::Pron
            && matches!(
                tags.get(i + 1),
                Some(PosTag::Noun) | Some(PosTag::Adj) | Some(PosTag::Propn)
            )
        {
            tags[i] = PosTag::Det;
        }
    }
    tags
}

fn tag_one(token: &str, lower: &str, idx: usize, tokens: &[String], lex: &Lexicon) -> PosTag {
    // 1. Punctuation.
    if token.chars().all(|c| c.is_ascii_punctuation()) && !token.starts_with('@') {
        return PosTag::Punct;
    }
    // 2. Numbers (1900, 4.2, 3rd).
    if token.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return PosTag::Num;
    }
    // 3. Capitalized month names ("May") outrank the aux-verb lexicon entry.
    if token.chars().next().is_some_and(|c| c.is_uppercase())
        && gazetteer::contains_ci(gazetteer::MONTHS, token)
    {
        return PosTag::Propn;
    }
    // 4. Mid-sentence capitalization signals a proper noun and outranks the
    //    open-class lexicon ("Copper *Kettle* Roasters"). Closed classes that
    //    are routinely capitalized ("I", "She") keep their lexicon tag.
    let lex_tag = lex.lookup(lower);
    let capitalized = token.chars().next().is_some_and(|c| c.is_uppercase());
    if idx > 0 && capitalized {
        match lex_tag {
            Some(t @ (PosTag::Pron | PosTag::Det)) => return t,
            _ => return PosTag::Propn,
        }
    }
    // 5. Sentence-initial capitalized words corroborated by a gazetteer hit
    //    or a following capitalized word are proper nouns even when the
    //    open-class lexicon knows them ("Quiet Owl serves…"); closed
    //    classes and auxiliaries keep their tags ("The Golden Fox…").
    if idx == 0 && capitalized {
        let in_gazetteer = gazetteer::contains_ci(gazetteer::FIRST_NAMES, token)
            || gazetteer::contains_ci(gazetteer::LAST_NAMES, token)
            || gazetteer::contains_ci(gazetteer::CITIES, token)
            || gazetteer::contains_ci(gazetteer::COUNTRIES, token)
            || gazetteer::contains_ci(gazetteer::TEAMS, token);
        let next_cap = tokens
            .get(idx + 1)
            .and_then(|t| t.chars().next())
            .is_some_and(|c| c.is_uppercase());
        if in_gazetteer || next_cap {
            match lex_tag {
                Some(
                    t @ (PosTag::Pron | PosTag::Det | PosTag::Adp | PosTag::Conj | PosTag::Adv),
                ) => return t,
                Some(PosTag::Verb) => return PosTag::Verb,
                _ => return PosTag::Propn,
            }
        }
    }
    // 6. Closed classes and exception lists.
    if let Some(tag) = lex_tag {
        return tag;
    }
    // 4. Verb forms (base + inflections + irregulars).
    if lex.is_verb_form(lower) {
        return PosTag::Verb;
    }
    // 6. Handles (@bluebottle) are treated as proper nouns.
    if token.starts_with('@') {
        return PosTag::Propn;
    }
    // 7. Suffix heuristics.
    if lower.ends_with("ly") {
        return PosTag::Adv;
    }
    if lower.ends_with("ing") || lower.ends_with("ed") {
        return PosTag::Verb;
    }
    if lower.ends_with("ous")
        || lower.ends_with("ful")
        || lower.ends_with("ive")
        || lower.ends_with("less")
        || lower.ends_with("able")
    {
        return PosTag::Adj;
    }
    // 8. Default.
    PosTag::Noun
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag_str(s: &str) -> Vec<PosTag> {
        let toks: Vec<String> = s.split_whitespace().map(str::to_string).collect();
        tag(&toks, &Lexicon::new())
    }

    #[test]
    fn figure1_tags() {
        // Paper Figure 1: PRON VERB DET NOUN NOUN NOUN PUNCT DET* VERB ADJ
        // PUNCT CONJ ADV VERB DET NOUN PUNCT.  (* the paper tags "which" DET;
        // we tag it PRON — the parser treats both as relativizers.)
        let tags =
            tag_str("I ate a chocolate ice cream , which was delicious , and also ate a pie .");
        use PosTag::*;
        assert_eq!(
            tags,
            vec![
                Pron, Verb, Det, Noun, Noun, Noun, Punct, Pron, Verb, Adj, Punct, Conj, Adv, Verb,
                Det, Noun, Punct
            ]
        );
    }

    #[test]
    fn example31_tags() {
        let tags =
            tag_str("Anna ate some delicious cheesecake that she bought at a grocery store .");
        use PosTag::*;
        assert_eq!(
            tags,
            vec![Propn, Verb, Det, Adj, Noun, Pron, Pron, Verb, Adp, Det, Noun, Noun, Punct]
        );
    }

    #[test]
    fn that_as_determiner() {
        let tags = tag_str("she bought that cake .");
        assert_eq!(tags[2], PosTag::Det);
    }

    #[test]
    fn numbers_and_dates() {
        let tags = tag_str("He was born on 1 December 1900 .");
        assert_eq!(tags[4], PosTag::Num);
        assert_eq!(tags[5], PosTag::Propn);
        assert_eq!(tags[6], PosTag::Num);
    }

    #[test]
    fn sentence_initial_common_noun_not_propn() {
        let tags = tag_str("Cities in asian countries grow .");
        assert_eq!(tags[0], PosTag::Noun);
        assert_eq!(tags[2], PosTag::Adj);
    }

    #[test]
    fn sentence_initial_name_is_propn() {
        let tags = tag_str("Anna sells coffee .");
        assert_eq!(tags[0], PosTag::Propn);
    }

    #[test]
    fn multiword_proper_names() {
        let tags = tag_str("Copper Kettle Roasters opened downtown .");
        assert_eq!(&tags[0..3], &[PosTag::Propn, PosTag::Propn, PosTag::Propn]);
    }

    #[test]
    fn suffix_fallbacks() {
        let tags = tag_str("the dancer moved gracefully .");
        assert_eq!(tags[3], PosTag::Adv);
        let tags = tag_str("a fabulous thing .");
        assert_eq!(tags[1], PosTag::Adj);
    }

    #[test]
    fn ing_exception_list() {
        let tags = tag_str("Baking chocolate is sweet .");
        assert_eq!(tags[0], PosTag::Noun, "baking is in the noun list");
    }
}
