//! The end-to-end NLP pipeline: text → tokenized, tagged, NER-annotated,
//! dependency-parsed [`Document`]s. This is KOKO's preprocessing step (§2,
//! "Preprocessing the input"), standing in for spaCy / Google Cloud NL API.

use crate::lexicon::Lexicon;
use crate::ner::Ner;
use crate::types::{Corpus, Document, Sentence, Token};
use crate::{depparse, tagger, tokenize};

/// A reusable parsing pipeline. Construction compiles the lexicon and NER
/// tables; `parse_*` methods are then pure and `&self` (safe to share across
/// threads).
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    lexicon: Lexicon,
    ner: Ner,
}

impl Pipeline {
    pub fn new() -> Pipeline {
        Pipeline {
            lexicon: Lexicon::new(),
            ner: Ner::new(),
        }
    }

    /// Parse one document's raw text.
    pub fn parse_document(&self, id: u32, text: &str) -> Document {
        let mut doc = Document {
            id,
            sentences: Vec::new(),
        };
        for sent_tokens in tokenize::tokenize(text, &self.lexicon) {
            doc.sentences.push(self.parse_tokens(sent_tokens));
        }
        doc
    }

    /// Parse a pre-tokenized sentence.
    pub fn parse_tokens(&self, tokens: Vec<String>) -> Sentence {
        let tags = tagger::tag(&tokens, &self.lexicon);
        let mut sentence = Sentence {
            tokens: tokens
                .into_iter()
                .zip(tags)
                .map(|(text, pos)| {
                    let mut t = Token::new(text);
                    t.pos = pos;
                    t
                })
                .collect(),
            entities: Vec::new(),
        };
        self.ner.annotate(&mut sentence);
        depparse::parse(&mut sentence);
        sentence
    }

    /// Parse a collection of raw documents into a corpus with a global
    /// sentence-id space.
    pub fn parse_corpus<S: AsRef<str>>(&self, texts: &[S]) -> Corpus {
        let docs: Vec<Document> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| self.parse_document(i as u32, t.as_ref()))
            .collect();
        Corpus::new(docs)
    }

    /// Parse documents concurrently on up to `threads` worker threads
    /// (`0` = one per available core) and reassemble the corpus in input
    /// order. `parse_document` is pure, so the result is byte-identical to
    /// [`Pipeline::parse_corpus`] — this is the parallel ingest path of the
    /// sharded engine.
    pub fn parse_corpus_parallel<S: AsRef<str> + Sync>(
        &self,
        texts: &[S],
        threads: usize,
    ) -> Corpus {
        let docs = koko_par::par_map(texts, threads, |i, t| {
            self.parse_document(i as u32, t.as_ref())
        });
        Corpus::new(docs)
    }

    /// Parse raw documents into [`Document`]s whose ids start at
    /// `first_id` — the incremental-ingest path, where new documents join
    /// an existing corpus and must carry their final global ids. Runs on
    /// up to `threads` workers (`0` = auto, `1` = sequential); per-document
    /// parsing is position-independent, so the documents are byte-identical
    /// to the ones a batch [`Pipeline::parse_corpus`] of the concatenated
    /// text would produce at the same indices.
    pub fn parse_documents<S: AsRef<str> + Sync>(
        &self,
        texts: &[S],
        first_id: u32,
        threads: usize,
    ) -> Vec<Document> {
        koko_par::par_map(texts, threads, |i, t| {
            self.parse_document(first_id + i as u32, t.as_ref())
        })
    }

    /// Access the lexicon (the CRF baseline reuses its word lists).
    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{tree_stats, EntityType, PosTag};

    #[test]
    fn full_pipeline_figure1() {
        let p = Pipeline::new();
        let doc = p.parse_document(
            42,
            "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
        );
        assert_eq!(doc.id, 42);
        assert_eq!(doc.sentences.len(), 1);
        let s = &doc.sentences[0];
        assert_eq!(s.len(), 17);
        assert_eq!(s.tokens[1].text, "ate");
        assert_eq!(s.tokens[1].pos, PosTag::Verb);
        assert_eq!(s.root(), Some(1));
        // Entity: "chocolate ice cream" typed OTHER (Figure 1).
        assert!(s
            .entities
            .iter()
            .any(|m| s.mention_text(m) == "chocolate ice cream" && m.etype == EntityType::Other));
    }

    #[test]
    fn multi_sentence_document() {
        let p = Pipeline::new();
        let doc = p.parse_document(0, "Anna ate cake. She bought pie. The cafe opened.");
        assert_eq!(doc.sentences.len(), 3);
        for s in &doc.sentences {
            assert!(s.root().is_some());
        }
    }

    #[test]
    fn corpus_construction() {
        let p = Pipeline::new();
        let corpus = p.parse_corpus(&["Anna ate cake. She was happy.", "go Falcons!"]);
        assert_eq!(corpus.num_documents(), 2);
        assert_eq!(corpus.num_sentences(), 3);
        assert_eq!(corpus.doc_of(2), 1);
    }

    #[test]
    fn parallel_parse_matches_sequential() {
        let p = Pipeline::new();
        let texts: Vec<String> = (0..23)
            .map(|i| format!("Anna ate cake number {i}. The cafe was busy. go Falcons!"))
            .collect();
        let seq = p.parse_corpus(&texts);
        for threads in [0, 1, 2, 5] {
            let par = p.parse_corpus_parallel(&texts, threads);
            assert_eq!(par.num_documents(), seq.num_documents());
            assert_eq!(par.num_sentences(), seq.num_sentences());
            assert_eq!(par.documents(), seq.documents(), "threads={threads}");
        }
    }

    #[test]
    fn offset_parse_matches_batch_parse() {
        let p = Pipeline::new();
        let texts: Vec<String> = (0..9)
            .map(|i| format!("Anna ate cake number {i}. The cafe was busy."))
            .collect();
        let batch = p.parse_corpus(&texts);
        let (head, tail) = texts.split_at(4);
        let mut docs = p.parse_documents(head, 0, 1);
        docs.extend(p.parse_documents(tail, 4, 2));
        assert_eq!(docs.len(), batch.documents().len());
        for (a, b) in docs.iter().zip(batch.documents()) {
            assert_eq!(a, b.as_ref());
        }
    }

    #[test]
    fn tree_stats_are_consistent_for_pipeline_output() {
        let p = Pipeline::new();
        let corpus = p.parse_corpus(&[
            "The new cafe on Mission St. has the best cup of espresso in Portland.",
            "He was married to Alys Thomas on 1 December 1900 in London, and the couple had a daughter Vera born in 1911.",
            "Copper Kettle Roasters serves delicious cappuccinos and employs three baristas.",
        ]);
        for (_, s) in corpus.sentences() {
            let st = tree_stats(s);
            let root = s.root().expect("root") as usize;
            assert_eq!(st[root].left, 0);
            assert_eq!(st[root].right, (s.len() - 1) as u32);
            for (i, stat) in st.iter().enumerate() {
                assert!(stat.left <= i as u32 && i as u32 <= stat.right);
            }
        }
    }
}
