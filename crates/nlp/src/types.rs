//! The annotation data model shared by every KOKO crate.
//!
//! Mirrors the paper's preprocessing output (§2, Figure 1): a document is a
//! sequence of sentences; each token carries a POS tag (universal tagset), a
//! dependency parse label, a reference to its head, and entity mentions are
//! recorded as typed spans. The posting quintuple `(x, y, u–v, d)` of §3.1 is
//! [`Posting`].

use std::fmt;

/// Sentence identifier, global across a [`Corpus`].
pub type Sid = u32;
/// Token identifier, local to a sentence.
pub type Tid = u32;

/// Universal POS tags (Petrov et al. \[33\], the tagset used in Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum PosTag {
    Adj,
    Adp,
    Adv,
    Conj,
    Det,
    Noun,
    Num,
    Pron,
    Propn,
    Prt,
    Punct,
    Verb,
    X,
}

impl PosTag {
    /// All tags, for enumeration in benchmarks and property tests.
    pub const ALL: [PosTag; 13] = [
        PosTag::Adj,
        PosTag::Adp,
        PosTag::Adv,
        PosTag::Conj,
        PosTag::Det,
        PosTag::Noun,
        PosTag::Num,
        PosTag::Pron,
        PosTag::Propn,
        PosTag::Prt,
        PosTag::Punct,
        PosTag::Verb,
        PosTag::X,
    ];

    /// Lower-case name as written in KOKO queries (`//verb`, `@pos="noun"`).
    pub fn name(self) -> &'static str {
        match self {
            PosTag::Adj => "adj",
            PosTag::Adp => "adp",
            PosTag::Adv => "adv",
            PosTag::Conj => "conj",
            PosTag::Det => "det",
            PosTag::Noun => "noun",
            PosTag::Num => "num",
            PosTag::Pron => "pron",
            PosTag::Propn => "propn",
            PosTag::Prt => "prt",
            PosTag::Punct => "punct",
            PosTag::Verb => "verb",
            PosTag::X => "x",
        }
    }

    /// Parse a tag name (case-insensitive). `None` for unknown names.
    pub fn from_name(name: &str) -> Option<PosTag> {
        let lower = name.to_ascii_lowercase();
        PosTag::ALL.iter().copied().find(|t| t.name() == lower)
    }

    /// Content words carry lexical meaning; used by descriptor expansion.
    pub fn is_content(self) -> bool {
        matches!(
            self,
            PosTag::Adj | PosTag::Adv | PosTag::Noun | PosTag::Propn | PosTag::Verb
        )
    }
}

impl fmt::Display for PosTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Dependency parse labels (the Stanford-style label set of Figure 1 /
/// McDonald et al. \[28\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum ParseLabel {
    Root,
    Nsubj,
    Dobj,
    Iobj,
    Det,
    Nn,
    Amod,
    Advmod,
    Acomp,
    Rcmod,
    Cc,
    Conj,
    Prep,
    Pobj,
    P,
    Xcomp,
    Ccomp,
    Aux,
    Neg,
    Num,
    Poss,
    Appos,
    Mark,
    Dep,
}

impl ParseLabel {
    /// All labels, for enumeration.
    pub const ALL: [ParseLabel; 24] = [
        ParseLabel::Root,
        ParseLabel::Nsubj,
        ParseLabel::Dobj,
        ParseLabel::Iobj,
        ParseLabel::Det,
        ParseLabel::Nn,
        ParseLabel::Amod,
        ParseLabel::Advmod,
        ParseLabel::Acomp,
        ParseLabel::Rcmod,
        ParseLabel::Cc,
        ParseLabel::Conj,
        ParseLabel::Prep,
        ParseLabel::Pobj,
        ParseLabel::P,
        ParseLabel::Xcomp,
        ParseLabel::Ccomp,
        ParseLabel::Aux,
        ParseLabel::Neg,
        ParseLabel::Num,
        ParseLabel::Poss,
        ParseLabel::Appos,
        ParseLabel::Mark,
        ParseLabel::Dep,
    ];

    /// Lower-case name as written in KOKO queries (`a/dobj`).
    pub fn name(self) -> &'static str {
        match self {
            ParseLabel::Root => "root",
            ParseLabel::Nsubj => "nsubj",
            ParseLabel::Dobj => "dobj",
            ParseLabel::Iobj => "iobj",
            ParseLabel::Det => "det",
            ParseLabel::Nn => "nn",
            ParseLabel::Amod => "amod",
            ParseLabel::Advmod => "advmod",
            ParseLabel::Acomp => "acomp",
            ParseLabel::Rcmod => "rcmod",
            ParseLabel::Cc => "cc",
            ParseLabel::Conj => "conj",
            ParseLabel::Prep => "prep",
            ParseLabel::Pobj => "pobj",
            ParseLabel::P => "p",
            ParseLabel::Xcomp => "xcomp",
            ParseLabel::Ccomp => "ccomp",
            ParseLabel::Aux => "aux",
            ParseLabel::Neg => "neg",
            ParseLabel::Num => "num",
            ParseLabel::Poss => "poss",
            ParseLabel::Appos => "appos",
            ParseLabel::Mark => "mark",
            ParseLabel::Dep => "dep",
        }
    }

    /// Parse a label name (case-insensitive). `None` for unknown names.
    pub fn from_name(name: &str) -> Option<ParseLabel> {
        let lower = name.to_ascii_lowercase();
        ParseLabel::ALL.iter().copied().find(|l| l.name() == lower)
    }
}

impl fmt::Display for ParseLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Entity types produced by the NER stage. `Other` is the catch-all the paper
/// displays as `OTHER` in Figure 1; `Entity` in a KOKO query matches *any*
/// mention regardless of type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum EntityType {
    Person,
    Location,
    Gpe,
    Org,
    Date,
    Facility,
    Other,
}

impl EntityType {
    pub const ALL: [EntityType; 7] = [
        EntityType::Person,
        EntityType::Location,
        EntityType::Gpe,
        EntityType::Org,
        EntityType::Date,
        EntityType::Facility,
        EntityType::Other,
    ];

    pub fn name(self) -> &'static str {
        match self {
            EntityType::Person => "Person",
            EntityType::Location => "Location",
            EntityType::Gpe => "GPE",
            EntityType::Org => "Org",
            EntityType::Date => "Date",
            EntityType::Facility => "Facility",
            EntityType::Other => "Other",
        }
    }

    /// Parse a type name as written in queries (case-insensitive).
    pub fn from_name(name: &str) -> Option<EntityType> {
        let lower = name.to_ascii_lowercase();
        EntityType::ALL
            .iter()
            .copied()
            .find(|t| t.name().to_ascii_lowercase() == lower)
    }
}

impl fmt::Display for EntityType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One token with its annotations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Surface form as it appeared in the text.
    pub text: String,
    /// Lower-cased form, precomputed because every index keys on it.
    pub lower: String,
    pub pos: PosTag,
    pub label: ParseLabel,
    /// Head token id; `None` for the root of the dependency tree.
    pub head: Option<Tid>,
}

impl Token {
    /// A token with default (pre-parse) annotations.
    pub fn new(text: impl Into<String>) -> Token {
        let text = text.into();
        let lower = text.to_lowercase();
        Token {
            text,
            lower,
            pos: PosTag::X,
            label: ParseLabel::Dep,
            head: None,
        }
    }
}

/// A typed entity mention covering tokens `start..=end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntityMention {
    pub start: Tid,
    /// Inclusive end token id (matching the paper's `u–v` convention).
    pub end: Tid,
    pub etype: EntityType,
}

/// A parsed sentence: tokens plus entity mentions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Sentence {
    pub tokens: Vec<Token>,
    pub entities: Vec<EntityMention>,
}

impl Sentence {
    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The root token id (the token with no head), if the sentence is parsed.
    pub fn root(&self) -> Option<Tid> {
        self.tokens
            .iter()
            .position(|t| t.head.is_none())
            .map(|i| i as Tid)
    }

    /// Children of `tid` in the dependency tree, in surface order.
    pub fn children(&self, tid: Tid) -> impl Iterator<Item = Tid> + '_ {
        self.tokens
            .iter()
            .enumerate()
            .filter(move |(_, t)| t.head == Some(tid))
            .map(|(i, _)| i as Tid)
    }

    /// Text of the span `start..=end` (inclusive), joined by single spaces.
    pub fn span_text(&self, start: Tid, end: Tid) -> String {
        let mut out = String::new();
        for tid in start..=end.min(self.len().saturating_sub(1) as Tid) {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(&self.tokens[tid as usize].text);
        }
        out
    }

    /// The mention's surface text.
    pub fn mention_text(&self, m: &EntityMention) -> String {
        self.span_text(m.start, m.end)
    }

    /// Full sentence text.
    pub fn text(&self) -> String {
        if self.tokens.is_empty() {
            return String::new();
        }
        self.span_text(0, (self.len() - 1) as Tid)
    }
}

/// A parsed document.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Document {
    pub id: u32,
    pub sentences: Vec<Sentence>,
}

impl Document {
    pub fn num_tokens(&self) -> usize {
        self.sentences.iter().map(Sentence::len).sum()
    }
}

/// A parsed corpus with a global sentence-id space.
///
/// Sentence ids run over documents in order, matching the `sid` component of
/// every index posting.
///
/// Documents are held behind [`std::sync::Arc`], so corpora derived from
/// one another — the live engine's generations, shard-local views — share
/// parsed documents instead of deep-copying them: [`Corpus::extended`]
/// and `clone()` cost reference bumps plus one `u32` per *document* (the
/// sid boundary table — there is deliberately no per-sentence table, so
/// deriving a successor corpus never scales with the sentence count),
/// never a re-parse or a token copy.
#[derive(Debug, Clone)]
pub struct Corpus {
    docs: Vec<std::sync::Arc<Document>>,
    /// `doc_first_sid[di]` is document `di`'s first sid; one trailing
    /// sentinel holds the total sentence count (len = docs.len() + 1).
    /// sid → doc resolves by binary search over this table.
    doc_first_sid: Vec<Sid>,
}

impl Default for Corpus {
    fn default() -> Corpus {
        Corpus::from_shared(Vec::new())
    }
}

impl Corpus {
    pub fn new(docs: Vec<Document>) -> Corpus {
        Corpus::from_shared(docs.into_iter().map(std::sync::Arc::new).collect())
    }

    /// Build from already-shared documents (no copies; the boundary table
    /// is recomputed for this document order).
    pub fn from_shared(docs: Vec<std::sync::Arc<Document>>) -> Corpus {
        let mut doc_first_sid = Vec::with_capacity(docs.len() + 1);
        let mut next = 0 as Sid;
        for d in &docs {
            doc_first_sid.push(next);
            next += d.sentences.len() as Sid;
        }
        doc_first_sid.push(next);
        Corpus {
            docs,
            doc_first_sid,
        }
    }

    /// A successor corpus with `more` documents appended. Existing
    /// documents are shared, not copied, and the boundary table is
    /// copy-extended rather than recomputed — appending never re-walks
    /// existing documents or sentences, so beyond the per-document flat
    /// copies the cost is proportional to the *new* documents (the
    /// incremental-ingest path runs this under the writer lock on every
    /// add).
    pub fn extended(&self, more: Vec<std::sync::Arc<Document>>) -> Corpus {
        let mut docs = Vec::with_capacity(self.docs.len() + more.len());
        docs.extend(self.docs.iter().cloned());
        let mut doc_first_sid = Vec::with_capacity(self.doc_first_sid.len() + more.len());
        doc_first_sid.extend_from_slice(&self.doc_first_sid);
        let mut next = doc_first_sid.pop().expect("sentinel always present");
        for d in more {
            doc_first_sid.push(next);
            next += d.sentences.len() as Sid;
            docs.push(d);
        }
        doc_first_sid.push(next);
        Corpus {
            docs,
            doc_first_sid,
        }
    }

    pub fn documents(&self) -> &[std::sync::Arc<Document>] {
        &self.docs
    }

    /// The document at index `di`. Panics on out-of-range indices.
    pub fn document(&self, di: u32) -> &Document {
        &self.docs[di as usize]
    }

    pub fn num_documents(&self) -> usize {
        self.docs.len()
    }

    pub fn num_sentences(&self) -> usize {
        *self.doc_first_sid.last().expect("sentinel always present") as usize
    }

    pub fn num_tokens(&self) -> usize {
        self.docs.iter().map(|d| d.num_tokens()).sum()
    }

    /// The sentence with global id `sid`. Panics on out-of-range ids.
    pub fn sentence(&self, sid: Sid) -> &Sentence {
        let di = self.doc_of(sid);
        let si = sid - self.doc_first_sid[di as usize];
        &self.docs[di as usize].sentences[si as usize]
    }

    /// Document index containing sentence `sid` (binary search over the
    /// boundary table, so sid lookups cost O(log #docs); sentence-less
    /// documents are skipped, matching sid assignment order).
    pub fn doc_of(&self, sid: Sid) -> u32 {
        debug_assert!((sid as usize) < self.num_sentences(), "sid out of range");
        self.doc_first_sid.partition_point(|&s| s <= sid) as u32 - 1
    }

    /// Global sid of sentence `si` of document `di`.
    pub fn sid_of(&self, di: u32, si: u32) -> Sid {
        self.doc_first_sid[di as usize] + si
    }

    /// Global sid range `[start, end)` of document `di`.
    pub fn doc_sids(&self, di: u32) -> std::ops::Range<Sid> {
        self.doc_first_sid[di as usize]..self.doc_first_sid[di as usize + 1]
    }

    /// Iterate `(sid, &sentence)` over the whole corpus.
    pub fn sentences(&self) -> impl Iterator<Item = (Sid, &Sentence)> + '_ {
        self.docs
            .iter()
            .zip(&self.doc_first_sid)
            .flat_map(|(doc, &first)| {
                doc.sentences
                    .iter()
                    .enumerate()
                    .map(move |(si, s)| (first + si as Sid, s))
            })
    }
}

/// Per-token dependency-tree statistics: the `u`, `v`, `d` of the paper's
/// posting quintuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeStat {
    /// First token id of the subtree rooted at this token.
    pub left: Tid,
    /// Last token id (inclusive) of the subtree rooted at this token.
    pub right: Tid,
    /// Depth in the dependency tree; the root has depth 0.
    pub depth: u16,
}

/// Compute subtree spans and depths for every token of a parsed sentence.
///
/// Requires a well-formed projective tree: each token's subtree must cover a
/// contiguous token range (our parser guarantees this; see
/// `depparse::tests::projectivity`).
pub fn tree_stats(sentence: &Sentence) -> Vec<NodeStat> {
    let n = sentence.len();
    let mut stats = vec![NodeStat::default(); n];
    if n == 0 {
        return stats;
    }
    // children adjacency
    let mut children: Vec<Vec<Tid>> = vec![Vec::new(); n];
    let mut root = 0 as Tid;
    for (i, t) in sentence.tokens.iter().enumerate() {
        match t.head {
            Some(h) => children[h as usize].push(i as Tid),
            None => root = i as Tid,
        }
    }
    // Iterative DFS computing depth on the way down and spans on the way up.
    #[derive(Clone, Copy)]
    enum Step {
        Enter(Tid, u16),
        Exit(Tid),
    }
    let mut stack = vec![Step::Enter(root, 0)];
    while let Some(step) = stack.pop() {
        match step {
            Step::Enter(tid, depth) => {
                stats[tid as usize] = NodeStat {
                    left: tid,
                    right: tid,
                    depth,
                };
                stack.push(Step::Exit(tid));
                for &c in &children[tid as usize] {
                    stack.push(Step::Enter(c, depth + 1));
                }
            }
            Step::Exit(tid) => {
                let mut left = stats[tid as usize].left;
                let mut right = stats[tid as usize].right;
                for &c in &children[tid as usize] {
                    left = left.min(stats[c as usize].left);
                    right = right.max(stats[c as usize].right);
                }
                stats[tid as usize].left = left;
                stats[tid as usize].right = right;
            }
        }
    }
    stats
}

/// The paper's posting quintuple `(x, y, u–v, d)` (§3.1): sentence id, token
/// id, subtree span, and depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Posting {
    pub sid: Sid,
    pub tid: Tid,
    pub left: Tid,
    pub right: Tid,
    pub depth: u16,
}

impl Posting {
    /// Whether `self` is the parent of `c` per the §3.1 containment test:
    /// same sentence, span containment, depth difference exactly one.
    pub fn is_parent_of(&self, c: &Posting) -> bool {
        self.sid == c.sid
            && self.left <= c.left
            && self.right >= c.right
            && c.depth == self.depth + 1
    }

    /// Whether `self` is a (proper) ancestor of `c`.
    pub fn is_ancestor_of(&self, c: &Posting) -> bool {
        self.sid == c.sid && self.left <= c.left && self.right >= c.right && c.depth > self.depth
    }
}

/// The paper's entity-index triple `(x, u–v)` (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityPosting {
    pub sid: Sid,
    pub left: Tid,
    pub right: Tid,
    pub etype: EntityType,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_sentence() -> Sentence {
        // "Anna ate cake ." with ate as root.
        let mut s = Sentence::default();
        for (text, pos, label, head) in [
            ("Anna", PosTag::Propn, ParseLabel::Nsubj, Some(1)),
            ("ate", PosTag::Verb, ParseLabel::Root, None),
            ("cake", PosTag::Noun, ParseLabel::Dobj, Some(1)),
            (".", PosTag::Punct, ParseLabel::P, Some(1)),
        ] {
            let mut t = Token::new(text);
            t.pos = pos;
            t.label = label;
            t.head = head;
            s.tokens.push(t);
        }
        s.entities.push(EntityMention {
            start: 0,
            end: 0,
            etype: EntityType::Person,
        });
        s
    }

    #[test]
    fn extended_corpus_matches_from_shared_rebuild() {
        let doc = |id: u32, sents: usize| {
            std::sync::Arc::new(Document {
                id,
                sentences: (0..sents).map(|_| toy_sentence()).collect(),
            })
        };
        let base = Corpus::from_shared(vec![doc(0, 2), doc(1, 1)]);
        let more = vec![doc(2, 3), doc(3, 1)];
        let grown = base.extended(more.clone());
        let mut all: Vec<_> = base.documents().to_vec();
        all.extend(more);
        let rebuilt = Corpus::from_shared(all);
        assert_eq!(grown.documents(), rebuilt.documents());
        assert_eq!(grown.num_sentences(), rebuilt.num_sentences());
        for sid in 0..grown.num_sentences() as Sid {
            assert_eq!(grown.doc_of(sid), rebuilt.doc_of(sid));
        }
        for di in 0..grown.num_documents() as u32 {
            assert_eq!(grown.doc_sids(di), rebuilt.doc_sids(di));
        }
        // The base is untouched and its documents are shared, not copied.
        assert_eq!(base.num_documents(), 2);
        assert!(std::sync::Arc::ptr_eq(
            &base.documents()[0],
            &grown.documents()[0]
        ));
    }

    #[test]
    fn tree_stats_basic() {
        let s = toy_sentence();
        let st = tree_stats(&s);
        assert_eq!(
            st[1],
            NodeStat {
                left: 0,
                right: 3,
                depth: 0
            }
        );
        assert_eq!(
            st[0],
            NodeStat {
                left: 0,
                right: 0,
                depth: 1
            }
        );
        assert_eq!(
            st[2],
            NodeStat {
                left: 2,
                right: 2,
                depth: 1
            }
        );
    }

    #[test]
    fn posting_parenthood() {
        let s = toy_sentence();
        let st = tree_stats(&s);
        let p = |tid: usize| Posting {
            sid: 7,
            tid: tid as Tid,
            left: st[tid].left,
            right: st[tid].right,
            depth: st[tid].depth,
        };
        assert!(p(1).is_parent_of(&p(0)));
        assert!(p(1).is_parent_of(&p(2)));
        assert!(!p(0).is_parent_of(&p(2)));
        assert!(p(1).is_ancestor_of(&p(2)));
        assert!(!p(2).is_ancestor_of(&p(1)));
        let other_sentence = Posting { sid: 8, ..p(0) };
        assert!(!p(1).is_parent_of(&other_sentence));
    }

    #[test]
    fn corpus_sid_mapping() {
        let d1 = Document {
            id: 0,
            sentences: vec![toy_sentence(), toy_sentence()],
        };
        let d2 = Document {
            id: 1,
            sentences: vec![toy_sentence()],
        };
        let c = Corpus::new(vec![d1, d2]);
        assert_eq!(c.num_sentences(), 3);
        assert_eq!(c.doc_of(0), 0);
        assert_eq!(c.doc_of(2), 1);
        assert_eq!(c.sid_of(1, 0), 2);
        assert_eq!(c.doc_sids(0), 0..2);
        assert_eq!(c.doc_sids(1), 2..3);
    }

    #[test]
    fn names_round_trip() {
        for t in PosTag::ALL {
            assert_eq!(PosTag::from_name(t.name()), Some(t));
        }
        for l in ParseLabel::ALL {
            assert_eq!(ParseLabel::from_name(l.name()), Some(l));
        }
        for e in EntityType::ALL {
            assert_eq!(EntityType::from_name(e.name()), Some(e));
        }
        assert_eq!(PosTag::from_name("VERB"), Some(PosTag::Verb));
        assert_eq!(EntityType::from_name("gpe"), Some(EntityType::Gpe));
        assert_eq!(PosTag::from_name("nope"), None);
    }

    #[test]
    fn span_text_joins() {
        let s = toy_sentence();
        assert_eq!(s.span_text(0, 2), "Anna ate cake");
        assert_eq!(s.text(), "Anna ate cake .");
        assert_eq!(s.root(), Some(1));
    }
}
