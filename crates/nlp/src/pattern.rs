//! Tree patterns: the shared query representation for the index benchmarks
//! (§6.2.2's SyntheticTree workload) and the ground-truth matcher used to
//! compute index *effectiveness*.
//!
//! A pattern is a small tree of labelled nodes connected by `/` (child) or
//! `//` (descendant) axes, exactly the shape of a KOKO path/tree condition.
//! [`match_sentence`] evaluates a pattern directly against a parsed sentence
//! — no index — which defines the correct answer set every indexing scheme
//! is measured against.

use crate::types::{tree_stats, ParseLabel, PosTag, Sentence, Tid};

/// Axis connecting a pattern node to its parent pattern node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `/` — immediate child.
    Child,
    /// `//` — proper descendant at any depth.
    Descendant,
}

/// What a pattern node matches on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeLabel {
    Pl(ParseLabel),
    Pos(PosTag),
    Word(String),
    Wildcard,
}

impl NodeLabel {
    pub fn matches(&self, sentence: &Sentence, tid: Tid) -> bool {
        let t = &sentence.tokens[tid as usize];
        match self {
            NodeLabel::Pl(l) => t.label == *l,
            NodeLabel::Pos(p) => t.pos == *p,
            NodeLabel::Word(w) => t.lower == *w,
            NodeLabel::Wildcard => true,
        }
    }

    /// Render as it appears in a query path.
    pub fn render(&self) -> String {
        match self {
            NodeLabel::Pl(l) => l.name().to_string(),
            NodeLabel::Pos(p) => p.name().to_string(),
            NodeLabel::Word(w) => format!("\"{w}\""),
            NodeLabel::Wildcard => "*".to_string(),
        }
    }
}

/// One node of a tree pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PNode {
    /// Index of the parent pattern node; `None` for the pattern root.
    pub parent: Option<u32>,
    /// Axis from the parent (for the pattern root: from the sentence root /
    /// anywhere, controlled by [`TreePattern::root_anchored`]).
    pub axis: Axis,
    pub label: NodeLabel,
}

/// A tree-shaped structural pattern over dependency trees.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TreePattern {
    /// Nodes in topological order: `nodes[0]` is the pattern root and every
    /// node's parent precedes it.
    pub nodes: Vec<PNode>,
    /// When true, `nodes[0]` must match the sentence root itself.
    pub root_anchored: bool,
}

impl TreePattern {
    /// Build a linear path pattern from `(axis, label)` steps.
    pub fn path(root_anchored: bool, steps: Vec<(Axis, NodeLabel)>) -> TreePattern {
        let nodes = steps
            .into_iter()
            .enumerate()
            .map(|(i, (axis, label))| PNode {
                parent: if i == 0 { None } else { Some((i - 1) as u32) },
                axis,
                label,
            })
            .collect();
        TreePattern {
            nodes,
            root_anchored,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether the pattern is a simple path (each node has at most one
    /// child).
    pub fn is_path(&self) -> bool {
        let mut child_count = vec![0usize; self.nodes.len()];
        for n in &self.nodes {
            if let Some(p) = n.parent {
                child_count[p as usize] += 1;
            }
        }
        child_count.iter().all(|&c| c <= 1)
    }

    /// Whether any node is a wildcard.
    pub fn has_wildcard(&self) -> bool {
        self.nodes.iter().any(|n| n.label == NodeLabel::Wildcard)
    }

    /// Whether any node matches on a word.
    pub fn has_word(&self) -> bool {
        self.nodes
            .iter()
            .any(|n| matches!(n.label, NodeLabel::Word(_)))
    }

    /// Render a human-readable form, e.g. `/root/dobj//"delicious"`.
    pub fn render(&self) -> String {
        // For path patterns render the chain; for trees render node list.
        if self.is_path() {
            let mut out = String::new();
            for (i, n) in self.nodes.iter().enumerate() {
                let axis = if i == 0 && !self.root_anchored {
                    "//"
                } else {
                    match n.axis {
                        Axis::Child => "/",
                        Axis::Descendant => "//",
                    }
                };
                out.push_str(axis);
                out.push_str(&n.label.render());
            }
            out
        } else {
            let parts: Vec<String> = self
                .nodes
                .iter()
                .map(|n| {
                    format!(
                        "{}{}{}",
                        n.parent.map(|p| format!("{p}")).unwrap_or_default(),
                        match n.axis {
                            Axis::Child => "/",
                            Axis::Descendant => "//",
                        },
                        n.label.render()
                    )
                })
                .collect();
            format!("tree({})", parts.join(", "))
        }
    }
}

/// All token assignments of the full pattern in one sentence; each result
/// maps pattern-node index → token id. Used to define ground truth for the
/// index benchmarks.
pub fn match_sentence(pattern: &TreePattern, sentence: &Sentence) -> Vec<Vec<Tid>> {
    if pattern.is_empty() || sentence.is_empty() {
        return Vec::new();
    }
    let stats = tree_stats(sentence);
    let n = sentence.len() as Tid;
    let root = sentence.root().expect("parsed sentence has a root");

    // Candidates for the pattern root.
    let root_cands: Vec<Tid> = if pattern.root_anchored {
        if pattern.nodes[0].label.matches(sentence, root) {
            vec![root]
        } else {
            Vec::new()
        }
    } else {
        (0..n)
            .filter(|&t| pattern.nodes[0].label.matches(sentence, t))
            .collect()
    };

    let mut results = Vec::new();
    let mut assignment: Vec<Tid> = vec![0; pattern.len()];
    for rc in root_cands {
        assignment[0] = rc;
        assign(pattern, sentence, &stats, 1, &mut assignment, &mut results);
    }
    results
}

fn assign(
    pattern: &TreePattern,
    sentence: &Sentence,
    stats: &[crate::types::NodeStat],
    idx: usize,
    assignment: &mut Vec<Tid>,
    results: &mut Vec<Vec<Tid>>,
) {
    if idx == pattern.len() {
        results.push(assignment.clone());
        return;
    }
    let node = &pattern.nodes[idx];
    let parent_tok = assignment[node.parent.expect("non-root has parent") as usize];
    let p_stat = stats[parent_tok as usize];
    for t in p_stat.left..=p_stat.right {
        if t == parent_tok {
            continue;
        }
        let t_stat = stats[t as usize];
        // Containment check: t in parent's subtree.
        if t_stat.left < p_stat.left || t_stat.right > p_stat.right {
            continue;
        }
        let depth_ok = match node.axis {
            Axis::Child => sentence.tokens[t as usize].head == Some(parent_tok),
            Axis::Descendant => {
                t_stat.depth > p_stat.depth && is_descendant(sentence, t, parent_tok)
            }
        };
        if depth_ok && node.label.matches(sentence, t) {
            assignment[idx] = t;
            assign(pattern, sentence, stats, idx + 1, assignment, results);
        }
    }
}

fn is_descendant(sentence: &Sentence, mut t: Tid, anc: Tid) -> bool {
    while let Some(h) = sentence.tokens[t as usize].head {
        if h == anc {
            return true;
        }
        t = h;
    }
    false
}

/// Whether the pattern matches anywhere in the sentence.
pub fn matches(pattern: &TreePattern, sentence: &Sentence) -> bool {
    !match_sentence(pattern, sentence).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;

    fn fig1() -> Sentence {
        let p = Pipeline::new();
        p.parse_document(
            0,
            "I ate a chocolate ice cream , which was delicious , and also ate a pie .",
        )
        .sentences
        .remove(0)
    }

    #[test]
    fn path_root_dobj() {
        let s = fig1();
        let pat = TreePattern::path(
            true,
            vec![
                (Axis::Child, NodeLabel::Pl(ParseLabel::Root)),
                (Axis::Child, NodeLabel::Pl(ParseLabel::Dobj)),
            ],
        );
        let m = match_sentence(&pat, &s);
        assert_eq!(m.len(), 1);
        assert_eq!(s.tokens[m[0][1] as usize].text, "cream");
    }

    #[test]
    fn descendant_word() {
        let s = fig1();
        // //verb//"delicious"
        let pat = TreePattern::path(
            false,
            vec![
                (Axis::Descendant, NodeLabel::Pos(PosTag::Verb)),
                (Axis::Descendant, NodeLabel::Word("delicious".into())),
            ],
        );
        let m = match_sentence(&pat, &s);
        // Both "ate"(1) and "was"(8) dominate "delicious".
        let verbs: Vec<&str> = m
            .iter()
            .map(|a| s.tokens[a[0] as usize].text.as_str())
            .collect();
        assert!(verbs.contains(&"ate"));
        assert!(verbs.contains(&"was"));
        assert_eq!(m.len(), 2, "{verbs:?}");
    }

    #[test]
    fn child_axis_is_strict() {
        let s = fig1();
        // /root/"delicious" must NOT match (delicious is 3 levels down).
        let pat = TreePattern::path(
            true,
            vec![
                (Axis::Child, NodeLabel::Pl(ParseLabel::Root)),
                (Axis::Child, NodeLabel::Word("delicious".into())),
            ],
        );
        assert!(!matches(&pat, &s));
    }

    #[test]
    fn wildcard_steps() {
        let s = fig1();
        // /root/*/nn — nn under any child of root.
        let pat = TreePattern::path(
            true,
            vec![
                (Axis::Child, NodeLabel::Pl(ParseLabel::Root)),
                (Axis::Child, NodeLabel::Wildcard),
                (Axis::Child, NodeLabel::Pl(ParseLabel::Nn)),
            ],
        );
        let m = match_sentence(&pat, &s);
        let words: Vec<&str> = m
            .iter()
            .map(|a| s.tokens[a[2] as usize].text.as_str())
            .collect();
        assert!(words.contains(&"chocolate"), "{words:?}");
        assert!(words.contains(&"ice"), "{words:?}");
    }

    #[test]
    fn branching_tree_pattern() {
        let s = fig1();
        // root with both an nsubj child and a dobj child.
        let pat = TreePattern {
            nodes: vec![
                PNode {
                    parent: None,
                    axis: Axis::Child,
                    label: NodeLabel::Pl(ParseLabel::Root),
                },
                PNode {
                    parent: Some(0),
                    axis: Axis::Child,
                    label: NodeLabel::Pl(ParseLabel::Nsubj),
                },
                PNode {
                    parent: Some(0),
                    axis: Axis::Child,
                    label: NodeLabel::Pl(ParseLabel::Dobj),
                },
            ],
            root_anchored: true,
        };
        assert!(!pat.is_path());
        let m = match_sentence(&pat, &s);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn render_paths() {
        let pat = TreePattern::path(
            true,
            vec![
                (Axis::Child, NodeLabel::Pl(ParseLabel::Root)),
                (Axis::Child, NodeLabel::Pl(ParseLabel::Dobj)),
                (Axis::Descendant, NodeLabel::Word("delicious".into())),
            ],
        );
        assert_eq!(pat.render(), "/root/dobj//\"delicious\"");
    }

    #[test]
    fn empty_cases() {
        let s = fig1();
        let empty = TreePattern {
            nodes: vec![],
            root_anchored: false,
        };
        assert!(match_sentence(&empty, &s).is_empty());
    }
}
