//! Deterministic rule-based dependency parsing.
//!
//! A two-phase parser: (1) noun-phrase chunking with head finding and
//! NP-internal attachment (`det`, `amod`, `nn`, `num`, `poss`), then (2) a
//! left-to-right clause pass with a relative-clause stack that attaches
//! subjects, objects, prepositional phrases, coordination, and punctuation.
//!
//! Output trees are **projective** — every subtree covers a contiguous token
//! range — which the hierarchy/word indices rely on (their `u–v` posting
//! components assume contiguous subtree spans). A property test checks this
//! invariant over randomized inputs.
//!
//! The attachment conventions are validated token-by-token against the
//! paper's two worked examples (Figure 1 and Example 3.1) in the tests below.

use crate::types::{ParseLabel, PosTag, Sentence, Tid};

const WH_WORDS: [&str; 4] = ["which", "who", "whom", "that"];

/// Assign `head` and `label` to every token of a tagged sentence.
pub fn parse(sentence: &mut Sentence) {
    let n = sentence.tokens.len();
    if n == 0 {
        return;
    }
    let chunks = chunk(sentence);
    let mut p = ParseState {
        heads: vec![None; n],
        labels: vec![ParseLabel::Dep; n],
        root: None,
        frames: vec![Frame::default()],
        pending_cc: None,
        cc_after_np: false,
        pending_comma: None,
        deferred_punct: Vec::new(),
        last_was_np: false,
    };

    // NP-internal attachments first.
    for c in &chunks {
        if let Chunk::Np { start, end, head } = *c {
            for i in start..=end {
                if i == head {
                    continue;
                }
                let (h, l) = (head, np_internal_label(sentence.tokens[i].pos, i, head));
                p.attach(i, h, l);
            }
        }
    }

    // Clause pass.
    for ci in 0..chunks.len() {
        let next_is_verb = matches!(chunks.get(ci + 1), Some(Chunk::Verb(_)));
        let next_is_np = matches!(chunks.get(ci + 1), Some(Chunk::Np { .. }));
        let was_np = p.last_was_np;
        p.last_was_np = false;
        match chunks[ci] {
            Chunk::Np { head, .. } => {
                p.resolve_comma(false);
                p.on_np(head, next_is_verb);
                p.last_was_np = true;
            }
            Chunk::Verb(v) => {
                p.resolve_comma(false);
                p.on_verb(v);
            }
            Chunk::Adp(a) => {
                p.resolve_comma(false);
                p.on_adp(a, &sentence.tokens[a].lower, next_is_verb, was_np);
            }
            Chunk::Adv(x) => {
                p.resolve_comma(false);
                p.on_adv(x);
            }
            Chunk::Adj(x) => {
                p.resolve_comma(false);
                p.on_adj(x, next_is_np);
            }
            Chunk::Conj(c) => {
                p.resolve_comma(false);
                p.pending_cc = Some(c);
                p.cc_after_np = was_np;
            }
            Chunk::Wh(w) => {
                p.resolve_comma(true);
                p.on_wh(w);
            }
            Chunk::Punct(t) => p.on_punct(t, &sentence.tokens[t].text),
            Chunk::Other(x) => {
                p.resolve_comma(false);
                p.deferred_punct.push(x); // attach to root at finalize
            }
        }
    }

    p.finalize(n);

    for i in 0..n {
        sentence.tokens[i].head = p.heads[i].map(|h| h as Tid);
        sentence.tokens[i].label = p.labels[i];
    }
}

/// Label for a non-head token inside an NP chunk.
fn np_internal_label(pos: PosTag, idx: usize, head: usize) -> ParseLabel {
    match pos {
        PosTag::Det => ParseLabel::Det,
        PosTag::Adj => ParseLabel::Amod,
        PosTag::Num => ParseLabel::Num,
        PosTag::Pron => ParseLabel::Poss,
        PosTag::Noun | PosTag::Propn if idx < head => ParseLabel::Nn,
        _ => ParseLabel::Dep,
    }
}

#[derive(Debug, Clone, Copy)]
enum Chunk {
    /// Noun phrase `start..=end` with `head` (all token indices).
    Np {
        start: usize,
        end: usize,
        head: usize,
    },
    Verb(usize),
    Adp(usize),
    Adv(usize),
    Adj(usize),
    Conj(usize),
    Punct(usize),
    /// Relative pronoun starting a relative clause.
    Wh(usize),
    Other(usize),
}

/// Group tokens into chunks; NP material is DET/ADJ/NOUN/PROPN/NUM/PRON.
fn chunk(sentence: &Sentence) -> Vec<Chunk> {
    let toks = &sentence.tokens;
    let n = toks.len();
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        let t = &toks[i];
        let is_wh = t.pos == PosTag::Pron && WH_WORDS.contains(&t.lower.as_str());
        if is_wh {
            out.push(Chunk::Wh(i));
            i += 1;
            continue;
        }
        if is_np_material(t.pos) {
            let start = i;
            let mut nominal: Option<usize> = None;
            while i < n && is_np_material(toks[i].pos) {
                let is_whx =
                    toks[i].pos == PosTag::Pron && WH_WORDS.contains(&toks[i].lower.as_str());
                if is_whx {
                    break;
                }
                // The last NOUN/PROPN always wins; a PRON/NUM only seeds an
                // empty candidate.
                if matches!(toks[i].pos, PosTag::Noun | PosTag::Propn)
                    || (nominal.is_none() && matches!(toks[i].pos, PosTag::Pron | PosTag::Num))
                {
                    nominal = Some(i);
                }
                i += 1;
            }
            let end = i - 1;
            // Prefer the last NOUN/PROPN; else the last PRON/NUM seen.
            let head = (start..=end)
                .rev()
                .find(|&j| matches!(toks[j].pos, PosTag::Noun | PosTag::Propn))
                .or(nominal);
            match head {
                Some(h) => out.push(Chunk::Np {
                    start,
                    end,
                    head: h,
                }),
                None => {
                    // Run of DET/ADJ with no nominal: emit individually.
                    for (j, tok) in toks.iter().enumerate().take(end + 1).skip(start) {
                        out.push(match tok.pos {
                            PosTag::Adj => Chunk::Adj(j),
                            _ => Chunk::Other(j),
                        });
                    }
                }
            }
            continue;
        }
        out.push(match t.pos {
            PosTag::Verb => Chunk::Verb(i),
            PosTag::Adp => Chunk::Adp(i),
            PosTag::Adv => Chunk::Adv(i),
            PosTag::Adj => Chunk::Adj(i),
            PosTag::Conj => Chunk::Conj(i),
            PosTag::Punct => Chunk::Punct(i),
            _ => Chunk::Other(i),
        });
        i += 1;
    }
    out
}

fn is_np_material(pos: PosTag) -> bool {
    matches!(
        pos,
        PosTag::Det | PosTag::Adj | PosTag::Noun | PosTag::Propn | PosTag::Num | PosTag::Pron
    )
}

/// One clause on the stack (main clause at the bottom, relative clauses
/// above it).
#[derive(Debug, Default)]
struct Frame {
    /// Current verb for attachments (moves along xcomp/conj chains).
    verb: Option<usize>,
    /// Noun a relative clause modifies.
    attach_noun: Option<usize>,
    /// Unconsumed relative pronoun.
    wh: Option<usize>,
    pending_subj: Vec<usize>,
    pending_advs: Vec<usize>,
    pending_adjs: Vec<usize>,
    /// Infinitival/complementizer adpositions awaiting the next verb.
    pending_marks: Vec<usize>,
    /// Clause-initial prepositions awaiting the clause verb.
    pending_preps: Vec<usize>,
    /// Preposition awaiting its object.
    open_prep: Option<usize>,
    last_np: Option<usize>,
    has_obj: bool,
    is_rel: bool,
}

struct ParseState {
    heads: Vec<Option<usize>>,
    labels: Vec<ParseLabel>,
    root: Option<usize>,
    frames: Vec<Frame>,
    pending_cc: Option<usize>,
    /// Whether the pending conjunction directly followed an NP — required
    /// for noun coordination ("china *and* japan"), and what keeps
    /// adjective coordination ("delicious *and* salty pie") from producing
    /// a non-projective noun conjunct.
    cc_after_np: bool,
    pending_comma: Option<usize>,
    deferred_punct: Vec<usize>,
    /// Kind of the previously processed chunk.
    last_was_np: bool,
}

impl ParseState {
    fn top(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("frame stack never empty")
    }

    fn attach(&mut self, child: usize, head: usize, label: ParseLabel) {
        debug_assert_ne!(child, head, "self-loop attachment");
        self.heads[child] = Some(head);
        self.labels[child] = label;
    }

    /// A pending comma is attached once the following chunk is known: a
    /// comma introducing a relative clause hangs off the modified noun (this
    /// keeps the noun's subtree span contiguous through the clause —
    /// Example 3.2's `cream(0,5,2-9,1)` posting depends on it); any other
    /// comma hangs off the current clause verb.
    fn resolve_comma(&mut self, next_is_wh: bool) {
        let Some(c) = self.pending_comma.take() else {
            return;
        };
        let target = if next_is_wh {
            self.top().last_np
        } else {
            self.top().verb.or(self.root)
        };
        match target {
            Some(t) if t != c => self.attach(c, t, ParseLabel::P),
            _ => self.deferred_punct.push(c),
        }
    }

    fn on_np(&mut self, head: usize, next_is_verb: bool) {
        // Attach buffered pre-nominal adjectives that directly precede us.
        let adjs = std::mem::take(&mut self.top().pending_adjs);
        for a in adjs {
            self.attach(a, head, ParseLabel::Amod);
        }
        // Verbless clauses: buffered adverbs ("in very pie") modify this
        // NP — deferring them to the root would break the covering
        // preposition's subtree span.
        if self.top().verb.is_none() && self.pending_cc.is_none() {
            let advs = std::mem::take(&mut self.top().pending_advs);
            for a in advs {
                self.attach(a, head, ParseLabel::Advmod);
            }
        }
        if let Some(prep) = self.top().open_prep.take() {
            self.attach(head, prep, ParseLabel::Pobj);
        } else if self.pending_cc.is_some() && next_is_verb {
            // "and the couple had…": subject of a coordinated clause.
            self.top().pending_subj.push(head);
        } else if self.pending_cc.is_some() && self.cc_after_np && self.top().last_np.is_some() {
            // Noun coordination: "china and japan".
            let cc = self.pending_cc.take().expect("checked");
            let np = self.top().last_np.expect("checked");
            self.attach(cc, np, ParseLabel::Cc);
            self.attach(head, np, ParseLabel::Conj);
        } else {
            if let Some(cc) = self.pending_cc.take() {
                // Conjunction joining modifiers ("delicious and salty pie"):
                // hang the cc off the NP head to preserve projectivity.
                self.attach(cc, head, ParseLabel::Cc);
            }
            if self.top().verb.is_none() {
                self.top().pending_subj.push(head);
            } else {
                let v = self.top().verb.expect("checked above");
                if !self.top().has_obj {
                    self.attach(head, v, ParseLabel::Dobj);
                    self.top().has_obj = true;
                } else {
                    self.attach(head, v, ParseLabel::Dep);
                }
            }
        }
        self.top().last_np = Some(head);
    }

    fn on_verb(&mut self, v: usize) {
        if let (Some(cc), Some(cur)) = (self.pending_cc, self.top().verb) {
            // Verb coordination: "ate …, and also ate a pie".
            self.pending_cc = None;
            self.attach(cc, cur, ParseLabel::Cc);
            self.attach(v, cur, ParseLabel::Conj);
            self.start_verb(v);
            return;
        }
        self.pending_cc = None;
        if self.top().verb.is_none() {
            let (is_rel, attach_noun) = {
                let f = self.top();
                (f.is_rel, f.attach_noun)
            };
            if is_rel {
                match attach_noun {
                    Some(noun) => self.attach(v, noun, ParseLabel::Rcmod),
                    None => {
                        if let Some(r) = self.root {
                            self.attach(v, r, ParseLabel::Dep);
                        }
                    }
                }
            } else if self.root.is_none() {
                self.root = Some(v);
                self.labels[v] = ParseLabel::Root;
            } else {
                let r = self.root.expect("checked");
                self.attach(v, r, ParseLabel::Dep);
            }
            self.start_verb(v);
        } else {
            // Verb chain: "had been called", "is prepared".
            let cur = self.top().verb.expect("checked");
            self.attach(v, cur, ParseLabel::Xcomp);
            self.top().verb = Some(v);
            self.top().has_obj = false;
            // A dangling preposition before a verb has no object; the next
            // NP belongs to the new verb.
            self.top().open_prep = None;
            // Buffered marks/adverbs ("to", "also") belong to the new verb;
            // leaving them pending would strand them outside the chain's
            // subtree span.
            let marks = std::mem::take(&mut self.top().pending_marks);
            for m in marks {
                self.attach(m, v, ParseLabel::Mark);
            }
            let advs = std::mem::take(&mut self.top().pending_advs);
            for a in advs {
                self.attach(a, v, ParseLabel::Advmod);
            }
        }
    }

    /// Bookkeeping when a clause gains its (possibly new) current verb.
    fn start_verb(&mut self, v: usize) {
        let subj = std::mem::take(&mut self.top().pending_subj);
        let had_subj = !subj.is_empty();
        if let Some((&last, earlier)) = subj.split_last() {
            self.attach(last, v, ParseLabel::Nsubj);
            for &e in earlier {
                self.attach(e, v, ParseLabel::Dep);
            }
        }
        if let Some(w) = self.top().wh.take() {
            // "which was delicious" → wh is the subject; "that she bought" →
            // the overt subject fills nsubj, the wh is the fronted object.
            let label = if had_subj {
                ParseLabel::Dobj
            } else {
                ParseLabel::Nsubj
            };
            self.attach(w, v, label);
        }
        let advs = std::mem::take(&mut self.top().pending_advs);
        for a in advs {
            self.attach(a, v, ParseLabel::Advmod);
        }
        let marks = std::mem::take(&mut self.top().pending_marks);
        for m in marks {
            self.attach(m, v, ParseLabel::Mark);
        }
        let preps = std::mem::take(&mut self.top().pending_preps);
        for pp in preps {
            self.attach(pp, v, ParseLabel::Prep);
        }
        self.top().verb = Some(v);
        self.top().has_obj = false;
        self.top().open_prep = None;
    }

    fn on_adp(&mut self, a: usize, lower: &str, next_is_verb: bool, after_np: bool) {
        if next_is_verb {
            // Infinitival / complementizer "to eat": mark on the next verb.
            self.top().pending_marks.push(a);
            return;
        }
        // Buffered adverbs modify the preposition itself ("right after" in
        // real text) — any later target would cross this arc.
        let advs = std::mem::take(&mut self.top().pending_advs);
        for x in advs {
            self.attach(x, a, ParseLabel::Advmod);
        }
        // "of" modifies the noun it directly follows ("type of chocolate");
        // anywhere else it behaves like an ordinary preposition, otherwise
        // its arc would cross an intervening verb.
        let target = if lower == "of" && after_np {
            self.top().last_np.or(self.top().verb)
        } else {
            self.top().verb.or(self.top().last_np)
        };
        match target {
            Some(t) => self.attach(a, t, ParseLabel::Prep),
            None => self.top().pending_preps.push(a),
        }
        self.top().open_prep = Some(a);
    }

    fn on_adv(&mut self, x: usize) {
        if self.pending_cc.is_some() || self.top().verb.is_none() {
            self.top().pending_advs.push(x);
        } else {
            let v = self.top().verb.expect("checked");
            self.attach(x, v, ParseLabel::Advmod);
        }
    }

    fn on_adj(&mut self, x: usize, next_is_np: bool) {
        if next_is_np {
            self.top().pending_adjs.push(x);
        } else if let Some(v) = self.top().verb {
            self.attach(x, v, ParseLabel::Acomp);
        } else if let Some(np) = self.top().last_np {
            self.attach(x, np, ParseLabel::Amod);
        } else {
            self.top().pending_adjs.push(x);
        }
    }

    fn on_wh(&mut self, w: usize) {
        let noun = self.top().last_np;
        self.frames.push(Frame {
            is_rel: true,
            attach_noun: noun,
            wh: Some(w),
            ..Frame::default()
        });
    }

    fn on_punct(&mut self, t: usize, text: &str) {
        match text {
            "," => {
                if self.frames.len() > 1 && self.top().is_rel {
                    self.pop_frame();
                }
                // Attachment deferred until the next chunk is known.
                self.resolve_comma(false); // flush an older pending comma
                self.pending_comma = Some(t);
            }
            "." | "!" | "?" => {
                self.resolve_comma(false);
                while self.frames.len() > 1 {
                    self.pop_frame();
                }
                self.deferred_punct.push(t);
            }
            _ => {
                self.resolve_comma(false);
                self.deferred_punct.push(t);
            }
        }
    }

    /// Close a relative-clause frame, attaching any leftovers. Fallback
    /// targets are ordered to preserve subtree contiguity: the clause's own
    /// verb, then the enclosing clause verb, then the root — never the
    /// modified noun, whose span would otherwise skip over the verb
    /// ("Anna called which .").
    fn pop_frame(&mut self) {
        let frame = self.frames.pop().expect("pop with >1 frames");
        let fallback = frame
            .verb
            .or_else(|| self.top().verb)
            .or(self.root)
            .or(frame.attach_noun);
        let mut leftovers = Vec::new();
        leftovers.extend(frame.wh);
        leftovers.extend(frame.pending_subj);
        leftovers.extend(frame.pending_advs);
        leftovers.extend(frame.pending_adjs);
        leftovers.extend(frame.pending_marks);
        leftovers.extend(frame.pending_preps);
        if let Some(f) = fallback {
            for t in leftovers {
                if t != f && self.heads[t].is_none() {
                    self.attach(t, f, ParseLabel::Dep);
                }
            }
        }
    }

    fn finalize(&mut self, n: usize) {
        self.resolve_comma(false);
        while self.frames.len() > 1 {
            self.pop_frame();
        }
        // Root fallback: first verb was handled already; otherwise the first
        // pending subject / NP head; otherwise token 0.
        if self.root.is_none() {
            let frame = self.frames.last().expect("main frame");
            let candidate = frame
                .pending_subj
                .first()
                .copied()
                .or(frame.last_np)
                .unwrap_or(0);
            self.root = Some(candidate);
            self.labels[candidate] = ParseLabel::Root;
            self.heads[candidate] = None;
        }
        let root = self.root.expect("set above");
        for t in std::mem::take(&mut self.deferred_punct) {
            if t != root && self.heads[t].is_none() {
                self.attach(t, root, ParseLabel::P);
            }
        }
        for i in 0..n {
            if i != root && self.heads[i].is_none() {
                let label = match self.labels[i] {
                    ParseLabel::Mark => ParseLabel::Mark,
                    _ => ParseLabel::Dep,
                };
                // Avoid creating a cycle: attach to root only if root is not
                // a descendant of i (can't happen: i had no head, so i's
                // subtree can't contain the root which has its own chain).
                self.attach(i, root, label);
            }
        }
        self.heads[root] = None;
        self.labels[root] = ParseLabel::Root;
        self.projectivize(n);
    }

    /// Safety net for degenerate inputs: repeatedly *lift* non-projective
    /// edges (re-attach the child to its grandparent) until every subtree
    /// covers a contiguous token range. Natural-language parses from the
    /// rules above are already projective, so this is a no-op for them;
    /// word-salad stress inputs converge because every lift reduces the
    /// child's depth. The hierarchy/word indices rely on this invariant.
    fn projectivize(&mut self, n: usize) {
        fn descends(heads: &[Option<usize>], mut j: usize, anc: usize) -> bool {
            let mut steps = 0;
            while let Some(p) = heads[j] {
                if p == anc {
                    return true;
                }
                j = p;
                steps += 1;
                if steps > heads.len() {
                    return false;
                }
            }
            false
        }
        loop {
            let mut lifted = false;
            'scan: for c in 0..n {
                let Some(h) = self.heads[c] else { continue };
                let (lo, hi) = (h.min(c), h.max(c));
                for j in lo + 1..hi {
                    if !descends(&self.heads, j, h) {
                        // h cannot be the root (everything descends from
                        // it), so it has a grandparent to lift to.
                        let g = self.heads[h].expect("non-root head");
                        self.heads[c] = Some(g);
                        self.labels[c] = ParseLabel::Dep;
                        lifted = true;
                        break 'scan;
                    }
                }
            }
            if !lifted {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::Lexicon;
    use crate::ner::Ner;
    use crate::tagger;
    use crate::types::{tree_stats, Token};

    fn parse_str(text: &str) -> Sentence {
        let lex = Lexicon::new();
        let toks: Vec<String> = text.split_whitespace().map(str::to_string).collect();
        let tags = tagger::tag(&toks, &lex);
        let mut s = Sentence::default();
        for (t, tag) in toks.iter().zip(tags) {
            let mut token = Token::new(t.clone());
            token.pos = tag;
            s.tokens.push(token);
        }
        Ner::new().annotate(&mut s);
        parse(&mut s);
        s
    }

    fn dep(s: &Sentence, child: usize) -> (Option<usize>, ParseLabel) {
        (
            s.tokens[child].head.map(|h| h as usize),
            s.tokens[child].label,
        )
    }

    fn assert_projective(s: &Sentence) {
        let stats = tree_stats(s);
        for (i, st) in stats.iter().enumerate() {
            // Count of nodes whose span lies inside [left, right] must equal
            // the subtree size; with contiguous spans, the subtree covers
            // exactly right-left+1 tokens.
            let mut size = 0;
            for j in 0..stats.len() {
                let mut k = Some(j);
                while let Some(cur) = k {
                    if cur == i {
                        size += 1;
                        break;
                    }
                    k = s.tokens[cur].head.map(|h| h as usize);
                }
            }
            assert_eq!(
                size,
                (st.right - st.left + 1) as usize,
                "subtree of token {i} ({}) not contiguous in {:?}",
                s.tokens[i].text,
                s.tokens.iter().map(|t| t.text.as_str()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn figure1_parse() {
        // "I ate a chocolate ice cream , which was delicious , and also ate a pie ."
        //  0 1   2 3         4   5     6 7     8   9         10 11  12   13  14 15 16
        let s =
            parse_str("I ate a chocolate ice cream , which was delicious , and also ate a pie .");
        assert_eq!(dep(&s, 0), (Some(1), ParseLabel::Nsubj));
        assert_eq!(dep(&s, 1), (None, ParseLabel::Root));
        assert_eq!(dep(&s, 2), (Some(5), ParseLabel::Det));
        assert_eq!(dep(&s, 3), (Some(5), ParseLabel::Nn));
        assert_eq!(dep(&s, 4), (Some(5), ParseLabel::Nn));
        assert_eq!(dep(&s, 5), (Some(1), ParseLabel::Dobj));
        assert_eq!(dep(&s, 7), (Some(8), ParseLabel::Nsubj));
        assert_eq!(dep(&s, 8), (Some(5), ParseLabel::Rcmod));
        assert_eq!(dep(&s, 9), (Some(8), ParseLabel::Acomp));
        assert_eq!(dep(&s, 11), (Some(1), ParseLabel::Cc));
        assert_eq!(dep(&s, 12), (Some(13), ParseLabel::Advmod));
        assert_eq!(dep(&s, 13), (Some(1), ParseLabel::Conj));
        assert_eq!(dep(&s, 14), (Some(15), ParseLabel::Det));
        assert_eq!(dep(&s, 15), (Some(13), ParseLabel::Dobj));
        assert_eq!(dep(&s, 16), (Some(1), ParseLabel::P));
        assert_projective(&s);

        // Example 3.2's posting quintuples depend on these subtree spans.
        let st = tree_stats(&s);
        assert_eq!((st[1].left, st[1].right, st[1].depth), (0, 16, 0)); // ate(0,1,0-16,0)
        assert_eq!((st[5].left, st[5].right, st[5].depth), (2, 9, 1)); // cream(0,5,2-9,1)
        assert_eq!((st[9].left, st[9].right, st[9].depth), (9, 9, 3)); // delicious(0,9,9-9,3)
        assert_eq!((st[0].left, st[0].right, st[0].depth), (0, 0, 1)); // I(0,0,0-0,1)
    }

    #[test]
    fn example31_parse() {
        // "Anna ate some delicious cheesecake that she bought at a grocery store ."
        //  0    1   2    3         4          5    6   7      8  9 10      11    12
        let s =
            parse_str("Anna ate some delicious cheesecake that she bought at a grocery store .");
        assert_eq!(dep(&s, 0), (Some(1), ParseLabel::Nsubj));
        assert_eq!(dep(&s, 1), (None, ParseLabel::Root));
        assert_eq!(dep(&s, 2), (Some(4), ParseLabel::Det));
        assert_eq!(dep(&s, 3), (Some(4), ParseLabel::Amod));
        assert_eq!(dep(&s, 4), (Some(1), ParseLabel::Dobj));
        assert_eq!(dep(&s, 5), (Some(7), ParseLabel::Dobj)); // fronted object "that"
        assert_eq!(dep(&s, 6), (Some(7), ParseLabel::Nsubj));
        assert_eq!(dep(&s, 7), (Some(4), ParseLabel::Rcmod));
        assert_eq!(dep(&s, 8), (Some(7), ParseLabel::Prep));
        assert_eq!(dep(&s, 9), (Some(11), ParseLabel::Det));
        assert_eq!(dep(&s, 10), (Some(11), ParseLabel::Nn));
        assert_eq!(dep(&s, 11), (Some(8), ParseLabel::Pobj));
        assert_projective(&s);

        // Example 3.2: ate(1,1,0-12,0), delicious(1,3,3-3,2), "ate" root.
        let st = tree_stats(&s);
        assert_eq!((st[1].left, st[1].right, st[1].depth), (0, 12, 0));
        assert_eq!((st[3].left, st[3].right, st[3].depth), (3, 3, 2));
        assert_eq!((st[4].left, st[4].right, st[4].depth), (2, 11, 1));
    }

    #[test]
    fn verbless_sentence_gets_np_root() {
        let s = parse_str("cities in asian countries such as China and Japan .");
        assert_eq!(dep(&s, 0), (None, ParseLabel::Root));
        assert_eq!(dep(&s, 1), (Some(0), ParseLabel::Prep));
        assert_eq!(dep(&s, 3), (Some(1), ParseLabel::Pobj));
        assert_projective(&s);
    }

    #[test]
    fn verb_chain_and_title_example() {
        // "Cyd Charisse had been called Sid for years ."
        let s = parse_str("Cyd Charisse had been called Sid for years .");
        assert_eq!(dep(&s, 2), (None, ParseLabel::Root)); // had
        assert_eq!(dep(&s, 3), (Some(2), ParseLabel::Xcomp)); // been
        assert_eq!(dep(&s, 4), (Some(3), ParseLabel::Xcomp)); // called
        assert_eq!(dep(&s, 5), (Some(4), ParseLabel::Dobj)); // Sid under called
        assert_eq!(dep(&s, 6), (Some(4), ParseLabel::Prep)); // for under called
        assert_projective(&s);
        // The Title query binds p = called/propn and b = p.subtree; the
        // subtree of "Sid" must be just "Sid".
        let st = tree_stats(&s);
        assert_eq!((st[5].left, st[5].right), (5, 5));
    }

    #[test]
    fn coordinated_clause() {
        // "He was married in London , and the couple had a daughter ."
        //  0  1   2       3  4      5 6   7   8      9   10 11      12
        let s = parse_str("He was married in London , and the couple had a daughter .");
        let had = 9;
        assert_eq!(dep(&s, 5).1, ParseLabel::P);
        assert_eq!(dep(&s, 6), (Some(2), ParseLabel::Cc)); // and → married (current verb)
        assert_eq!(dep(&s, had), (Some(2), ParseLabel::Conj));
        assert_eq!(dep(&s, 8), (Some(had), ParseLabel::Nsubj)); // couple
        assert_projective(&s);
    }

    #[test]
    fn chocolate_query_shape() {
        let s = parse_str("Baking chocolate is a type of chocolate that is prepared for baking .");
        // v = is(2); s = v/nsubj = chocolate(1); o = v//pobj chocolate(6).
        assert_eq!(dep(&s, 1), (Some(2), ParseLabel::Nsubj));
        assert_eq!(dep(&s, 2), (None, ParseLabel::Root));
        assert_eq!(dep(&s, 4), (Some(2), ParseLabel::Dobj)); // type
        assert_eq!(dep(&s, 5), (Some(4), ParseLabel::Prep)); // of → type
        assert_eq!(dep(&s, 6), (Some(5), ParseLabel::Pobj)); // chocolate
        assert_eq!(dep(&s, 8), (Some(6), ParseLabel::Rcmod)); // is (rel)
        assert_projective(&s);
    }

    #[test]
    fn born_date_shape() {
        let s = parse_str("The couple had a daughter Vera born in 1911 .");
        let born = 6;
        assert_eq!(s.tokens[born].text, "born");
        assert_eq!(dep(&s, born).1, ParseLabel::Xcomp);
        assert_eq!(dep(&s, 7), (Some(born), ParseLabel::Prep));
        assert_eq!(dep(&s, 8), (Some(7), ParseLabel::Pobj));
        assert_projective(&s);
    }

    #[test]
    fn subordinate_clause_via_conj() {
        // "I was happy when I found my old book ."
        //  0 1   2     3    4 5     6  7   8    9
        let s = parse_str("I was happy when I found my old book .");
        let found = 5;
        assert_eq!(dep(&s, 2), (Some(1), ParseLabel::Acomp)); // happy
        assert_eq!(dep(&s, 3), (Some(1), ParseLabel::Cc)); // when → was
        assert_eq!(dep(&s, found), (Some(1), ParseLabel::Conj));
        assert_eq!(dep(&s, 4), (Some(found), ParseLabel::Nsubj));
        assert_eq!(dep(&s, 8), (Some(found), ParseLabel::Dobj)); // book
        assert_projective(&s);
    }

    #[test]
    fn single_token_sentence() {
        let s = parse_str("Yes");
        assert_eq!(dep(&s, 0), (None, ParseLabel::Root));
    }

    #[test]
    fn every_token_reaches_root() {
        for text in [
            "The new cafe on Mission St. has the best cup of espresso .",
            "Portland produces and sells the best coffee .",
            "go Falcons !",
            "at Riverside Arena tonight",
            "I ate a delicious and salty pie with peanuts .",
        ] {
            let s = parse_str(text);
            let root = s.root().expect("root exists");
            for i in 0..s.len() {
                let mut cur = i as Tid;
                let mut steps = 0;
                while let Some(h) = s.tokens[cur as usize].head {
                    cur = h;
                    steps += 1;
                    assert!(steps <= s.len(), "cycle at token {i} in {text:?}");
                }
                assert_eq!(cur, root, "token {i} does not reach root in {text:?}");
            }
            assert_projective(&s);
        }
    }
}
