//! Named-entity recognition: gazetteer phrase matching, person-name and date
//! patterns, proper-noun runs, and common-noun compounds (food/location/
//! facility heads), producing the typed mentions of Figure 1.
//!
//! Mentions never overlap; earlier (and longer) matches win.

use crate::gazetteer as gaz;
use crate::types::{EntityMention, EntityType, PosTag, Sentence, Tid};
use std::collections::HashMap;

/// Compiled matcher tables; build once, reuse per corpus.
#[derive(Debug, Clone)]
pub struct Ner {
    /// first lower word → list of (full lower phrase tokens, type).
    phrases: HashMap<String, Vec<(Vec<String>, EntityType)>>,
    first_names: HashMap<String, ()>,
    last_names: HashMap<String, ()>,
    months: HashMap<String, ()>,
    food: HashMap<String, ()>,
    location_nouns: HashMap<String, ()>,
    facility_nouns: HashMap<String, ()>,
}

impl Default for Ner {
    fn default() -> Self {
        Self::new()
    }
}

fn word_set(list: &[&str]) -> HashMap<String, ()> {
    list.iter().map(|w| (w.to_lowercase(), ())).collect()
}

impl Ner {
    pub fn new() -> Ner {
        let mut phrases: HashMap<String, Vec<(Vec<String>, EntityType)>> = HashMap::new();
        let mut add = |name: &str, etype: EntityType| {
            let toks: Vec<String> = name.split_whitespace().map(|w| w.to_lowercase()).collect();
            let first = toks[0].clone();
            phrases.entry(first).or_default().push((toks, etype));
        };
        for f in gaz::FACILITY_NAMES {
            add(f, EntityType::Facility);
        }
        for o in gaz::ORGS {
            add(o, EntityType::Org);
        }
        for t in gaz::TEAMS {
            add(t, EntityType::Org);
        }
        for c in gaz::CITIES {
            add(c, EntityType::Gpe);
        }
        for c in gaz::COUNTRIES {
            add(c, EntityType::Gpe);
        }
        // Espresso brands are distractor `Other` entities the cafe query must
        // exclude by pattern, so NER must surface them as candidates.
        for b in gaz::ESPRESSO_BRANDS {
            add(b, EntityType::Other);
        }
        // Longest phrase first within a bucket.
        for v in phrases.values_mut() {
            v.sort_by_key(|(toks, _)| std::cmp::Reverse(toks.len()));
        }
        Ner {
            phrases,
            first_names: word_set(gaz::FIRST_NAMES),
            last_names: word_set(gaz::LAST_NAMES),
            months: word_set(gaz::MONTHS),
            food: word_set(gaz::FOOD_NOUNS),
            location_nouns: word_set(gaz::LOCATION_NOUNS),
            facility_nouns: word_set(gaz::FACILITY_NOUNS),
        }
    }

    /// Detect mentions in a tagged sentence and store them in
    /// `sentence.entities` (sorted by start, non-overlapping).
    pub fn annotate(&self, sentence: &mut Sentence) {
        let n = sentence.tokens.len();
        let mut taken = vec![false; n];
        let mut mentions: Vec<EntityMention> = Vec::new();
        let claim = |mentions: &mut Vec<EntityMention>,
                     taken: &mut Vec<bool>,
                     start: usize,
                     end: usize,
                     etype: EntityType| {
            if taken[start..=end].iter().any(|&t| t) {
                return false;
            }
            for t in &mut taken[start..=end] {
                *t = true;
            }
            mentions.push(EntityMention {
                start: start as Tid,
                end: end as Tid,
                etype,
            });
            true
        };

        // 1. Dates: "1 December 1900", "December 1900", "in 1911", "1911".
        let mut i = 0;
        while i < n {
            if let Some(end) = self.date_at(sentence, i) {
                claim(&mut mentions, &mut taken, i, end, EntityType::Date);
                i = end + 1;
            } else {
                i += 1;
            }
        }

        // 2. Gazetteer phrases (longest-first).
        let lowers: Vec<&str> = sentence.tokens.iter().map(|t| t.lower.as_str()).collect();
        let mut i = 0;
        while i < n {
            let mut advanced = false;
            if let Some(cands) = self.phrases.get(lowers[i]) {
                for (toks, etype) in cands {
                    let end = i + toks.len() - 1;
                    if end < n
                        && toks.iter().zip(&lowers[i..=end]).all(|(a, b)| a == b)
                        && claim(&mut mentions, &mut taken, i, end, *etype)
                    {
                        i = end + 1;
                        advanced = true;
                        break;
                    }
                }
            }
            if !advanced {
                i += 1;
            }
        }

        // 3. Person names: FIRST [LAST] over capitalized tokens.
        let mut i = 0;
        while i < n {
            let t = &sentence.tokens[i];
            let capitalized = t.text.chars().next().is_some_and(|c| c.is_uppercase());
            if capitalized && self.first_names.contains_key(t.lower.as_str()) && !taken[i] {
                let mut end = i;
                // Extend over middle/last capitalized name parts.
                while end + 1 < n && !taken[end + 1] {
                    let nx = &sentence.tokens[end + 1];
                    let nx_cap = nx.text.chars().next().is_some_and(|c| c.is_uppercase());
                    if nx_cap
                        && (self.last_names.contains_key(nx.lower.as_str())
                            || self.first_names.contains_key(nx.lower.as_str()))
                    {
                        end += 1;
                    } else {
                        break;
                    }
                }
                claim(&mut mentions, &mut taken, i, end, EntityType::Person);
                i = end + 1;
            } else {
                i += 1;
            }
        }

        // 4. Remaining maximal PROPN runs → Other (this is where novel names
        //    such as cafes land).
        let mut i = 0;
        while i < n {
            if sentence.tokens[i].pos == PosTag::Propn && !taken[i] {
                let start = i;
                while i + 1 < n && sentence.tokens[i + 1].pos == PosTag::Propn && !taken[i + 1] {
                    i += 1;
                }
                claim(&mut mentions, &mut taken, start, i, EntityType::Other);
            }
            i += 1;
        }

        // 5. Common-noun compounds classified by their head noun. The span is
        //    the contiguous NOUN run ending at the head ("chocolate ice
        //    cream"), excluding adjectives (Example 3.1: "delicious" is not
        //    part of the "cheesecake" entity).
        let mut i = 0;
        while i < n {
            if sentence.tokens[i].pos == PosTag::Noun && !taken[i] {
                let start = i;
                while i + 1 < n && sentence.tokens[i + 1].pos == PosTag::Noun && !taken[i + 1] {
                    i += 1;
                }
                let head = &sentence.tokens[i].lower;
                let etype = if self.food.contains_key(head.as_str()) {
                    Some(EntityType::Other)
                } else if self.location_nouns.contains_key(head.as_str()) {
                    Some(EntityType::Location)
                } else if self.facility_nouns.contains_key(head.as_str()) {
                    Some(EntityType::Facility)
                } else {
                    None
                };
                if let Some(etype) = etype {
                    claim(&mut mentions, &mut taken, start, i, etype);
                }
            }
            i += 1;
        }

        mentions.sort_by_key(|m| (m.start, m.end));
        sentence.entities = mentions;
    }

    /// Date pattern starting at `i`; returns the inclusive end index.
    fn date_at(&self, sentence: &Sentence, i: usize) -> Option<usize> {
        let toks = &sentence.tokens;
        let n = toks.len();
        let is_year = |j: usize| {
            j < n
                && toks[j].pos == PosTag::Num
                && toks[j].text.len() == 4
                && toks[j]
                    .text
                    .parse::<u32>()
                    .is_ok_and(|y| (1500..2200).contains(&y))
        };
        let is_day = |j: usize| {
            j < n
                && toks[j].pos == PosTag::Num
                && toks[j]
                    .text
                    .parse::<u32>()
                    .is_ok_and(|d| (1..=31).contains(&d))
        };
        let is_month = |j: usize| j < n && self.months.contains_key(toks[j].lower.as_str());

        // "1 December 1900"
        if is_day(i) && is_month(i + 1) && is_year(i + 2) {
            return Some(i + 2);
        }
        // "December 1900"
        if is_month(i) && is_year(i + 1) {
            return Some(i + 1);
        }
        // bare year "1911"
        if is_year(i) {
            return Some(i);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::Lexicon;
    use crate::tagger;
    use crate::types::Token;

    fn annotated(text: &str) -> Sentence {
        let lex = Lexicon::new();
        let toks: Vec<String> = text.split_whitespace().map(str::to_string).collect();
        let tags = tagger::tag(&toks, &lex);
        let mut s = Sentence::default();
        for (t, tag) in toks.iter().zip(tags) {
            let mut token = Token::new(t.clone());
            token.pos = tag;
            s.tokens.push(token);
        }
        Ner::new().annotate(&mut s);
        s
    }

    fn mention_strs(s: &Sentence) -> Vec<(String, EntityType)> {
        s.entities
            .iter()
            .map(|m| (s.mention_text(m), m.etype))
            .collect()
    }

    #[test]
    fn example31_entities() {
        // Paper Example 3.1: cheesecake OTHER, grocery store LOCATION, Anna
        // PERSON.
        let s =
            annotated("Anna ate some delicious cheesecake that she bought at a grocery store .");
        let ms = mention_strs(&s);
        assert!(ms.contains(&("Anna".into(), EntityType::Person)), "{ms:?}");
        assert!(
            ms.contains(&("cheesecake".into(), EntityType::Other)),
            "{ms:?}"
        );
        assert!(
            ms.contains(&("grocery store".into(), EntityType::Location)),
            "{ms:?}"
        );
    }

    #[test]
    fn figure1_food_compound() {
        let s =
            annotated("I ate a chocolate ice cream , which was delicious , and also ate a pie .");
        let ms = mention_strs(&s);
        assert!(
            ms.contains(&("chocolate ice cream".into(), EntityType::Other)),
            "{ms:?}"
        );
        assert!(ms.contains(&("pie".into(), EntityType::Other)), "{ms:?}");
    }

    #[test]
    fn gpe_phrases() {
        let s = annotated("cities in asian countries such as China and Japan .");
        let ms = mention_strs(&s);
        assert!(ms.contains(&("China".into(), EntityType::Gpe)), "{ms:?}");
        assert!(ms.contains(&("Japan".into(), EntityType::Gpe)), "{ms:?}");
    }

    #[test]
    fn person_full_name_and_date() {
        let s = annotated("He was married to Alys Thomas on 1 December 1900 in London .");
        let ms = mention_strs(&s);
        assert!(
            ms.contains(&("Alys Thomas".into(), EntityType::Person)),
            "{ms:?}"
        );
        assert!(
            ms.contains(&("1 December 1900".into(), EntityType::Date)),
            "{ms:?}"
        );
        assert!(ms.contains(&("London".into(), EntityType::Gpe)), "{ms:?}");
    }

    #[test]
    fn propn_run_becomes_other() {
        let s = annotated("We visited Copper Kettle Roasters yesterday .");
        let ms = mention_strs(&s);
        assert!(
            ms.contains(&("Copper Kettle Roasters".into(), EntityType::Other)),
            "{ms:?}"
        );
    }

    #[test]
    fn brands_are_entities() {
        let s = annotated("They bought a La Marzocco for the bar .");
        let ms = mention_strs(&s);
        assert!(
            ms.contains(&("La Marzocco".into(), EntityType::Other)),
            "{ms:?}"
        );
    }

    #[test]
    fn facility_names() {
        let s = annotated("The match at Riverside Arena starts soon .");
        let ms = mention_strs(&s);
        assert!(
            ms.contains(&("Riverside Arena".into(), EntityType::Facility)),
            "{ms:?}"
        );
    }

    #[test]
    fn teams_are_orgs() {
        let s = annotated("go Falcons !");
        let ms = mention_strs(&s);
        assert!(ms.contains(&("Falcons".into(), EntityType::Org)), "{ms:?}");
    }

    #[test]
    fn bare_year_is_date() {
        let s = annotated("a daughter born in 1911 .");
        let ms = mention_strs(&s);
        assert!(ms.contains(&("1911".into(), EntityType::Date)), "{ms:?}");
    }

    #[test]
    fn mentions_do_not_overlap() {
        let s = annotated("Anna Charisse visited Copper Kettle Cafe in Tokyo in May 1999 .");
        let mut last_end: i64 = -1;
        for m in &s.entities {
            assert!(m.start as i64 > last_end, "overlap: {:?}", s.entities);
            last_end = m.end as i64;
        }
    }
}
