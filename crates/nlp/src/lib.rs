//! `koko-nlp` — the NLP preprocessing substrate for the KOKO reproduction.
//!
//! The KOKO paper (Wang et al., VLDB 2018) preprocesses every document with a
//! dependency parser (spaCy or Google Cloud NL) producing, per token: a POS
//! tag, a dependency parse label, a head reference, and per-sentence entity
//! mentions (Figure 1). This crate provides a deterministic, from-scratch
//! equivalent plus the shared data model used by every other crate:
//!
//! * [`types`] — [`Token`], [`Sentence`], [`Document`], [`Corpus`], the
//!   posting quintuple [`Posting`], and subtree statistics [`tree_stats`].
//! * [`tokenize`] / [`tagger`] / [`ner`] / [`depparse`] — the pipeline
//!   stages, composed by [`Pipeline`].
//! * [`mod@decompose`] — canonical-clause segmentation (§4.4.1(b)).
//! * [`pattern`] — tree patterns and the direct (index-free) matcher that
//!   defines ground truth for the §6.2 index benchmarks.
//! * [`gazetteer`] / [`lexicon`] — the closed word lists shared with the
//!   corpus generators and the embedding builder.
//!
//! # Quick example
//!
//! ```
//! use koko_nlp::Pipeline;
//!
//! let pipeline = Pipeline::new();
//! let doc = pipeline.parse_document(0, "Anna ate some delicious cheesecake.");
//! let sentence = &doc.sentences[0];
//! assert_eq!(sentence.tokens[1].text, "ate");
//! assert_eq!(sentence.root(), Some(1)); // "ate" heads the tree
//! ```

pub mod decompose;
pub mod depparse;
pub mod gazetteer;
pub mod lexicon;
pub mod ner;
pub mod pattern;
pub mod pipeline;
pub mod tagger;
pub mod tokenize;
pub mod types;

pub use decompose::{decompose, Clause};
pub use lexicon::Lexicon;
pub use ner::Ner;
pub use pattern::{match_sentence, Axis, NodeLabel, PNode, TreePattern};
pub use pipeline::Pipeline;
pub use types::{
    tree_stats, Corpus, Document, EntityMention, EntityPosting, EntityType, NodeStat, ParseLabel,
    PosTag, Posting, Sentence, Sid, Tid, Token,
};
