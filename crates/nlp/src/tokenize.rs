//! Tokenization and sentence splitting.
//!
//! Deterministic rules adequate for the synthetic corpora and the paper's
//! running examples: whitespace splitting, punctuation detachment with an
//! abbreviation list (`St.`, `a.m.` …), and sentence boundaries on `.`, `!`,
//! `?` tokens.

use crate::lexicon::Lexicon;

/// Split raw text into sentences of surface tokens.
pub fn tokenize(text: &str, lex: &Lexicon) -> Vec<Vec<String>> {
    let mut sentences: Vec<Vec<String>> = Vec::new();
    let mut current: Vec<String> = Vec::new();
    for raw in text.split_whitespace() {
        for tok in split_punct(raw, lex) {
            let is_terminal = matches!(tok.as_str(), "." | "!" | "?");
            current.push(tok);
            if is_terminal {
                sentences.push(std::mem::take(&mut current));
            }
        }
    }
    if !current.is_empty() {
        sentences.push(current);
    }
    sentences
}

/// Detach leading/trailing punctuation from a whitespace-delimited word.
///
/// Keeps abbreviations (`St.`), decimal numbers (`4.2`), internal hyphens
/// (`pour-over`) and apostrophes intact. `@handles` keep their sigil (the
/// WNUT tweet corpus needs them).
fn split_punct(raw: &str, lex: &Lexicon) -> Vec<String> {
    let mut out = Vec::new();
    let chars: Vec<char> = raw.chars().collect();
    let mut start = 0;
    let mut end = chars.len();

    // Leading punctuation (quotes, brackets, commas).
    while start < end && is_detachable(chars[start]) && chars[start] != '@' {
        out.push(chars[start].to_string());
        start += 1;
    }

    // Trailing punctuation, collected in reverse.
    let mut trailing: Vec<String> = Vec::new();
    while end > start {
        let c = chars[end - 1];
        if !is_detachable_trailing(c) {
            break;
        }
        if c == '.' {
            let word: String = chars[start..end].iter().collect();
            // Keep abbreviation periods and decimal points attached.
            if lex.is_abbreviation(&word) || is_decimal(&chars[start..end]) {
                break;
            }
        }
        trailing.push(c.to_string());
        end -= 1;
    }

    if start < end {
        out.push(chars[start..end].iter().collect());
    }
    trailing.reverse();
    out.extend(trailing);
    out
}

fn is_detachable(c: char) -> bool {
    matches!(
        c,
        '.' | ',' | '!' | '?' | ';' | ':' | '(' | ')' | '"' | '\'' | '[' | ']' | '@'
    )
}

fn is_detachable_trailing(c: char) -> bool {
    matches!(
        c,
        '.' | ',' | '!' | '?' | ';' | ':' | '(' | ')' | '"' | '\'' | '[' | ']'
    )
}

/// `4.2`, `1.5` — digits around a single dot.
fn is_decimal(chars: &[char]) -> bool {
    let s: String = chars.iter().collect();
    let mut parts = s.split('.');
    match (parts.next(), parts.next(), parts.next()) {
        (Some(a), Some(b), None) => {
            !a.is_empty()
                && !b.is_empty()
                && a.chars().all(|c| c.is_ascii_digit())
                && b.chars().all(|c| c.is_ascii_digit())
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(text: &str) -> Vec<Vec<String>> {
        tokenize(text, &Lexicon::new())
    }

    #[test]
    fn splits_sentences_on_terminals() {
        let s = toks("I ate cake. She bought pie!");
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], vec!["I", "ate", "cake", "."]);
        assert_eq!(s[1], vec!["She", "bought", "pie", "!"]);
    }

    #[test]
    fn detaches_commas_and_quotes() {
        let s = toks("\"Hello,\" she said.");
        assert_eq!(s[0], vec!["\"", "Hello", ",", "\"", "she", "said", "."]);
    }

    #[test]
    fn keeps_abbreviations() {
        let s = toks("The cafe on Mission St. has espresso.");
        assert_eq!(s.len(), 1, "St. must not end the sentence: {s:?}");
        assert!(s[0].contains(&"St.".to_string()));
    }

    #[test]
    fn keeps_decimals_and_hyphens() {
        let s = toks("A 4.2 star pour-over.");
        assert_eq!(s[0], vec!["A", "4.2", "star", "pour-over", "."]);
    }

    #[test]
    fn keeps_at_handles() {
        let s = toks("ask @bluebottle now.");
        assert_eq!(s[0], vec!["ask", "@bluebottle", "now", "."]);
    }

    #[test]
    fn unterminated_text_forms_a_sentence() {
        let s = toks("no final period here");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].len(), 4);
    }

    #[test]
    fn empty_input() {
        assert!(toks("").is_empty());
        assert!(toks("   \n\t ").is_empty());
    }

    #[test]
    fn paper_figure1_sentence() {
        let s = toks("I ate a chocolate ice cream, which was delicious, and also ate a pie.");
        assert_eq!(s.len(), 1);
        assert_eq!(
            s[0],
            vec![
                "I",
                "ate",
                "a",
                "chocolate",
                "ice",
                "cream",
                ",",
                "which",
                "was",
                "delicious",
                ",",
                "and",
                "also",
                "ate",
                "a",
                "pie",
                "."
            ]
        );
    }
}
