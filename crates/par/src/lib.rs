//! `koko-par` — deterministic fork-join parallelism for the KOKO engine.
//!
//! The sharded engine (parallel ingest, per-shard index builds, the
//! fan-out query executor) needs exactly one primitive: *run a pure
//! function over every element of a slice on several threads and collect
//! the results in input order*. This crate provides that on top of
//! [`std::thread::scope`], with no external dependencies, so the rest of
//! the workspace never touches threads directly.
//!
//! Determinism contract: [`par_map`] returns results in the same order as
//! its input and calls `f` exactly once per element, so for a pure `f` the
//! output is byte-identical to the sequential `items.iter().map(f)` — only
//! wall-clock time changes. Every parallel path in the engine leans on this
//! to keep sharded results equal to the single-threaded evaluator.
//!
//! Work distribution is block-cyclic: thread `t` of `n` takes elements
//! `t, t + n, t + 2n, …`. For corpora sorted by size (common in benchmarks)
//! this balances load better than contiguous chunking, and it needs no
//! per-element cost model.

/// Number of worker threads to use when the caller asks for "auto" (`0`):
/// the machine's available parallelism, or 1 if that cannot be determined.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolve a thread-count knob: `0` means auto; anything else is clamped to
/// `[1, len]` so no thread is created without work.
pub fn resolve_threads(requested: usize, len: usize) -> usize {
    let t = if requested == 0 {
        available_threads()
    } else {
        requested
    };
    t.clamp(1, len.max(1))
}

/// Map `f` over `items` on up to `threads` scoped threads (`0` = auto),
/// returning results in input order. Falls back to a plain sequential map
/// when one thread suffices — callers never need a separate serial path.
///
/// `f` receives `(index, &item)` so callers can recover global positions.
///
/// # Panics
/// Propagates the first worker panic (scoped threads re-raise on join).
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = resolve_threads(threads, items.len());
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    let mut slots: Vec<Option<U>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    std::thread::scope(|scope| {
        // Hand each worker a disjoint set of result slots. The block-cyclic
        // assignment means slot i belongs to worker i % threads; splitting
        // the slot vector into per-worker strides keeps this safe without
        // locks or unsafe code.
        let mut stripes: Vec<Vec<(usize, &mut Option<U>)>> =
            (0..threads).map(|_| Vec::new()).collect();
        for (i, slot) in slots.iter_mut().enumerate() {
            stripes[i % threads].push((i, slot));
        }
        for stripe in stripes {
            let f = &f;
            scope.spawn(move || {
                for (i, slot) in stripe {
                    *slot = Some(f(i, &items[i]));
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("par_map worker filled every slot"))
        .collect()
}

/// Map `f` over `0..n` (no backing slice) on up to `threads` threads,
/// in-order. Useful when work is indexed rather than stored, e.g. "build
/// shard `i`".
pub fn par_map_range<U, F>(n: usize, threads: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    // A unit slice gives par_map its length; the closure ignores the item.
    let units = vec![(); n];
    par_map(&units, threads, |i, _| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order_and_calls_once() {
        let items: Vec<usize> = (0..103).collect();
        let calls = AtomicUsize::new(0);
        for threads in [0, 1, 2, 3, 8, 200] {
            calls.store(0, Ordering::SeqCst);
            let out = par_map(&items, threads, |i, &x| {
                calls.fetch_add(1, Ordering::SeqCst);
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
            assert_eq!(calls.load(Ordering::SeqCst), items.len());
        }
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 4, |_, x| *x).is_empty());
        assert_eq!(par_map(&[7u32], 4, |_, x| *x + 1), vec![8]);
        assert_eq!(par_map_range(5, 3, |i| i * i), vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn matches_sequential_for_pure_functions() {
        let items: Vec<String> = (0..57).map(|i| format!("doc {i}")).collect();
        let seq: Vec<usize> = items.iter().map(|s| s.len()).collect();
        let par = par_map(&items, 4, |_, s| s.len());
        assert_eq!(seq, par);
    }

    #[test]
    fn resolve_threads_clamps() {
        assert_eq!(resolve_threads(8, 3), 3);
        assert_eq!(resolve_threads(2, 100), 2);
        assert_eq!(resolve_threads(5, 0), 1);
        assert!(resolve_threads(0, 100) >= 1);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let items = vec![1, 2, 3, 4];
        let _ = par_map(&items, 2, |_, &x| {
            if x == 3 {
                panic!("boom");
            }
            x
        });
    }
}
