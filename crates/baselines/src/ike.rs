//! IKE (Dalvi et al. \[18\], §5/§6.1): per-sentence pattern matching with
//! distributional-similarity expansion (`"phrase" ~ k`) and noun-phrase
//! captures — but *no* cross-sentence evidence aggregation, which is why it
//! trails KOKO on the blog corpora and nearly matches it on tweets.

use koko_embed::Embeddings;
use koko_nlp::{Corpus, PosTag, Sentence};

/// One pattern element.
#[derive(Debug, Clone)]
pub enum Elem {
    /// Literal token sequence, e.g. `"cafe called"`.
    Lit(Vec<String>),
    /// `(NP)` — capture a noun phrase.
    Capture,
    /// `("serves coffee" ~ k)` — the phrase or any of its `k` nearest
    /// paraphrases.
    Expand { phrase: String, k: usize },
}

/// An IKE query: a sequence of adjacent elements.
#[derive(Debug, Clone)]
pub struct IkePattern {
    pub elems: Vec<Elem>,
}

impl IkePattern {
    pub fn new(elems: Vec<Elem>) -> IkePattern {
        IkePattern { elems }
    }
}

fn lit(s: &str) -> Elem {
    Elem::Lit(s.split_whitespace().map(|w| w.to_lowercase()).collect())
}

fn expand(s: &str, k: usize) -> Elem {
    Elem::Expand {
        phrase: s.to_string(),
        k,
    }
}

/// The Appendix A.1 IKE translation of the cafe query (every line the paper
/// lists; the inexpressible clauses are omitted, as the paper notes).
pub fn cafe_patterns() -> Vec<IkePattern> {
    use Elem::Capture;
    vec![
        IkePattern::new(vec![lit("cafe called"), Capture]),
        IkePattern::new(vec![lit("cafes such as"), Capture]),
        IkePattern::new(vec![Capture, expand("sells coffee", 10)]),
        IkePattern::new(vec![Capture, expand("serves coffee", 10)]),
        IkePattern::new(vec![expand("coffee from", 10), Capture]),
        IkePattern::new(vec![expand("baristas of", 10), Capture]),
        IkePattern::new(vec![Capture, expand("baristas", 10)]),
        IkePattern::new(vec![Capture, expand("barista champion", 10)]),
        IkePattern::new(vec![expand("barista champion", 10), Capture]),
        IkePattern::new(vec![Capture, expand("pour-over", 10)]),
        IkePattern::new(vec![Capture, expand("french press", 10)]),
        IkePattern::new(vec![Capture, expand("coffee menu", 10)]),
        IkePattern::new(vec![expand("coffee menu", 10), Capture]),
    ]
}

/// Figure 10 as IKE patterns (facilities).
pub fn facility_patterns() -> Vec<IkePattern> {
    use Elem::Capture;
    vec![
        IkePattern::new(vec![lit("at"), Capture]),
        IkePattern::new(vec![expand("went to", 10), Capture]),
        IkePattern::new(vec![expand("go to", 10), Capture]),
    ]
}

/// Figure 11 as IKE patterns (sports teams).
pub fn team_patterns() -> Vec<IkePattern> {
    use Elem::Capture;
    vec![
        IkePattern::new(vec![Capture, expand("to host", 10)]),
        IkePattern::new(vec![Capture, lit("vs")]),
        IkePattern::new(vec![lit("vs"), Capture]),
        IkePattern::new(vec![Capture, lit("versus")]),
        IkePattern::new(vec![Capture, expand("soccer", 10)]),
        IkePattern::new(vec![lit("go"), Capture]),
    ]
}

/// The IKE matcher.
pub struct Ike<'e> {
    embed: &'e Embeddings,
}

impl<'e> Ike<'e> {
    pub fn new(embed: &'e Embeddings) -> Ike<'e> {
        Ike { embed }
    }

    /// Run patterns over a corpus; returns `(doc, captured NP)` pairs.
    pub fn run(&self, corpus: &Corpus, patterns: &[IkePattern]) -> Vec<(u32, String)> {
        // Pre-expand Expand elements once.
        let compiled: Vec<Vec<CompiledElem>> = patterns
            .iter()
            .map(|p| p.elems.iter().map(|e| self.compile(e)).collect())
            .collect();
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for (sid, sentence) in corpus.sentences() {
            let doc = corpus.doc_of(sid);
            for elems in &compiled {
                for cap in match_pattern(sentence, elems) {
                    if seen.insert((doc, cap.to_lowercase())) {
                        out.push((doc, cap));
                    }
                }
            }
        }
        out
    }

    fn compile(&self, e: &Elem) -> CompiledElem {
        match e {
            Elem::Lit(words) => CompiledElem::Phrases(vec![words.clone()]),
            Elem::Capture => CompiledElem::Capture,
            Elem::Expand { phrase, k } => {
                // IKE's `~ k` is word-level: each word may be replaced by
                // any of its k nearest neighbours ("dog ~ 20" in the paper).
                let alts: Vec<Vec<String>> = phrase
                    .split_whitespace()
                    .map(|w| {
                        let mut v = vec![w.to_lowercase()];
                        v.extend(
                            self.embed
                                .neighbors(w, *k, 0.55)
                                .into_iter()
                                .map(|(n, _)| n),
                        );
                        v
                    })
                    .collect();
                let mut phrases: Vec<Vec<String>> = vec![Vec::new()];
                for a in &alts {
                    let mut next = Vec::with_capacity(phrases.len() * a.len());
                    for p in &phrases {
                        for w in a {
                            let mut q = p.clone();
                            q.push(w.clone());
                            next.push(q);
                            if next.len() >= 500 {
                                break;
                            }
                        }
                        if next.len() >= 500 {
                            break;
                        }
                    }
                    phrases = next;
                }
                CompiledElem::Phrases(phrases)
            }
        }
    }
}

enum CompiledElem {
    Phrases(Vec<Vec<String>>),
    Capture,
}

/// Noun-phrase span starting at `pos` (maximal DET/ADJ/NOUN/PROPN run that
/// contains a nominal); returns `(end, text-without-leading-determiner)`.
fn np_at(sentence: &Sentence, pos: usize) -> Option<(usize, String)> {
    let n = sentence.len();
    let mut end = pos;
    while end < n
        && matches!(
            sentence.tokens[end].pos,
            PosTag::Det | PosTag::Adj | PosTag::Noun | PosTag::Propn
        )
    {
        end += 1;
    }
    if end == pos {
        return None;
    }
    // Must contain a nominal and end at one.
    let last = &sentence.tokens[end - 1];
    if !matches!(last.pos, PosTag::Noun | PosTag::Propn) {
        return None;
    }
    let mut start = pos;
    while start < end && sentence.tokens[start].pos == PosTag::Det {
        start += 1;
    }
    if start == end {
        return None;
    }
    Some((end, sentence.span_text(start as u32, (end - 1) as u32)))
}

/// All captures of one pattern in one sentence (adjacent elements).
fn match_pattern(sentence: &Sentence, elems: &[CompiledElem]) -> Vec<String> {
    let n = sentence.len();
    let lowers: Vec<&str> = sentence.tokens.iter().map(|t| t.lower.as_str()).collect();
    let mut captures = Vec::new();
    for start in 0..n {
        let mut cap: Option<String> = None;
        if try_match(sentence, &lowers, elems, 0, start, &mut cap) {
            if let Some(c) = cap {
                captures.push(c);
            }
        }
    }
    captures
}

fn try_match(
    sentence: &Sentence,
    lowers: &[&str],
    elems: &[CompiledElem],
    ei: usize,
    pos: usize,
    cap: &mut Option<String>,
) -> bool {
    if ei == elems.len() {
        return true;
    }
    match &elems[ei] {
        CompiledElem::Phrases(phrases) => {
            for p in phrases {
                if pos + p.len() <= lowers.len()
                    && p.iter().enumerate().all(|(i, w)| lowers[pos + i] == w)
                    && try_match(sentence, lowers, elems, ei + 1, pos + p.len(), cap)
                {
                    return true;
                }
            }
            false
        }
        CompiledElem::Capture => match np_at(sentence, pos) {
            Some((end, text)) if try_match(sentence, lowers, elems, ei + 1, end, cap) => {
                *cap = Some(text);
                true
            }
            _ => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koko_nlp::Pipeline;

    fn corpus(texts: &[&str]) -> Corpus {
        Pipeline::new().parse_corpus(texts)
    }

    #[test]
    fn literal_then_capture() {
        let c = corpus(&["It is a new cafe called Velvet Moon ."]);
        let ike = Ike::new(Embeddings::shared());
        let hits = ike.run(
            &c,
            &[IkePattern::new(vec![lit("cafe called"), Elem::Capture])],
        );
        assert_eq!(hits, vec![(0, "Velvet Moon".to_string())]);
    }

    #[test]
    fn capture_then_expansion() {
        let c = corpus(&[
            "Copper Kettle pours espresso daily.",
            "Quiet Owl hates tea.",
        ]);
        let ike = Ike::new(Embeddings::shared());
        let hits = ike.run(
            &c,
            &[IkePattern::new(vec![
                Elem::Capture,
                expand("serves coffee", 15),
            ])],
        );
        assert!(
            hits.contains(&(0, "Copper Kettle".to_string())),
            "paraphrase adjacency: {hits:?}"
        );
        assert!(!hits.iter().any(|(d, _)| *d == 1));
    }

    #[test]
    fn no_aggregation_across_sentences() {
        // Each hit stands alone; a cafe with only *split* weak evidence is
        // found by KOKO's aggregation but IKE still reports it only when a
        // single sentence matches a pattern.
        let c = corpus(&["Quiet Owl is nice. The shop serves coffee."]);
        let ike = Ike::new(Embeddings::shared());
        let hits = ike.run(
            &c,
            &[IkePattern::new(vec![
                Elem::Capture,
                expand("serves coffee", 10),
            ])],
        );
        assert!(
            !hits.iter().any(|(_, h)| h.contains("Owl")),
            "evidence in another sentence must not credit the name: {hits:?}"
        );
    }

    #[test]
    fn team_pattern_go() {
        let c = corpus(&["go Falcons !"]);
        let ike = Ike::new(Embeddings::shared());
        let hits = ike.run(&c, &team_patterns());
        assert!(hits.contains(&(0, "Falcons".to_string())), "{hits:?}");
    }

    #[test]
    fn determinate_and_deduped() {
        let c = corpus(&["go Falcons ! go Falcons !"]);
        let ike = Ike::new(Embeddings::shared());
        let hits = ike.run(&c, &team_patterns());
        assert_eq!(hits.iter().filter(|(_, h)| h == "Falcons").count(), 1);
    }
}
