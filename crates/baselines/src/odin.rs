//! An Odin-style cascaded rule matcher (Valenzuela-Escárcega et al. \[44\],
//! §6.3): rules with priorities, evaluated **without any index** by
//! scanning every sentence, iterating the cascade until no new matches
//! appear — which is exactly why the paper measures it 1.3–40× slower than
//! KOKO depending on query selectivity.

use koko_nlp::{match_sentence, Corpus, EntityType, TreePattern};

/// What a rule extracts once its pattern matches.
#[derive(Debug, Clone)]
pub enum Capture {
    /// The subtree text of the pattern node at this index.
    NodeSubtree(usize),
    /// All (Person, Date) mention pairs of the sentence.
    PersonDatePairs,
    /// All mentions of a type in the sentence.
    Mentions(EntityType),
}

/// One Odin rule.
#[derive(Debug, Clone)]
pub struct OdinRule {
    pub name: String,
    /// Cascade priority (lower runs earlier).
    pub priority: u8,
    /// Structural trigger; `None` means a surface trigger word.
    pub pattern: Option<TreePattern>,
    /// Surface trigger: the sentence must contain this word.
    pub trigger_word: Option<String>,
    pub capture: Capture,
}

/// A rule cascade.
#[derive(Debug, Clone, Default)]
pub struct OdinSystem {
    pub rules: Vec<OdinRule>,
}

/// One extraction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OdinMatch {
    pub rule: String,
    pub doc: u32,
    pub text: String,
}

impl OdinSystem {
    /// Evaluate the cascade: for each priority level, scan **every**
    /// sentence with every rule of that level; repeat the whole cascade
    /// until a full pass adds no new matches (Odin's fixpoint semantics).
    pub fn run(&self, corpus: &Corpus) -> Vec<OdinMatch> {
        let mut priorities: Vec<u8> = self.rules.iter().map(|r| r.priority).collect();
        priorities.sort_unstable();
        priorities.dedup();
        let mut results: std::collections::HashSet<OdinMatch> = std::collections::HashSet::new();
        loop {
            let before = results.len();
            for &p in &priorities {
                for rule in self.rules.iter().filter(|r| r.priority == p) {
                    for (sid, sentence) in corpus.sentences() {
                        let doc = corpus.doc_of(sid);
                        // Full pattern evaluation on every sentence — Odin
                        // has no index to prune with (§5: "Semgrex/Odin …
                        // does not exploit any indexing techniques"); the
                        // trigger word is part of the rule semantics, not a
                        // shortcut.
                        let assignments = match &rule.pattern {
                            Some(pat) => match_sentence(pat, sentence),
                            None => vec![vec![]],
                        };
                        let trigger_ok = rule
                            .trigger_word
                            .as_ref()
                            .is_none_or(|w| sentence.tokens.iter().any(|t| &t.lower == w));
                        if assignments.is_empty() || !trigger_ok {
                            continue;
                        }
                        match &rule.capture {
                            Capture::NodeSubtree(idx) => {
                                let stats = koko_nlp::tree_stats(sentence);
                                for a in &assignments {
                                    let t = a[*idx] as usize;
                                    let text = sentence.span_text(stats[t].left, stats[t].right);
                                    results.insert(OdinMatch {
                                        rule: rule.name.clone(),
                                        doc,
                                        text,
                                    });
                                }
                            }
                            Capture::PersonDatePairs => {
                                let persons: Vec<String> = sentence
                                    .entities
                                    .iter()
                                    .filter(|m| m.etype == EntityType::Person)
                                    .map(|m| sentence.mention_text(m))
                                    .collect();
                                let dates: Vec<String> = sentence
                                    .entities
                                    .iter()
                                    .filter(|m| m.etype == EntityType::Date)
                                    .map(|m| sentence.mention_text(m))
                                    .collect();
                                for p in &persons {
                                    for d in &dates {
                                        results.insert(OdinMatch {
                                            rule: rule.name.clone(),
                                            doc,
                                            text: format!("{p} | {d}"),
                                        });
                                    }
                                }
                            }
                            Capture::Mentions(et) => {
                                for m in sentence.entities.iter().filter(|m| m.etype == *et) {
                                    results.insert(OdinMatch {
                                        rule: rule.name.clone(),
                                        doc,
                                        text: sentence.mention_text(m),
                                    });
                                }
                            }
                        }
                    }
                }
            }
            if results.len() == before {
                break;
            }
        }
        let mut out: Vec<OdinMatch> = results.into_iter().collect();
        out.sort_by(|a, b| (a.doc, &a.rule, &a.text).cmp(&(b.doc, &b.rule, &b.text)));
        out
    }
}

/// The §6.3 queries translated to Odin cascades "to the extent possible"
/// (extract clauses only — Odin cannot aggregate evidence).
pub mod translations {
    use super::*;
    use koko_nlp::{Axis, NodeLabel, PNode, ParseLabel, PosTag};

    /// Chocolate: a verb with a `pobj` descendant "chocolate" and an
    /// `nsubj` child; capture the subject subtree.
    pub fn chocolate() -> OdinSystem {
        let pattern = TreePattern {
            nodes: vec![
                PNode {
                    parent: None,
                    axis: Axis::Child,
                    label: NodeLabel::Pos(PosTag::Verb),
                },
                PNode {
                    parent: Some(0),
                    axis: Axis::Descendant,
                    label: NodeLabel::Word("chocolate".into()),
                },
                PNode {
                    parent: Some(0),
                    axis: Axis::Child,
                    label: NodeLabel::Pl(ParseLabel::Nsubj),
                },
            ],
            root_anchored: false,
        };
        OdinSystem {
            rules: vec![
                OdinRule {
                    name: "chocolate-trigger".into(),
                    priority: 1,
                    pattern: None,
                    trigger_word: Some("chocolate".into()),
                    capture: Capture::Mentions(EntityType::Other),
                },
                OdinRule {
                    name: "chocolate-subject".into(),
                    priority: 2,
                    pattern: Some(pattern),
                    trigger_word: Some("chocolate".into()),
                    capture: Capture::NodeSubtree(2),
                },
            ],
        }
    }

    /// Title: `//"called"/propn`, capture the name subtree.
    pub fn title() -> OdinSystem {
        let pattern = TreePattern::path(
            false,
            vec![
                (Axis::Descendant, NodeLabel::Word("called".into())),
                (Axis::Child, NodeLabel::Pos(PosTag::Propn)),
            ],
        );
        OdinSystem {
            rules: vec![
                OdinRule {
                    name: "called-trigger".into(),
                    priority: 1,
                    pattern: None,
                    trigger_word: Some("called".into()),
                    capture: Capture::Mentions(EntityType::Person),
                },
                OdinRule {
                    name: "called-name".into(),
                    priority: 2,
                    pattern: Some(pattern),
                    trigger_word: Some("called".into()),
                    capture: Capture::NodeSubtree(1),
                },
            ],
        }
    }

    /// DateOfBirth: Odin has no similarity operator, so the paper-style
    /// translation triggers on the literal "born" and pairs persons with
    /// dates.
    pub fn date_of_birth() -> OdinSystem {
        OdinSystem {
            rules: vec![OdinRule {
                name: "born-pairs".into(),
                priority: 1,
                pattern: Some(TreePattern::path(
                    false,
                    vec![(Axis::Descendant, NodeLabel::Word("born".into()))],
                )),
                trigger_word: Some("born".into()),
                capture: Capture::PersonDatePairs,
            }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koko_nlp::Pipeline;

    fn corpus() -> Corpus {
        Pipeline::new().parse_corpus(&[
            "Baking chocolate is a type of chocolate that is prepared for baking.",
            "Cyd Charisse had been called Sid for years.",
            "Vera Alys was born in 1911.",
            "The cafe was busy today.",
        ])
    }

    #[test]
    fn chocolate_translation_extracts_subject() {
        let hits = translations::chocolate().run(&corpus());
        assert!(
            hits.iter()
                .any(|m| m.rule == "chocolate-subject" && m.text == "Baking chocolate"),
            "{hits:?}"
        );
    }

    #[test]
    fn title_translation_extracts_name() {
        let hits = translations::title().run(&corpus());
        assert!(
            hits.iter()
                .any(|m| m.rule == "called-name" && m.text == "Sid"),
            "{hits:?}"
        );
    }

    #[test]
    fn dob_translation_pairs() {
        let hits = translations::date_of_birth().run(&corpus());
        assert!(
            hits.iter().any(|m| m.text == "Vera Alys | 1911"),
            "{hits:?}"
        );
    }

    #[test]
    fn fixpoint_terminates_and_is_deterministic() {
        let c = corpus();
        let a = translations::chocolate().run(&c);
        let b = translations::chocolate().run(&c);
        assert_eq!(a, b);
    }
}
