//! `koko-baselines` — from-scratch implementations of the systems KOKO is
//! evaluated against in §6:
//!
//! * [`crf`] — the CRFsuite stand-in: a first-order Markov model trained
//!   with the averaged perceptron over BIO tags (Figures 3, 4);
//! * [`ike`] — IKE's per-sentence pattern language with `~ k`
//!   distributional expansion (Figures 3, 4);
//! * [`nell`] — a NELL-style conservative bootstrapper (§6.1's P/R note);
//! * [`odin`] — an Odin-style cascaded, index-free rule matcher (§6.3's
//!   runtime comparison).

pub mod crf;
pub mod ike;
pub mod nell;
pub mod odin;

pub use crf::{bio_encode, Crf};
pub use ike::{Ike, IkePattern};
pub use nell::{bootstrap, NellConfig};
pub use odin::{OdinMatch, OdinSystem};
