//! A NELL-style conservative bootstrapper (Carlson et al. [8, 29], §6.1):
//! seed instances → high-precision context patterns → new instances,
//! iterated. Patterns are promoted only when they almost exclusively
//! co-occur with known instances, and few instances are promoted per
//! iteration — which reproduces the paper's observation that NELL reaches
//! high precision but very low recall on rarely-mentioned entities
//! (BaristaMag: P 0.7 / R 0.05).

use koko_nlp::{Corpus, EntityType};
use std::collections::{HashMap, HashSet};

/// Bootstrapping knobs.
#[derive(Debug, Clone, Copy)]
pub struct NellConfig {
    pub iterations: usize,
    /// Minimum fraction of a pattern's matches that must be known
    /// instances.
    pub pattern_precision: f64,
    /// Minimum occurrences for a pattern to be considered.
    pub min_pattern_count: usize,
    /// Instances promoted per iteration (NELL is deliberately slow).
    pub promote_per_iter: usize,
    /// A candidate must be matched by at least this many promoted patterns.
    pub min_patterns_per_instance: usize,
}

impl Default for NellConfig {
    fn default() -> Self {
        NellConfig {
            iterations: 4,
            pattern_precision: 0.5,
            min_pattern_count: 2,
            promote_per_iter: 5,
            min_patterns_per_instance: 2,
        }
    }
}

/// One context pattern: the words immediately before and after a mention.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ContextPattern {
    left: String,
    right: String,
}

/// Candidate mentions: every `Other`-typed entity (the type cafes surface
/// as) with its context per occurrence.
fn collect_mentions(corpus: &Corpus) -> Vec<(u32, String, ContextPattern)> {
    let mut out = Vec::new();
    for (sid, sentence) in corpus.sentences() {
        let doc = corpus.doc_of(sid);
        for m in &sentence.entities {
            if m.etype != EntityType::Other {
                continue;
            }
            let text = sentence.mention_text(m);
            let left = if m.start > 0 {
                sentence.tokens[m.start as usize - 1].lower.clone()
            } else {
                "<s>".to_string()
            };
            let right = sentence
                .tokens
                .get(m.end as usize + 1)
                .map(|t| t.lower.clone())
                .unwrap_or("</s>".to_string());
            out.push((doc, text, ContextPattern { left, right }));
        }
    }
    out
}

/// Run the bootstrap; returns learned instances (lower-cased, seeds
/// excluded) and the number of promoted patterns.
pub fn bootstrap(corpus: &Corpus, seeds: &[String], cfg: NellConfig) -> (Vec<String>, usize) {
    let mentions = collect_mentions(corpus);
    let mut known: HashSet<String> = seeds.iter().map(|s| s.to_lowercase()).collect();
    let mut learned: Vec<String> = Vec::new();
    let mut promoted_patterns: HashSet<ContextPattern> = HashSet::new();

    for _iter in 0..cfg.iterations {
        // Score patterns by precision against known instances.
        let mut stats: HashMap<&ContextPattern, (usize, usize)> = HashMap::new();
        for (_, text, pat) in &mentions {
            let e = stats.entry(pat).or_insert((0, 0));
            e.1 += 1;
            if known.contains(&text.to_lowercase()) {
                e.0 += 1;
            }
        }
        for (pat, (hits, total)) in &stats {
            if *total >= cfg.min_pattern_count
                && *hits as f64 / *total as f64 >= cfg.pattern_precision
                && *hits >= 1
            {
                promoted_patterns.insert((*pat).clone());
            }
        }
        // Candidates matched by enough promoted patterns.
        let mut candidate_hits: HashMap<String, HashSet<&ContextPattern>> = HashMap::new();
        for (_, text, pat) in &mentions {
            let lower = text.to_lowercase();
            if known.contains(&lower) {
                continue;
            }
            if promoted_patterns.contains(pat) {
                candidate_hits.entry(lower).or_default().insert(pat);
            }
        }
        let mut ranked: Vec<(String, usize)> = candidate_hits
            .into_iter()
            .filter(|(_, pats)| pats.len() >= cfg.min_patterns_per_instance)
            .map(|(name, pats)| (name, pats.len()))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut promoted_any = false;
        for (name, _) in ranked.into_iter().take(cfg.promote_per_iter) {
            known.insert(name.clone());
            learned.push(name);
            promoted_any = true;
        }
        if !promoted_any {
            break;
        }
    }
    (learned, promoted_patterns.len())
}

/// Project learned instances back onto documents for per-document scoring:
/// `(doc, name)` for every document whose text mentions the instance.
pub fn project(corpus: &Corpus, instances: &[String]) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    for (sid, sentence) in corpus.sentences() {
        let doc = corpus.doc_of(sid);
        let text = sentence.text().to_lowercase();
        for inst in instances {
            if text.contains(inst.as_str()) && seen.insert((doc, inst.clone())) {
                out.push((doc, inst.clone()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use koko_nlp::Pipeline;

    fn corpus() -> Corpus {
        // "cafe called X" and "X , a cafe" contexts recur; seeds anchor
        // them; "Velvet Moon" should be learned, the machine brand should
        // not.
        Pipeline::new().parse_corpus(&[
            "It is a new cafe called Copper Kettle .",
            "It is a new cafe called Quiet Owl .",
            "It is a new cafe called Velvet Moon .",
            "It is a new cafe called Blue Heron .",
            "They installed a La Marzocco behind the bar .",
            "The Falcons won again .",
        ])
    }

    #[test]
    fn learns_from_shared_contexts() {
        let c = corpus();
        let seeds = vec!["Copper Kettle".to_string(), "Quiet Owl".to_string()];
        let (learned, patterns) = bootstrap(
            &c,
            &seeds,
            NellConfig {
                min_patterns_per_instance: 1,
                ..NellConfig::default()
            },
        );
        assert!(patterns >= 1);
        assert!(learned.contains(&"velvet moon".to_string()), "{learned:?}");
        assert!(learned.contains(&"blue heron".to_string()), "{learned:?}");
        assert!(
            !learned.contains(&"la marzocco".to_string()),
            "different context must not be learned: {learned:?}"
        );
    }

    #[test]
    fn conservative_with_default_config() {
        // Requiring 2 distinct patterns per instance on a corpus with one
        // context type learns nothing — low recall by design.
        let c = corpus();
        let seeds = vec!["Copper Kettle".to_string()];
        let (learned, _) = bootstrap(&c, &seeds, NellConfig::default());
        assert!(learned.is_empty(), "{learned:?}");
    }

    #[test]
    fn projection_maps_instances_to_documents() {
        let c = corpus();
        let hits = project(&c, &["velvet moon".to_string()]);
        assert_eq!(hits, vec![(2, "velvet moon".to_string())]);
    }

    #[test]
    fn deterministic() {
        let c = corpus();
        let seeds = vec!["Copper Kettle".to_string(), "Quiet Owl".to_string()];
        let cfg = NellConfig {
            min_patterns_per_instance: 1,
            ..NellConfig::default()
        };
        assert_eq!(bootstrap(&c, &seeds, cfg).0, bootstrap(&c, &seeds, cfg).0);
    }
}
