//! The CRFsuite stand-in (§6.1): a first-order Markov sequence model
//! trained with the **averaged perceptron** — exactly the estimator the
//! paper describes — over BIO tags, decoded with Viterbi.
//!
//! Features follow the paper: the token plus its preceding and following
//! tokens, prefixes and suffixes up to 3 characters, and binary shape
//! features (has-digit, all-digit, capitalized, all-caps).

use koko_embed::hash64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// BIO labels.
pub const O: u8 = 0;
pub const B: u8 = 1;
pub const I: u8 = 2;
const NLABELS: usize = 3;

/// Averaged-perceptron weights with the lazy-averaging timestamp trick.
#[derive(Debug, Default)]
struct AvgWeights {
    w: HashMap<u64, [f64; NLABELS]>,
    totals: HashMap<u64, [f64; NLABELS]>,
    stamp: HashMap<u64, u64>,
    t: u64,
}

impl AvgWeights {
    fn update(&mut self, f: u64, label: usize, delta: f64) {
        let stamp = self.stamp.entry(f).or_insert(0);
        let w = self.w.entry(f).or_insert([0.0; NLABELS]);
        let totals = self.totals.entry(f).or_insert([0.0; NLABELS]);
        let dt = (self.t - *stamp) as f64;
        for l in 0..NLABELS {
            totals[l] += dt * w[l];
        }
        *stamp = self.t;
        w[label] += delta;
    }

    fn averaged(mut self) -> HashMap<u64, [f64; NLABELS]> {
        let t = self.t.max(1) as f64;
        for (f, w) in &self.w {
            let stamp = self.stamp[f];
            let totals = self.totals.entry(*f).or_insert([0.0; NLABELS]);
            let dt = (self.t - stamp) as f64;
            for l in 0..NLABELS {
                totals[l] += dt * w[l];
            }
        }
        self.totals
            .into_iter()
            .map(|(f, tot)| {
                let mut avg = [0.0; NLABELS];
                for l in 0..NLABELS {
                    avg[l] = tot[l] / t;
                }
                (f, avg)
            })
            .collect()
    }
}

/// A trained model.
#[derive(Debug, Clone)]
pub struct Crf {
    emission: HashMap<u64, [f64; NLABELS]>,
    /// `transition[prev][cur]`.
    transition: [[f64; NLABELS]; NLABELS],
}

/// Feature extraction for one position.
fn features(tokens: &[String], i: usize, out: &mut Vec<u64>) {
    out.clear();
    let tok = &tokens[i];
    let lower = tok.to_lowercase();
    out.push(hash64(&format!("w={lower}")));
    out.push(hash64(&format!(
        "prev={}",
        if i > 0 {
            tokens[i - 1].to_lowercase()
        } else {
            "<s>".into()
        }
    )));
    out.push(hash64(&format!(
        "next={}",
        tokens
            .get(i + 1)
            .map(|t| t.to_lowercase())
            .unwrap_or("</s>".into())
    )));
    let chars: Vec<char> = lower.chars().collect();
    for k in 1..=3usize.min(chars.len()) {
        let prefix: String = chars[..k].iter().collect();
        let suffix: String = chars[chars.len() - k..].iter().collect();
        out.push(hash64(&format!("pre{k}={prefix}")));
        out.push(hash64(&format!("suf{k}={suffix}")));
    }
    if tok.chars().any(|c| c.is_ascii_digit()) {
        out.push(hash64("has_digit"));
    }
    if !tok.is_empty() && tok.chars().all(|c| c.is_ascii_digit()) {
        out.push(hash64("all_digit"));
    }
    if tok.chars().next().is_some_and(|c| c.is_uppercase()) {
        out.push(hash64("cap"));
        if i == 0 {
            out.push(hash64("cap_first"));
        }
    }
    if tok.len() > 1 && tok.chars().all(|c| c.is_uppercase()) {
        out.push(hash64("all_caps"));
    }
}

impl Crf {
    /// Train on `(tokens, bio tags)` sequences with the averaged perceptron.
    pub fn train(data: &[(Vec<String>, Vec<u8>)], epochs: usize, seed: u64) -> Crf {
        let mut emission = AvgWeights::default();
        let mut trans = [[0.0f64; NLABELS]; NLABELS];
        let mut trans_tot = [[0.0f64; NLABELS]; NLABELS];
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut feats = Vec::with_capacity(16);
        let mut steps: u64 = 0;
        for _epoch in 0..epochs {
            // Seeded shuffle.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for &di in &order {
                let (tokens, gold) = &data[di];
                if tokens.is_empty() {
                    continue;
                }
                steps += 1;
                emission.t = steps;
                let current = Crf {
                    emission: emission.w.clone(),
                    transition: trans,
                };
                let pred = current.viterbi(tokens);
                if pred != *gold {
                    // Perceptron update along both paths.
                    let mut prev_gold = O as usize;
                    let mut prev_pred = O as usize;
                    for i in 0..tokens.len() {
                        let g = gold[i] as usize;
                        let p = pred[i] as usize;
                        if g != p {
                            features(tokens, i, &mut feats);
                            for &f in &feats {
                                emission.update(f, g, 1.0);
                                emission.update(f, p, -1.0);
                            }
                        }
                        if (prev_gold, g) != (prev_pred, p) {
                            trans[prev_gold][g] += 1.0;
                            trans[prev_pred][p] -= 1.0;
                        }
                        prev_gold = g;
                        prev_pred = p;
                    }
                }
                for a in 0..NLABELS {
                    for b in 0..NLABELS {
                        trans_tot[a][b] += trans[a][b];
                    }
                }
            }
        }
        let mut avg_trans = [[0.0f64; NLABELS]; NLABELS];
        let denom = steps.max(1) as f64;
        for a in 0..NLABELS {
            for b in 0..NLABELS {
                avg_trans[a][b] = trans_tot[a][b] / denom;
            }
        }
        Crf {
            emission: emission.averaged(),
            transition: avg_trans,
        }
    }

    /// Viterbi decoding over the three BIO states.
    pub fn viterbi(&self, tokens: &[String]) -> Vec<u8> {
        let n = tokens.len();
        if n == 0 {
            return Vec::new();
        }
        let mut feats = Vec::with_capacity(16);
        let mut score = vec![[f64::NEG_INFINITY; NLABELS]; n];
        let mut back = vec![[0usize; NLABELS]; n];
        for i in 0..n {
            features(tokens, i, &mut feats);
            let mut em = [0.0f64; NLABELS];
            for &f in &feats {
                let w = self.emission.get(&f).copied().unwrap_or([0.0; NLABELS]);
                for l in 0..NLABELS {
                    em[l] += w[l];
                }
            }
            for cur in 0..NLABELS {
                // I may not start a sequence or follow O.
                if i == 0 {
                    if cur == I as usize {
                        continue;
                    }
                    score[0][cur] = em[cur] + self.transition[O as usize][cur];
                    continue;
                }
                for prev in 0..NLABELS {
                    if cur == I as usize && prev == O as usize {
                        continue; // O → I is structurally invalid
                    }
                    let s = score[i - 1][prev] + self.transition[prev][cur] + em[cur];
                    if s > score[i][cur] {
                        score[i][cur] = s;
                        back[i][cur] = prev;
                    }
                }
            }
        }
        let mut best = 0usize;
        for l in 1..NLABELS {
            if score[n - 1][l] > score[n - 1][best] {
                best = l;
            }
        }
        let mut tags = vec![0u8; n];
        let mut cur = best;
        for i in (0..n).rev() {
            tags[i] = cur as u8;
            cur = back[i][cur];
        }
        tags
    }

    /// Predicted entity spans `(start, end)` (half-open token ranges).
    pub fn extract(&self, tokens: &[String]) -> Vec<(usize, usize)> {
        let tags = self.viterbi(tokens);
        let mut out = Vec::new();
        let mut i = 0;
        while i < tags.len() {
            if tags[i] == B {
                let start = i;
                i += 1;
                while i < tags.len() && tags[i] == I {
                    i += 1;
                }
                out.push((start, i));
            } else {
                i += 1;
            }
        }
        out
    }
}

/// Encode gold names as BIO tags over a token sequence (case-insensitive
/// subsequence matching — the annotation-projection step real NER training
/// sets go through).
pub fn bio_encode(tokens: &[String], gold: &[String]) -> Vec<u8> {
    let lowers: Vec<String> = tokens.iter().map(|t| t.to_lowercase()).collect();
    let mut tags = vec![O; tokens.len()];
    for name in gold {
        let words: Vec<String> = name.split_whitespace().map(|w| w.to_lowercase()).collect();
        if words.is_empty() {
            continue;
        }
        let mut i = 0;
        while i + words.len() <= tokens.len() {
            if lowers[i..i + words.len()] == words[..] {
                tags[i] = B;
                for t in tags.iter_mut().take(i + words.len()).skip(i + 1) {
                    *t = I;
                }
                i += words.len();
            } else {
                i += 1;
            }
        }
    }
    tags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn bio_encoding() {
        let t = toks("We love Copper Kettle Cafe downtown");
        let tags = bio_encode(&t, &["Copper Kettle Cafe".to_string()]);
        assert_eq!(tags, vec![O, O, B, I, I, O]);
    }

    #[test]
    fn learns_a_simple_pattern() {
        // Names always follow "visit"; the model must pick that up.
        let names = ["Copper Kettle", "Quiet Owl", "Blue Heron", "Iron Anchor"];
        let mut data = Vec::new();
        for (i, n) in names.iter().enumerate() {
            let text = format!("we will visit {n} soon");
            let t = toks(&text);
            let tags = bio_encode(&t, &[n.to_string()]);
            data.push((t, tags));
            let filler = format!("nothing special happened today number {i}");
            let tf = toks(&filler);
            let len = tf.len();
            data.push((tf, vec![O; len]));
        }
        let crf = Crf::train(&data, 8, 42);
        // Held-out name in the same context.
        let test = toks("we will visit Velvet Moon soon");
        let spans = crf.extract(&test);
        assert_eq!(spans, vec![(3, 5)], "tags: {:?}", crf.viterbi(&test));
        // Negative sentence stays O.
        let neg = toks("nothing special happened again");
        assert!(crf.extract(&neg).is_empty());
    }

    #[test]
    fn viterbi_never_emits_dangling_i() {
        let data = vec![(toks("a b c"), vec![O, B, I])];
        let crf = Crf::train(&data, 3, 1);
        for text in ["x y z", "a b c", "b b b b"] {
            let tags = crf.viterbi(&toks(text));
            for (i, &t) in tags.iter().enumerate() {
                if t == I {
                    assert!(i > 0 && tags[i - 1] != O, "O→I at {i} in {tags:?}");
                }
            }
        }
    }

    #[test]
    fn training_is_deterministic() {
        let data = vec![
            (toks("visit Copper Kettle now"), vec![O, B, I, O]),
            (toks("plain words here"), vec![O, O, O]),
        ];
        let a = Crf::train(&data, 4, 7);
        let b = Crf::train(&data, 4, 7);
        assert_eq!(
            a.viterbi(&toks("visit Blue Heron now")),
            b.viterbi(&toks("visit Blue Heron now"))
        );
    }
}
