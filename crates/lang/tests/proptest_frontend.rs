//! Robustness properties for the query front-end: arbitrary input must
//! never panic the lexer/parser/normalizer — malformed queries fail with
//! `Err`, never with a crash (a user-facing query engine's first duty).

use koko_lang::{lex, normalize, parse_query};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Totally arbitrary strings: the front-end is total.
    #[test]
    fn frontend_never_panics_on_garbage(input in ".{0,200}") {
        let _ = lex(&input);
        if let Ok(q) = parse_query(&input) {
            let _ = normalize(&q);
        }
    }

    /// Query-shaped strings assembled from real grammar fragments: higher
    /// parse success rate, still must be total, and anything that parses
    /// and normalizes must round through the engine-compile step too.
    #[test]
    fn frontend_never_panics_on_query_shaped_input(
        pieces in prop::collection::vec(
            prop::sample::select(vec![
                "extract", "x:Entity", "a:Str,", "from", "\"t\"", "if", "(", ")",
                "/ROOT:{", "}", "x", "=", "//verb", "/dobj", "+", "^", "\"ate\"",
                "[text=\"ate\"]", "[@regex=\"[a-z]+\"]", "(x) in (y)", "satisfying",
                "(x near \"z\" {0.5})", "or", "with threshold 0.5", "excluding",
                "(str(x) matches \"a+\")", ",", "b.subtree",
            ]),
            1..24,
        )
    ) {
        let input = pieces.join(" ");
        if let Ok(q) = parse_query(&input) {
            let _ = normalize(&q);
        }
    }

    /// The lexer round-trips displayable tokens: rendering then re-lexing
    /// yields the same token stream.
    #[test]
    fn lexer_round_trips_rendered_tokens(input in "[a-z ()=+/*{}\\[\\],:0-9\"^~@.]{0,80}") {
        if let Ok(tokens) = lex(&input) {
            let rendered = tokens
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(" ");
            if let Ok(again) = lex(&rendered) {
                prop_assert_eq!(tokens, again, "render: {}", rendered);
            }
        }
    }
}
