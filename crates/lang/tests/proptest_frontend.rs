//! Robustness properties for the query front-end: arbitrary input must
//! never panic the lexer/parser/normalizer — malformed queries fail with
//! `Err`, never with a crash (a user-facing query engine's first duty).

use koko_lang::{lex, normalize, parse_query, queries};
use proptest::prelude::*;

/// Every shipped paper query — the seeds for the mutation fuzzer.
const PAPER_QUERIES: [&str; 8] = [
    queries::EXAMPLE_2_1,
    queries::EXAMPLE_2_2_Q1,
    queries::EXAMPLE_2_2_Q2,
    queries::EXAMPLE_2_3,
    queries::EXAMPLE_4_1,
    queries::CHOCOLATE,
    queries::TITLE,
    queries::DATE_OF_BIRTH,
];

/// One fuzzer edit: (op, position selector, payload). Positions are taken
/// modulo the current length so every generated edit applies.
type Mutation = (u8, usize, String);

/// Apply a mutation script to a seed query. Operates on `char`
/// boundaries, so the result is always a valid `&str` — the front end
/// must survive *any* of these, valid query or not.
fn mutate(seed: &str, script: &[Mutation]) -> String {
    let mut text: Vec<char> = seed.chars().collect();
    for (op, pos, payload) in script {
        let len = text.len();
        let at = if len == 0 { 0 } else { pos % len };
        match op % 5 {
            // Delete a run of characters.
            0 => {
                let end = (at + 1 + payload.len()).min(len);
                text.drain(at..end.max(at));
            }
            // Insert arbitrary payload.
            1 => {
                for (i, c) in payload.chars().enumerate() {
                    text.insert(at + i, c);
                }
            }
            // Duplicate a slice (repeats confuse parsers nicely).
            2 => {
                let end = (at + 8).min(len);
                let slice: Vec<char> = text[at..end].to_vec();
                for (i, c) in slice.into_iter().enumerate() {
                    text.insert(at + i, c);
                }
            }
            // Truncate.
            3 => text.truncate(at),
            // Swap two halves around the cut point.
            _ => {
                let tail: Vec<char> = text.drain(at..).collect();
                let head = std::mem::take(&mut text);
                text = tail;
                text.extend(head);
            }
        }
    }
    text.into_iter().collect()
}

/// The property every fuzz case asserts: the whole front end is total —
/// `Ok` or a structured error, never a panic.
fn front_end_is_total(input: &str) {
    let _ = lex(input);
    if let Ok(q) = parse_query(input) {
        let _ = normalize(&q);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Totally arbitrary strings: the front-end is total.
    #[test]
    fn frontend_never_panics_on_garbage(input in ".{0,200}") {
        let _ = lex(&input);
        if let Ok(q) = parse_query(&input) {
            let _ = normalize(&q);
        }
    }

    /// Query-shaped strings assembled from real grammar fragments: higher
    /// parse success rate, still must be total, and anything that parses
    /// and normalizes must round through the engine-compile step too.
    #[test]
    fn frontend_never_panics_on_query_shaped_input(
        pieces in prop::collection::vec(
            prop::sample::select(vec![
                "extract", "x:Entity", "a:Str,", "from", "\"t\"", "if", "(", ")",
                "/ROOT:{", "}", "x", "=", "//verb", "/dobj", "+", "^", "\"ate\"",
                "[text=\"ate\"]", "[@regex=\"[a-z]+\"]", "(x) in (y)", "satisfying",
                "(x near \"z\" {0.5})", "or", "with threshold 0.5", "excluding",
                "(str(x) matches \"a+\")", ",", "b.subtree",
            ]),
            1..24,
        )
    ) {
        let input = pieces.join(" ");
        if let Ok(q) = parse_query(&input) {
            let _ = normalize(&q);
        }
    }

    /// Mutated paper queries: start from a real QUERYLANG example and
    /// apply a random edit script (deletes, inserts, duplications,
    /// truncations, rotations). These inputs are "almost valid" — the
    /// nastiest region for a recursive-descent parser — and must still
    /// never panic.
    #[test]
    fn frontend_never_panics_on_mutated_paper_queries(
        seed in prop::sample::select(PAPER_QUERIES.to_vec()),
        script in prop::collection::vec(
            (0u8..=255, 0usize..4096, ".{0,12}"),
            1..8,
        ),
    ) {
        front_end_is_total(&mutate(seed, &script));
    }

    /// Single-byte-level damage to every paper query: each case removes,
    /// doubles, or replaces one character at a generated position.
    #[test]
    fn frontend_never_panics_on_single_edits(
        seed in prop::sample::select(PAPER_QUERIES.to_vec()),
        pos in 0usize..4096,
        replacement in prop::sample::select(vec![
            "", "\"", "(", ")", "[", "]", "{", "}", "/", "^", "∧", "∼", "\\", "\u{0}", "9",
        ]),
    ) {
        let chars: Vec<char> = seed.chars().collect();
        let at = pos % chars.len();
        let mut edited: String = chars[..at].iter().collect();
        edited.push_str(replacement);
        edited.extend(&chars[at + 1..]);
        front_end_is_total(&edited);
    }

    /// The lexer round-trips displayable tokens: rendering then re-lexing
    /// yields the same token stream.
    #[test]
    fn lexer_round_trips_rendered_tokens(input in "[a-z ()=+/*{}\\[\\],:0-9\"^~@.]{0,80}") {
        if let Ok(tokens) = lex(&input) {
            let rendered = tokens
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(" ");
            if let Ok(again) = lex(&rendered) {
                prop_assert_eq!(tokens, again, "render: {}", rendered);
            }
        }
    }
}
