//! Tokenizer for the KOKO language.

use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier (may contain `.` as in `input.txt` / `b.subtree`).
    Ident(String),
    /// Quoted string literal.
    Str(String),
    /// Numeric literal.
    Num(f64),
    // Punctuation / operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    DoubleLBracket,
    DoubleRBracket,
    Comma,
    Colon,
    Eq,
    Plus,
    Slash,
    DoubleSlash,
    Star,
    Caret,
    Tilde,
    At,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Str(s) => write!(f, "\"{s}\""),
            Tok::Num(n) => write!(f, "{n}"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::DoubleLBracket => write!(f, "[["),
            Tok::DoubleRBracket => write!(f, "]]"),
            Tok::Comma => write!(f, ","),
            Tok::Colon => write!(f, ":"),
            Tok::Eq => write!(f, "="),
            Tok::Plus => write!(f, "+"),
            Tok::Slash => write!(f, "/"),
            Tok::DoubleSlash => write!(f, "//"),
            Tok::Star => write!(f, "*"),
            Tok::Caret => write!(f, "^"),
            Tok::Tilde => write!(f, "~"),
            Tok::At => write!(f, "@"),
        }
    }
}

/// Lexing error with character position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub message: String,
    pub position: usize,
}

/// Tokenize KOKO query text. Accepts the unicode `∧` as [`Tok::Caret`];
/// `#` starts a comment running to end of line.
pub fn lex(input: &str) -> Result<Vec<Tok>, LexError> {
    let chars: Vec<char> = input.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            // Line comments: `#` to end of line (QUERYLANG.md examples
            // carry inline annotations; they must lex verbatim).
            '#' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            '{' => {
                out.push(Tok::LBrace);
                i += 1;
            }
            '}' => {
                out.push(Tok::RBrace);
                i += 1;
            }
            '[' => {
                if chars.get(i + 1) == Some(&'[') {
                    out.push(Tok::DoubleLBracket);
                    i += 2;
                } else {
                    out.push(Tok::LBracket);
                    i += 1;
                }
            }
            ']' => {
                if chars.get(i + 1) == Some(&']') {
                    out.push(Tok::DoubleRBracket);
                    i += 2;
                } else {
                    out.push(Tok::RBracket);
                    i += 1;
                }
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            ':' => {
                out.push(Tok::Colon);
                i += 1;
            }
            '=' => {
                out.push(Tok::Eq);
                i += 1;
            }
            '+' => {
                out.push(Tok::Plus);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '^' | '\u{2227}' => {
                out.push(Tok::Caret);
                i += 1;
            }
            '~' | '\u{223c}' => {
                out.push(Tok::Tilde);
                i += 1;
            }
            '@' => {
                out.push(Tok::At);
                i += 1;
            }
            '/' => {
                if chars.get(i + 1) == Some(&'/') {
                    out.push(Tok::DoubleSlash);
                    i += 2;
                } else {
                    out.push(Tok::Slash);
                    i += 1;
                }
            }
            '"' | '\u{201c}' | '\u{201d}' => {
                let close = |ch: char| ch == '"' || ch == '\u{201c}' || ch == '\u{201d}';
                let start = i + 1;
                let mut j = start;
                let mut s = String::new();
                while j < chars.len() && !close(chars[j]) {
                    if chars[j] == '\\' && j + 1 < chars.len() {
                        s.push(chars[j + 1]);
                        j += 2;
                    } else {
                        s.push(chars[j]);
                        j += 1;
                    }
                }
                if j >= chars.len() {
                    return Err(LexError {
                        message: "unterminated string literal".into(),
                        position: i,
                    });
                }
                out.push(Tok::Str(s));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let n: f64 = text.parse().map_err(|_| LexError {
                    message: format!("bad number {text:?}"),
                    position: start,
                })?;
                out.push(Tok::Num(n));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_alphanumeric()
                        || chars[i] == '_'
                        || chars[i] == '-'
                        // Idents may contain interior dots ("input.txt",
                        // "b.subtree") but never end with one.
                        || (chars[i] == '.'
                            && chars
                                .get(i + 1)
                                .is_some_and(|c| c.is_alphanumeric() || *c == '_')))
                {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                out.push(Tok::Ident(text));
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character {other:?}"),
                    position: i,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_paths_and_strings() {
        let toks = lex("a = //verb[text=\"ate\"]/dobj").unwrap();
        assert_eq!(
            toks,
            vec![
                Tok::Ident("a".into()),
                Tok::Eq,
                Tok::DoubleSlash,
                Tok::Ident("verb".into()),
                Tok::LBracket,
                Tok::Ident("text".into()),
                Tok::Eq,
                Tok::Str("ate".into()),
                Tok::RBracket,
                Tok::Slash,
                Tok::Ident("dobj".into()),
            ]
        );
    }

    #[test]
    fn double_brackets_and_weights() {
        let toks = lex("(x [[\"serves coffee\"]] {0.5})").unwrap();
        assert!(toks.contains(&Tok::DoubleLBracket));
        assert!(toks.contains(&Tok::DoubleRBracket));
        assert!(toks.contains(&Tok::Num(0.5)));
    }

    #[test]
    fn dotted_idents() {
        let toks = lex("from input.txt if").unwrap();
        assert_eq!(toks[1], Tok::Ident("input.txt".into()));
        let toks = lex("d = (b.subtree)").unwrap();
        assert!(toks.contains(&Tok::Ident("b.subtree".into())));
    }

    #[test]
    fn unicode_operators() {
        let toks = lex("e = a + \u{2227} + b").unwrap();
        assert!(toks.contains(&Tok::Caret));
        let toks = lex("str(v) \u{223c} \"is\"").unwrap();
        assert!(toks.contains(&Tok::Tilde));
    }

    #[test]
    fn smart_quotes() {
        let toks = lex("c = b//\u{201c}delicious\u{201d}").unwrap();
        assert!(toks.contains(&Tok::Str("delicious".into())));
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("§").is_err());
    }

    #[test]
    fn line_comments_are_skipped() {
        let toks = lex("a = //verb,   # any verb node\nb = a/dobj").unwrap();
        assert_eq!(toks, lex("a = //verb,\nb = a/dobj").unwrap());
        // A comment inside a string literal is content, not a comment.
        assert_eq!(lex("\"#x\"").unwrap(), vec![Tok::Str("#x".into())]);
        // Comment running to end of input (no trailing newline).
        assert_eq!(lex("a # trailing").unwrap(), vec![Tok::Ident("a".into())]);
    }

    #[test]
    fn numbers() {
        assert_eq!(lex("0.8").unwrap(), vec![Tok::Num(0.8)]);
        assert_eq!(lex("1").unwrap(), vec![Tok::Num(1.0)]);
    }
}
