//! `koko-lang` — the KOKO query/extraction language (§2) and its normalizer
//! (§4.1).
//!
//! The language combines three families of conditions in one declarative
//! query:
//!
//! 1. **surface conditions** — token sequences, regular expressions, elastic
//!    spans (`∧`) over the sentence text;
//! 2. **hierarchy conditions** — XPath-like paths over the dependency tree
//!    (`a = //verb`, `b = a/dobj`, `c = b//"delicious"`);
//! 3. **similarity & aggregation** — `satisfying` clauses whose weighted
//!    boolean / descriptor conditions aggregate evidence across a document.
//!
//! ```
//! use koko_lang::{parse_query, normalize};
//!
//! let q = parse_query(koko_lang::queries::EXAMPLE_2_1).unwrap();
//! assert_eq!(q.outputs.len(), 2);
//! let n = normalize(&q).unwrap();
//! assert!(n.var("d").is_some());
//! ```

pub mod ast;
pub mod lexer;
pub mod normalize;
pub mod parser;
pub mod queries;

pub use ast::*;
pub use lexer::{lex, Tok};
pub use normalize::{normalize, NConstraint, NVar, NVarKind, NormQuery};
pub use parser::{parse_query, ParseError};
