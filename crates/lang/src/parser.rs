//! Recursive-descent parser for the KOKO language.
//!
//! Every query in the paper (Examples 2.1–2.3, 4.1, the §6.3 Chocolate /
//! Title / DateOfBirth queries, and the Appendix A Figures 9–11) parses with
//! this grammar; see the tests.

use crate::ast::*;
use crate::lexer::{lex, LexError, Tok};
use koko_nlp::{Axis, EntityType, PosTag};
use std::fmt;

/// Parse error with a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: format!("lex error at {}: {}", e.position, e.message),
        }
    }
}

/// Parse a KOKO query.
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let toks = lex(input)?;
    let mut p = Parser { toks, pos: 0 };
    let q = p.query()?;
    if p.pos != p.toks.len() {
        return Err(p.err("trailing tokens after query"));
    }
    Ok(q)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn err(&self, msg: &str) -> ParseError {
        let ctx: Vec<String> = self.toks[self.pos.min(self.toks.len())..]
            .iter()
            .take(5)
            .map(|t| t.to_string())
            .collect();
        ParseError {
            message: format!("{msg} (at: {} …)", ctx.join(" ")),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Tok) -> Result<(), ParseError> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {t}")))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected identifier"))
            }
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw) => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.err(&format!("expected keyword '{kw}'"))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Str(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected string literal"))
            }
        }
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        match self.bump() {
            Some(Tok::Num(n)) => Ok(n),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected number"))
            }
        }
    }

    // ------------------------------------------------------------------

    fn query(&mut self) -> Result<Query, ParseError> {
        self.keyword("extract")?;
        let outputs = self.outputs()?;
        self.keyword("from")?;
        let source = match self.bump() {
            Some(Tok::Str(s)) => s,
            Some(Tok::Ident(s)) => s,
            _ => return Err(self.err("expected source after 'from'")),
        };
        self.keyword("if")?;
        self.expect(&Tok::LParen)?;
        let (decls, constraints) = self.body()?;
        self.expect(&Tok::RParen)?;

        let mut satisfying = Vec::new();
        while self.at_keyword("satisfying") {
            satisfying.push(self.sat_clause()?);
        }
        let mut excluding = Vec::new();
        if self.at_keyword("excluding") {
            self.bump();
            loop {
                self.expect(&Tok::LParen)?;
                let cond = self.condition()?;
                // Tolerate (and ignore) a weight inside excluding conditions.
                if self.peek() == Some(&Tok::LBrace) {
                    self.bump();
                    self.number()?;
                    self.expect(&Tok::RBrace)?;
                }
                self.expect(&Tok::RParen)?;
                excluding.push(cond);
                if self.at_keyword("or") {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        Ok(Query {
            outputs,
            source,
            decls,
            constraints,
            satisfying,
            excluding,
        })
    }

    fn outputs(&mut self) -> Result<Vec<OutputVar>, ParseError> {
        let mut out = Vec::new();
        loop {
            let name = self.ident()?;
            self.expect(&Tok::Colon)?;
            let ty_name = self.ident()?;
            let ty = if ty_name.eq_ignore_ascii_case("str") {
                OutType::Str
            } else if ty_name.eq_ignore_ascii_case("entity") {
                OutType::Entity
            } else if let Some(et) = EntityType::from_name(&ty_name) {
                OutType::Typed(et)
            } else {
                return Err(self.err(&format!("unknown output type {ty_name:?}")));
            };
            out.push(OutputVar { name, ty });
            if self.peek() == Some(&Tok::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        Ok(out)
    }

    /// The `if ( … )` body: optional `/ROOT:{ decls }` block plus
    /// constraints.
    fn body(&mut self) -> Result<(Vec<Decl>, Vec<VarConstraint>), ParseError> {
        let mut decls = Vec::new();
        let mut constraints = Vec::new();
        if self.peek() == Some(&Tok::RParen) {
            return Ok((decls, constraints)); // empty extract clause: if ()
        }
        if self.peek() == Some(&Tok::Slash) {
            self.bump();
            let anchor = self.ident()?;
            if !anchor.eq_ignore_ascii_case("root") {
                return Err(self.err("expected /ROOT: block"));
            }
            self.expect(&Tok::Colon)?;
            self.expect(&Tok::LBrace)?;
            loop {
                let name = self.ident()?;
                self.expect(&Tok::Eq)?;
                let expr = self.expr()?;
                decls.push(Decl { name, expr });
                if self.peek() == Some(&Tok::Comma) {
                    self.bump();
                    // Trailing comma before `}` (QUERYLANG.md writes
                    // declaration blocks this way).
                    if self.peek() == Some(&Tok::RBrace) {
                        break;
                    }
                } else {
                    break;
                }
            }
            self.expect(&Tok::RBrace)?;
        }
        while self.peek() == Some(&Tok::LParen) {
            self.expect(&Tok::LParen)?;
            let left = self.ident()?;
            self.expect(&Tok::RParen)?;
            let op = if self.at_keyword("in") {
                self.bump();
                ConstraintOp::In
            } else if self.at_keyword("eq") {
                self.bump();
                ConstraintOp::Eq
            } else {
                return Err(self.err("expected 'in' or 'eq'"));
            };
            self.expect(&Tok::LParen)?;
            let right = self.ident()?;
            self.expect(&Tok::RParen)?;
            constraints.push(VarConstraint { left, op, right });
        }
        Ok((decls, constraints))
    }

    /// Declaration right-hand side: atoms joined by `+`.
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut atoms = vec![self.atom()?];
        while self.peek() == Some(&Tok::Plus) {
            self.bump();
            atoms.push(self.atom()?);
        }
        if atoms.len() == 1 {
            Ok(match atoms.pop().expect("one atom") {
                SpanAtom::Path(p) => Expr::Path(p),
                SpanAtom::Ident(name) => Expr::Ident(name),
                other => Expr::Span(vec![other]),
            })
        } else {
            Ok(Expr::Span(atoms))
        }
    }

    fn atom(&mut self) -> Result<SpanAtom, ParseError> {
        match self.peek() {
            Some(Tok::LParen) => {
                self.bump();
                let inner = self.atom()?;
                self.expect(&Tok::RParen)?;
                Ok(inner)
            }
            Some(Tok::Slash) | Some(Tok::DoubleSlash) => {
                Ok(SpanAtom::Path(self.path(PathStart::Root)?))
            }
            Some(Tok::Caret) => {
                self.bump();
                let mut conds = Vec::new();
                if self.peek() == Some(&Tok::LBracket) {
                    self.bump();
                    loop {
                        conds.push(self.elastic_cond()?);
                        if self.peek() == Some(&Tok::Comma) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.expect(&Tok::RBracket)?;
                }
                Ok(SpanAtom::Elastic(conds))
            }
            Some(Tok::Str(_)) => {
                let s = self.string()?;
                let words: Vec<String> = s.split_whitespace().map(str::to_string).collect();
                Ok(SpanAtom::Tokens(words))
            }
            Some(Tok::Ident(_)) => {
                let name = self.ident()?;
                if let Some(base) = name.strip_suffix(".subtree") {
                    return Ok(SpanAtom::Subtree(base.to_string()));
                }
                // Variable-rooted path: `a/dobj`, `b//"delicious"`.
                if matches!(self.peek(), Some(Tok::Slash) | Some(Tok::DoubleSlash)) {
                    return Ok(SpanAtom::Path(self.path(PathStart::Var(name))?));
                }
                Ok(SpanAtom::Ident(name))
            }
            _ => Err(self.err("expected span atom")),
        }
    }

    /// Path steps starting at the current `/` or `//` token.
    fn path(&mut self, start: PathStart) -> Result<PathExpr, ParseError> {
        let mut steps = Vec::new();
        loop {
            let axis = match self.peek() {
                Some(Tok::Slash) => Axis::Child,
                Some(Tok::DoubleSlash) => Axis::Descendant,
                _ => break,
            };
            self.bump();
            let label = match self.bump() {
                Some(Tok::Ident(name)) => StepLabel::from_ident(&name)
                    .ok_or_else(|| self.err(&format!("unknown step label {name:?}")))?,
                Some(Tok::Str(w)) => StepLabel::Word(w.to_lowercase()),
                Some(Tok::Star) => StepLabel::Wildcard,
                _ => return Err(self.err("expected step label")),
            };
            let mut conds = Vec::new();
            if self.peek() == Some(&Tok::LBracket) {
                self.bump();
                loop {
                    conds.push(self.node_cond()?);
                    if self.peek() == Some(&Tok::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.expect(&Tok::RBracket)?;
            }
            steps.push(Step { axis, label, conds });
        }
        if steps.is_empty() {
            return Err(self.err("empty path"));
        }
        Ok(PathExpr { start, steps })
    }

    /// `[@regex="…"]`, `[@pos="noun"]`, `[text="ate"]`, `[etype="Person"]`.
    fn node_cond(&mut self) -> Result<NodeCond, ParseError> {
        let at = self.peek() == Some(&Tok::At);
        if at {
            self.bump();
        }
        let key = self.ident()?;
        self.expect(&Tok::Eq)?;
        let value = self.string()?;
        match key.to_ascii_lowercase().as_str() {
            "regex" => Ok(NodeCond::Regex(value)),
            "pos" => PosTag::from_name(&value)
                .map(NodeCond::Pos)
                .ok_or_else(|| self.err(&format!("unknown POS tag {value:?}"))),
            "etype" => EntityType::from_name(&value)
                .map(NodeCond::Etype)
                .ok_or_else(|| self.err(&format!("unknown entity type {value:?}"))),
            "text" => Ok(NodeCond::Text(value.to_lowercase())),
            other => Err(self.err(&format!("unknown node condition {other:?}"))),
        }
    }

    /// `etype="Entity"`, `@regex="…"`, `mintok=1`, `maxtok=4`.
    fn elastic_cond(&mut self) -> Result<ElasticCond, ParseError> {
        let at = self.peek() == Some(&Tok::At);
        if at {
            self.bump();
        }
        let key = self.ident()?;
        self.expect(&Tok::Eq)?;
        match key.to_ascii_lowercase().as_str() {
            "etype" => {
                let value = self.string()?;
                if value.eq_ignore_ascii_case("entity") {
                    Ok(ElasticCond::Etype(None))
                } else {
                    EntityType::from_name(&value)
                        .map(|t| ElasticCond::Etype(Some(t)))
                        .ok_or_else(|| self.err(&format!("unknown entity type {value:?}")))
                }
            }
            "regex" => Ok(ElasticCond::Regex(self.string()?)),
            "mintok" => Ok(ElasticCond::MinTok(self.number()? as u32)),
            "maxtok" => Ok(ElasticCond::MaxTok(self.number()? as u32)),
            other => Err(self.err(&format!("unknown elastic condition {other:?}"))),
        }
    }

    fn sat_clause(&mut self) -> Result<SatClause, ParseError> {
        self.keyword("satisfying")?;
        let var = self.ident()?;
        let mut conds = Vec::new();
        loop {
            self.expect(&Tok::LParen)?;
            let cond = self.condition()?;
            let weight = if self.peek() == Some(&Tok::LBrace) {
                self.bump();
                let w = self.number()?;
                self.expect(&Tok::RBrace)?;
                w
            } else {
                1.0
            };
            self.expect(&Tok::RParen)?;
            conds.push(WeightedCond { cond, weight });
            if self.at_keyword("or") {
                self.bump();
            } else {
                break;
            }
        }
        let threshold = if self.at_keyword("with") {
            self.bump();
            self.keyword("threshold")?;
            Some(self.number()?)
        } else {
            None
        };
        Ok(SatClause {
            var,
            conds,
            threshold,
        })
    }

    /// One boolean/descriptor condition (§4.4.1).
    fn condition(&mut self) -> Result<Cond, ParseError> {
        match self.peek() {
            // str(x) …
            Some(Tok::Ident(s)) if s == "str" && self.peek2() == Some(&Tok::LParen) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let var = self.ident()?;
                self.expect(&Tok::RParen)?;
                let pred = if self.at_keyword("contains") {
                    self.bump();
                    Pred::Contains(self.string()?)
                } else if self.at_keyword("mentions") {
                    self.bump();
                    Pred::Mentions(self.string()?)
                } else if self.at_keyword("matches") {
                    self.bump();
                    Pred::Matches(self.string()?)
                } else if self.peek() == Some(&Tok::Tilde) || self.at_keyword("similarto") {
                    self.bump();
                    Pred::SimilarTo(self.string()?)
                } else if self.at_keyword("in") {
                    self.bump();
                    self.keyword("dict")?;
                    self.expect(&Tok::LParen)?;
                    let d = self.string()?;
                    self.expect(&Tok::RParen)?;
                    Pred::InDict(d)
                } else {
                    return Err(self.err("expected contains/mentions/matches/~/in dict"));
                };
                Ok(Cond { var, pred })
            }
            // "prefix" x
            Some(Tok::Str(_)) => {
                let s = self.string()?;
                let var = self.ident()?;
                Ok(Cond {
                    var,
                    pred: Pred::PrecededBy(s),
                })
            }
            // [[descriptor]] x
            Some(Tok::DoubleLBracket) => {
                self.bump();
                let d = self.string()?;
                self.expect(&Tok::DoubleRBracket)?;
                let var = self.ident()?;
                Ok(Cond {
                    var,
                    pred: Pred::DescLeft(d),
                })
            }
            // x …
            Some(Tok::Ident(_)) => {
                let var = self.ident()?;
                let pred = match self.peek() {
                    Some(Tok::Str(_)) => Pred::FollowedBy(self.string()?),
                    Some(Tok::DoubleLBracket) => {
                        self.bump();
                        let d = self.string()?;
                        self.expect(&Tok::DoubleRBracket)?;
                        Pred::DescRight(d)
                    }
                    Some(Tok::Tilde) => {
                        self.bump();
                        Pred::SimilarTo(self.string()?)
                    }
                    Some(Tok::Ident(kw)) if kw.eq_ignore_ascii_case("near") => {
                        self.bump();
                        Pred::Near(self.string()?)
                    }
                    Some(Tok::Ident(kw)) if kw.eq_ignore_ascii_case("similarto") => {
                        self.bump();
                        Pred::SimilarTo(self.string()?)
                    }
                    _ => return Err(self.err("expected condition operator")),
                };
                Ok(Cond { var, pred })
            }
            _ => Err(self.err("expected condition")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries;

    #[test]
    fn example_21_parses() {
        let q = parse_query(queries::EXAMPLE_2_1).unwrap();
        assert_eq!(q.outputs.len(), 2);
        assert_eq!(q.outputs[0].ty, OutType::Entity);
        assert_eq!(q.outputs[1].ty, OutType::Str);
        assert_eq!(q.decls.len(), 4);
        assert_eq!(q.constraints.len(), 1);
        assert_eq!(q.constraints[0].op, ConstraintOp::In);
        // b = a/dobj is a var-rooted path.
        match &q.decls[1].expr {
            Expr::Path(p) => assert_eq!(p.start, PathStart::Var("a".into())),
            other => panic!("expected path, got {other:?}"),
        }
        // d = (b.subtree)
        match &q.decls[3].expr {
            Expr::Span(atoms) => assert_eq!(atoms[0], SpanAtom::Subtree("b".into())),
            other => panic!("expected span, got {other:?}"),
        }
    }

    #[test]
    fn example_22_parses() {
        let q = parse_query(queries::EXAMPLE_2_2_Q1).unwrap();
        assert_eq!(q.outputs[0].ty, OutType::Typed(koko_nlp::EntityType::Gpe));
        assert!(q.decls.is_empty());
        assert_eq!(q.satisfying.len(), 1);
        let sat = &q.satisfying[0];
        assert_eq!(sat.var, "a");
        assert_eq!(sat.conds.len(), 1);
        assert_eq!(sat.conds[0].cond.pred, Pred::SimilarTo("city".into()));
    }

    #[test]
    fn example_23_parses() {
        let q = parse_query(queries::EXAMPLE_2_3).unwrap();
        assert_eq!(q.satisfying.len(), 1);
        let sat = &q.satisfying[0];
        assert_eq!(sat.conds.len(), 5);
        assert_eq!(sat.threshold, Some(0.8));
        assert_eq!(sat.conds[0].weight, 1.0);
        assert_eq!(sat.conds[3].weight, 0.5);
        assert_eq!(
            sat.conds[3].cond.pred,
            Pred::DescRight("serves coffee".into())
        );
        assert_eq!(q.excluding.len(), 1);
        assert_eq!(q.excluding[0].pred, Pred::Matches("[Ll]a Marzocco".into()));
    }

    #[test]
    fn example_41_parses() {
        let q = parse_query(queries::EXAMPLE_4_1).unwrap();
        assert_eq!(q.decls.len(), 5);
        // e = a + ^ + b + ^ + c
        match &q.decls[4].expr {
            Expr::Span(atoms) => {
                assert_eq!(atoms.len(), 5);
                assert_eq!(atoms[1], SpanAtom::Elastic(vec![]));
            }
            other => panic!("expected span, got {other:?}"),
        }
        // b = //verb[text="ate"]
        match &q.decls[1].expr {
            Expr::Path(p) => {
                assert_eq!(p.steps[0].conds, vec![NodeCond::Text("ate".into())]);
            }
            other => panic!("expected path, got {other:?}"),
        }
    }

    #[test]
    fn scaleup_queries_parse() {
        let q = parse_query(queries::CHOCOLATE).unwrap();
        assert_eq!(q.satisfying.len(), 1);
        assert_eq!(
            q.satisfying[0].conds[0].cond.pred,
            Pred::SimilarTo("is".into())
        );
        let q = parse_query(queries::TITLE).unwrap();
        assert_eq!(q.decls.len(), 4);
        let q = parse_query(queries::DATE_OF_BIRTH).unwrap();
        assert_eq!(q.decls.len(), 1);
        match &q.decls[0].expr {
            Expr::Ident(name) => assert_eq!(name, "verb"),
            other => panic!("expected bare ident, got {other:?}"),
        }
    }

    #[test]
    fn figure9_cafe_query_parses() {
        let q = parse_query(&queries::cafe_query(0.8)).unwrap();
        assert_eq!(q.satisfying.len(), 1);
        assert_eq!(q.satisfying[0].conds.len(), 17);
        assert!(q.excluding.len() >= 15);
        assert!(q
            .excluding
            .iter()
            .any(|c| c.pred == Pred::InDict("Location".into())));
    }

    #[test]
    fn figure10_11_parse() {
        let q = parse_query(&queries::facility_query(0.8)).unwrap();
        assert_eq!(q.satisfying[0].conds.len(), 3);
        assert_eq!(q.excluding.len(), 8);
        let q = parse_query(&queries::sports_team_query(0.8)).unwrap();
        assert_eq!(q.satisfying[0].conds.len(), 6);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_query("extract from x if ()").is_err());
        assert!(parse_query("extract a:Entity from x").is_err());
        assert!(parse_query("extract a:Nope from x if ()").is_err());
        assert!(parse_query("extract a:Entity from x if ( /ROOT:{ a = } )").is_err());
        assert!(parse_query("extract a:Entity from x if () satisfying a (a zzz \"x\")").is_err());
    }

    #[test]
    fn elastic_with_conditions() {
        let q = parse_query(
            "extract x:Str from t if (/ROOT:{ x = //verb + ^[etype=\"Entity\", mintok=1] })",
        )
        .unwrap();
        match &q.decls[0].expr {
            Expr::Span(atoms) => match &atoms[1] {
                SpanAtom::Elastic(conds) => {
                    assert_eq!(conds.len(), 2);
                    assert_eq!(conds[0], ElasticCond::Etype(None));
                    assert_eq!(conds[1], ElasticCond::MinTok(1));
                }
                other => panic!("expected elastic, got {other:?}"),
            },
            other => panic!("expected span, got {other:?}"),
        }
    }

    #[test]
    fn regex_node_condition() {
        let q = parse_query(
            "extract x:Str from t if (/ROOT:{ x = //*[@regex=\"[A-Z].*\", @pos=\"noun\"] })",
        )
        .unwrap();
        match &q.decls[0].expr {
            Expr::Path(p) => {
                assert_eq!(p.steps[0].label, StepLabel::Wildcard);
                assert_eq!(p.steps[0].conds.len(), 2);
            }
            other => panic!("expected path, got {other:?}"),
        }
    }
}
