//! Query normalization (§4.1).
//!
//! Path expressions are expanded into their absolute form (`b = a/dobj` with
//! `a = //verb` becomes `b = //verb/dobj`), constraints among variables are
//! made explicit (`a parentOf b`, `b ancestorOf c`), span declarations are
//! flattened into per-atom variables with synthesized names for inline
//! atoms (`v1 = ∧` in Example 4.1), and ambiguous identifiers are resolved
//! against the declaration environment.

use crate::ast::*;
use crate::parser::ParseError;
use koko_nlp::EntityType;
use std::collections::HashMap;

/// A fully normalized query, ready for the evaluation engine.
#[derive(Debug, Clone, PartialEq)]
pub struct NormQuery {
    pub outputs: Vec<OutputVar>,
    pub source: String,
    pub vars: Vec<NVar>,
    pub constraints: Vec<NConstraint>,
    pub satisfying: Vec<SatClause>,
    pub excluding: Vec<Cond>,
}

impl NormQuery {
    /// Index of a variable by name.
    pub fn var(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|v| v.name == name)
    }

    /// All node variables with their absolute paths.
    pub fn node_vars(&self) -> impl Iterator<Item = (usize, &NVar, &[Step])> {
        self.vars
            .iter()
            .enumerate()
            .filter_map(|(i, v)| match &v.kind {
                NVarKind::Node { abs } => Some((i, v, abs.as_slice())),
                _ => None,
            })
    }

    /// Whether the extract clause declares anything (an empty `if ()` means
    /// every sentence is a candidate — Example 2.3).
    pub fn has_extract_constraints(&self) -> bool {
        self.vars.iter().any(|v| {
            matches!(
                v.kind,
                NVarKind::Node { .. } | NVarKind::Span { .. } | NVarKind::Tokens { .. }
            )
        })
    }
}

/// A normalized variable.
#[derive(Debug, Clone, PartialEq)]
pub struct NVar {
    pub name: String,
    pub kind: NVarKind,
    /// Declared by the user (false for synthesized `∧` variables etc.).
    pub user_defined: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub enum NVarKind {
    /// A node term with an absolute path from the dependency root.
    Node { abs: Vec<Step> },
    /// An entity-typed variable (`a = Entity`, or an undeclared typed
    /// output); `None` means any entity type.
    Entity { etype: Option<EntityType> },
    /// A span variable: the ordered atoms (by variable name) it
    /// concatenates.
    Span { atoms: Vec<String> },
    /// The subtree span of a node variable.
    Subtree { base: String },
    /// A literal token sequence.
    Tokens { words: Vec<String> },
    /// An elastic span (`∧`).
    Elastic { conds: Vec<ElasticCond> },
}

/// Normalized constraints: the derived structural constraints of §4.1 plus
/// the user's `in`/`eq`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NConstraint {
    ParentOf(String, String),
    AncestorOf(String, String),
    In(String, String),
    Eq(String, String),
}

/// Normalize a parsed query (§4.1's "Normalize query" module).
pub fn normalize(q: &Query) -> Result<NormQuery, ParseError> {
    let mut n = Normalizer {
        vars: Vec::new(),
        by_name: HashMap::new(),
        constraints: Vec::new(),
        synth: 0,
    };

    for decl in &q.decls {
        n.declare(decl)?;
    }

    // Undeclared output variables bind by entity type (Title's `a:Person`,
    // DateOfBirth's `a:Person, b:Date`, the cafe query's `x:Entity`).
    for out in &q.outputs {
        if n.by_name.contains_key(&out.name) {
            continue;
        }
        match out.ty.entity_filter() {
            Some(etype) => {
                n.push(out.name.clone(), NVarKind::Entity { etype }, true)?;
            }
            None => {
                return Err(ParseError {
                    message: format!(
                        "output variable {:?} of type Str must be declared in the extract block",
                        out.name
                    ),
                });
            }
        }
    }

    // User constraints: validate both sides exist.
    for c in &q.constraints {
        for side in [&c.left, &c.right] {
            if !n.by_name.contains_key(side) {
                return Err(ParseError {
                    message: format!("constraint references unknown variable {side:?}"),
                });
            }
        }
        n.constraints.push(match c.op {
            ConstraintOp::In => NConstraint::In(c.left.clone(), c.right.clone()),
            ConstraintOp::Eq => NConstraint::Eq(c.left.clone(), c.right.clone()),
        });
    }

    // Satisfying / excluding clauses: the variable must exist.
    for sat in &q.satisfying {
        if !n.by_name.contains_key(&sat.var) {
            return Err(ParseError {
                message: format!("satisfying clause for unknown variable {:?}", sat.var),
            });
        }
    }
    for cond in &q.excluding {
        if !n.by_name.contains_key(&cond.var) {
            return Err(ParseError {
                message: format!("excluding condition on unknown variable {:?}", cond.var),
            });
        }
    }

    Ok(NormQuery {
        outputs: q.outputs.clone(),
        source: q.source.clone(),
        vars: n.vars,
        constraints: n.constraints,
        satisfying: q.satisfying.clone(),
        excluding: q.excluding.clone(),
    })
}

struct Normalizer {
    vars: Vec<NVar>,
    by_name: HashMap<String, usize>,
    constraints: Vec<NConstraint>,
    synth: u32,
}

impl Normalizer {
    fn push(&mut self, name: String, kind: NVarKind, user: bool) -> Result<usize, ParseError> {
        if self.by_name.contains_key(&name) {
            return Err(ParseError {
                message: format!("duplicate variable {name:?}"),
            });
        }
        let idx = self.vars.len();
        self.by_name.insert(name.clone(), idx);
        self.vars.push(NVar {
            name,
            kind,
            user_defined: user,
        });
        Ok(idx)
    }

    fn fresh(&mut self, prefix: &str) -> String {
        self.synth += 1;
        format!("${prefix}{}", self.synth)
    }

    fn declare(&mut self, decl: &Decl) -> Result<(), ParseError> {
        let kind = match &decl.expr {
            Expr::Path(p) => self.resolve_path(&decl.name, p)?,
            Expr::Ident(name) => self.resolve_ident(name)?,
            Expr::Span(atoms) => {
                let mut names = Vec::with_capacity(atoms.len());
                for atom in atoms {
                    names.push(self.atom_var(&decl.name, atom)?);
                }
                NVarKind::Span { atoms: names }
            }
        };
        self.push(decl.name.clone(), kind, true)?;
        Ok(())
    }

    /// Expand a path into absolute form, deriving the §4.1 structural
    /// constraint against the base variable.
    fn resolve_path(&mut self, name: &str, p: &PathExpr) -> Result<NVarKind, ParseError> {
        let mut abs: Vec<Step> = Vec::new();
        if let PathStart::Var(base) = &p.start {
            let idx = *self.by_name.get(base).ok_or_else(|| ParseError {
                message: format!("path references unknown variable {base:?}"),
            })?;
            match &self.vars[idx].kind {
                NVarKind::Node { abs: base_abs } => abs.extend(base_abs.iter().cloned()),
                other => {
                    return Err(ParseError {
                        message: format!(
                            "path base {base:?} must be a node variable, found {other:?}"
                        ),
                    })
                }
            }
            // Derived constraint (Example 4.1): one child step → parentOf;
            // anything else → ancestorOf.
            let c = if p.steps.len() == 1 && p.steps[0].axis == Axis::Child {
                NConstraint::ParentOf(base.clone(), name.to_string())
            } else {
                NConstraint::AncestorOf(base.clone(), name.to_string())
            };
            self.constraints.push(c);
        }
        abs.extend(p.steps.iter().cloned());
        Ok(NVarKind::Node { abs })
    }

    /// Resolve a bare identifier on a declaration's right-hand side.
    fn resolve_ident(&mut self, ident: &str) -> Result<NVarKind, ParseError> {
        if ident.eq_ignore_ascii_case("entity") {
            return Ok(NVarKind::Entity { etype: None });
        }
        if let Some(et) = EntityType::from_name(ident) {
            return Ok(NVarKind::Entity { etype: Some(et) });
        }
        if let Some(label) = StepLabel::from_ident(ident) {
            // Bare label: the DateOfBirth query's `v = verb` ≡ `//verb`.
            return Ok(NVarKind::Node {
                abs: vec![Step {
                    axis: Axis::Descendant,
                    label,
                    conds: vec![],
                }],
            });
        }
        Err(ParseError {
            message: format!("cannot resolve identifier {ident:?} in declaration"),
        })
    }

    /// Lift a span atom to a variable name, synthesizing variables for
    /// inline atoms (Example 4.1's `v1 = ∧`, `v2 = ∧`).
    fn atom_var(&mut self, owner: &str, atom: &SpanAtom) -> Result<String, ParseError> {
        match atom {
            SpanAtom::Ident(name) => {
                if self.by_name.contains_key(name) {
                    return Ok(name.clone());
                }
                // An identifier that is not (yet) declared: an output
                // variable used positionally (Title's `c = a + ∧ + v + …`)
                // stays a forward reference by name; entity/labels resolve.
                match self.resolve_ident(name) {
                    Ok(kind) => {
                        let fresh = self.fresh(&format!("{owner}_"));
                        self.push(fresh.clone(), kind, false)?;
                        Ok(fresh)
                    }
                    Err(_) => Ok(name.clone()), // forward reference
                }
            }
            SpanAtom::Path(p) => {
                let fresh = self.fresh(&format!("{owner}_p"));
                let kind = self.resolve_path(&fresh, p)?;
                self.push(fresh.clone(), kind, false)?;
                Ok(fresh)
            }
            SpanAtom::Subtree(base) => {
                if !self.by_name.contains_key(base) {
                    return Err(ParseError {
                        message: format!(".subtree of unknown variable {base:?}"),
                    });
                }
                let fresh = self.fresh(&format!("{owner}_st"));
                self.push(
                    fresh.clone(),
                    NVarKind::Subtree { base: base.clone() },
                    false,
                )?;
                Ok(fresh)
            }
            SpanAtom::Tokens(words) => {
                let fresh = self.fresh(&format!("{owner}_t"));
                self.push(
                    fresh.clone(),
                    NVarKind::Tokens {
                        words: words.iter().map(|w| w.to_lowercase()).collect(),
                    },
                    false,
                )?;
                Ok(fresh)
            }
            SpanAtom::Elastic(conds) => {
                let fresh = self.fresh(&format!("{owner}_e"));
                self.push(
                    fresh.clone(),
                    NVarKind::Elastic {
                        conds: conds.clone(),
                    },
                    false,
                )?;
                Ok(fresh)
            }
        }
    }
}

/// `d = (b.subtree)` single-atom span declarations produce a Span var with
/// one subtree atom; the engine treats both identically.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::queries;
    use koko_nlp::ParseLabel;

    fn norm(text: &str) -> NormQuery {
        normalize(&parse_query(text).unwrap()).unwrap()
    }

    #[test]
    fn example_41_normalization() {
        // The paper's walkthrough: c = //verb[text="ate"]/dobj,
        // d = //verb[text="ate"]/dobj//"delicious", plus derived constraints
        // b parentOf c, c ancestorOf d.
        let n = norm(queries::EXAMPLE_4_1);
        let c = n.var("c").unwrap();
        match &n.vars[c].kind {
            NVarKind::Node { abs } => {
                assert_eq!(abs.len(), 2);
                assert_eq!(abs[0].conds, vec![NodeCond::Text("ate".into())]);
                assert_eq!(abs[1].label, StepLabel::Pl(ParseLabel::Dobj));
            }
            other => panic!("expected node, got {other:?}"),
        }
        let d = n.var("d").unwrap();
        match &n.vars[d].kind {
            NVarKind::Node { abs } => {
                assert_eq!(abs.len(), 3);
                assert_eq!(abs[2].label, StepLabel::Word("delicious".into()));
                assert_eq!(abs[2].axis, Axis::Descendant);
            }
            other => panic!("expected node, got {other:?}"),
        }
        assert!(n
            .constraints
            .contains(&NConstraint::ParentOf("b".into(), "c".into())));
        assert!(n
            .constraints
            .contains(&NConstraint::AncestorOf("c".into(), "d".into())));
        // e = a + ∧ + b + ∧ + c: two synthesized elastic variables.
        let e = n.var("e").unwrap();
        match &n.vars[e].kind {
            NVarKind::Span { atoms } => {
                assert_eq!(atoms.len(), 5);
                assert_eq!(atoms[0], "a");
                assert_eq!(atoms[2], "b");
                assert_eq!(atoms[4], "c");
                assert!(atoms[1].starts_with('$'));
                assert!(atoms[3].starts_with('$'));
            }
            other => panic!("expected span, got {other:?}"),
        }
        // a = Entity.
        let a = n.var("a").unwrap();
        assert_eq!(n.vars[a].kind, NVarKind::Entity { etype: None });
    }

    #[test]
    fn example_21_normalization() {
        let n = norm(queries::EXAMPLE_2_1);
        // e is an undeclared Entity output.
        let e = n.var("e").unwrap();
        assert_eq!(n.vars[e].kind, NVarKind::Entity { etype: None });
        // d = (b.subtree) is a one-atom span over a synthesized subtree var.
        let d = n.var("d").unwrap();
        match &n.vars[d].kind {
            NVarKind::Span { atoms } => {
                assert_eq!(atoms.len(), 1);
                let st = n.var(&atoms[0]).unwrap();
                assert_eq!(n.vars[st].kind, NVarKind::Subtree { base: "b".into() });
            }
            other => panic!("expected span, got {other:?}"),
        }
        assert!(n
            .constraints
            .contains(&NConstraint::In("b".into(), "e".into())));
        assert!(n.has_extract_constraints());
    }

    #[test]
    fn empty_extract_clause() {
        let n = norm(queries::EXAMPLE_2_3);
        assert!(!n.has_extract_constraints());
        let x = n.var("x").unwrap();
        assert_eq!(n.vars[x].kind, NVarKind::Entity { etype: None });
    }

    #[test]
    fn date_of_birth_bare_label() {
        let n = norm(queries::DATE_OF_BIRTH);
        let v = n.var("v").unwrap();
        match &n.vars[v].kind {
            NVarKind::Node { abs } => {
                assert_eq!(abs.len(), 1);
                assert_eq!(abs[0].axis, Axis::Descendant);
            }
            other => panic!("expected node, got {other:?}"),
        }
        // a:Person, b:Date became typed entity variables.
        let a = n.var("a").unwrap();
        assert_eq!(
            n.vars[a].kind,
            NVarKind::Entity {
                etype: Some(EntityType::Person)
            }
        );
    }

    #[test]
    fn title_forward_reference() {
        // c = a + ∧ + v + ∧ + b references a (output var, declared later)
        // and b (declared before c).
        let n = norm(queries::TITLE);
        let c = n.var("c").unwrap();
        match &n.vars[c].kind {
            NVarKind::Span { atoms } => {
                assert_eq!(atoms[0], "a");
                assert_eq!(atoms[2], "v");
                assert_eq!(atoms[4], "b");
            }
            other => panic!("expected span, got {other:?}"),
        }
        // a resolves to a Person entity var.
        let a = n.var("a").unwrap();
        assert_eq!(
            n.vars[a].kind,
            NVarKind::Entity {
                etype: Some(EntityType::Person)
            }
        );
    }

    #[test]
    fn errors() {
        // Str output never declared.
        assert!(normalize(&parse_query("extract d:Str from x if ()").unwrap()).is_err());
        // Constraint over unknown var.
        assert!(
            normalize(&parse_query("extract a:Entity from x if ( (a) in (zz) )").unwrap()).is_err()
        );
        // Duplicate declaration.
        assert!(normalize(
            &parse_query("extract a:Entity from x if (/ROOT:{ v = //verb, v = //noun })").unwrap()
        )
        .is_err());
        // Satisfying unknown var.
        assert!(normalize(
            &parse_query("extract a:Entity from x if () satisfying qq (qq near \"z\" {1})")
                .unwrap()
        )
        .is_err());
    }

    #[test]
    fn chocolate_normalizes() {
        let n = norm(queries::CHOCOLATE);
        let o = n.var("o").unwrap();
        match &n.vars[o].kind {
            NVarKind::Node { abs } => {
                assert_eq!(abs.len(), 2);
                assert_eq!(abs[1].axis, Axis::Descendant);
                assert_eq!(abs[1].conds, vec![NodeCond::Text("chocolate".into())]);
            }
            other => panic!("expected node, got {other:?}"),
        }
        assert!(n
            .constraints
            .contains(&NConstraint::AncestorOf("v".into(), "o".into())));
    }
}
