//! The paper's queries, verbatim (modulo ASCII operators): Examples 2.1–2.3
//! and 4.1, the three §6.3 scale-up queries, and the Appendix A extraction
//! queries (Figures 9, 10, 11).
//!
//! One documented deviation: the paper's Chocolate query binds
//! `o = v/pobj[text="chocolate"]` (direct child). Our parser attaches
//! prepositional objects under the preposition (`prep → pobj`, exactly as
//! the paper's own Example 3.1 parse does), so the reproduction uses the
//! descendant axis `v//pobj[...]` — same selectivity class, same evaluation
//! path (see DESIGN.md §6).

/// Example 2.1: `(e, d)` pairs from the Figure 1 sentence.
pub const EXAMPLE_2_1: &str = r#"
extract e:Entity, d:Str from input.txt if
(/ROOT:{
  a = //verb,
  b = a/dobj,
  c = b//"delicious",
  d = (b.subtree)
} (b) in (e))
"#;

/// Example 2.2, Q1: cities by similarity.
pub const EXAMPLE_2_2_Q1: &str = r#"
extract a:GPE from "input.txt" if ()
satisfying a
(a SimilarTo "city" {1.0})
with threshold 0.3
"#;

/// Example 2.2, Q2: countries by similarity.
pub const EXAMPLE_2_2_Q2: &str = r#"
extract a:GPE from "input.txt" if ()
satisfying a
(a SimilarTo "country" {1.0})
with threshold 0.3
"#;

/// Example 2.3: cafe names with aggregated evidence.
pub const EXAMPLE_2_3: &str = r#"
extract x:Entity from "input.txt" if ()
satisfying x
(str(x) contains "Cafe" {1}) or
(str(x) contains "Roasters" {1}) or
(x ", a cafe" {1}) or
(x [["serves coffee"]] {0.5}) or
(x [["employs baristas"]] {0.5})
with threshold 0.8
excluding (str(x) matches "[Ll]a Marzocco")
"#;

/// Example 4.1: the normalization walkthrough query.
pub const EXAMPLE_4_1: &str = r#"
extract a:Str, b:Str, c:Str from input.txt if (
/ROOT:{
  a = Entity, b = //verb[text="ate"],
  c = b/dobj, d = c//"delicious",
  e = a + ^ + b + ^ + c })
"#;

/// §6.3 "Chocolate" (low selectivity) — see module docs for the `//pobj`
/// adaptation.
pub const CHOCOLATE: &str = r#"
extract c:Entity from wiki.article if (
/ROOT:{
  v = //verb, o = v//pobj[text="chocolate"],
  s = v/nsubj } (s) in (c))
satisfying v
(str(v) ~ "is" {1})
with threshold 0.5
"#;

/// §6.3 "Title" (medium selectivity).
pub const TITLE: &str = r#"
extract a:Person, b:Str from wiki.article if (
/ROOT:{
  v = //"called", p = v/propn, b = p.subtree,
  c = a + ^ + v + ^ + b})
"#;

/// §6.3 "DateOfBirth" (high selectivity).
pub const DATE_OF_BIRTH: &str = r#"
extract a:Person, b:Date from wiki.article if (
/ROOT:{ v = verb })
satisfying v
(str(v) ~ "born" {1})
with threshold 0.5
"#;

/// Figure 9: the full cafe-name extraction query. The paper sweeps the
/// threshold τ. Weights use the high/medium/low tiers of §6.1 (0.8 / 0.5 /
/// 0.2) — the Appendix A variant scales them down uniformly, which only
/// rescales the threshold axis.
pub fn cafe_query(threshold: f64) -> String {
    format!(
        r#"
extract x:Entity from "input.txt" if ()
satisfying x
(str(x) contains "Cafe" {{0.8}}) or
(str(x) contains "Café" {{0.8}}) or
(str(x) contains "Coffee" {{0.8}}) or
("cafe called" x {{0.8}}) or
("cafes such as" x {{0.8}}) or
(x near ", a cafe" {{0.8}}) or
(x [["sells coffee"]] {{0.5}}) or
(x [["serves coffee"]] {{0.5}}) or
([["coffee from"]] x {{0.5}}) or
([["baristas of"]] x {{0.5}}) or
(x [["baristas"]] {{0.5}}) or
(x [["barista champion"]] {{0.2}}) or
([["barista champion"]] x {{0.2}}) or
(x [["pour-over"]] {{0.2}}) or
(x [["french press"]] {{0.2}}) or
(x [["coffee menu"]] {{0.2}}) or
([["coffee menu"]] x {{0.2}})
with threshold {threshold}
excluding
(str(x) matches "[a-z 0-9.]+") or
(str(x) matches "@[A-Za-z 0-9.]+") or
(str(x) matches "[Cc]offee|[Cc]afe|[Cc]afé") or
(str(x) matches "[A-Za-z 0-9.]*[Bb]arista [Cc]hampionship") or
(str(x) matches "[A-Za-z 0-9.]*[Bb]rewers [Cc]up") or
(str(x) matches "[A-Za-z 0-9.]*[Ff]est(ival)?") or
(str(x) matches "Coffee News") or
(str(x) matches "[Ll]a Marzocco") or
(str(x) matches "[Ss]ynesso") or
(str(x) matches "[Aa]eropress") or
(str(x) matches "[Vv]60") or
(str(x) matches "CEO") or
(str(x) matches "[0-9]+ [0-9A-Z a-z]+ [Ss]t.?") or
(str(x) matches "[0-9]+ [0-9A-Z a-z]+ [Ss]treet") or
(str(x) matches "[0-9]+ [0-9A-Z a-z]+ [Aa]ve.?") or
(str(x) matches "[0-9]+ [0-9A-Z a-z]+ [Aa]v.?") or
(str(x) matches "[0-9]+ [0-9A-Z a-z]+ [Aa]venue") or
(str(x) in dict("Location"))
"#
    )
}

/// Figure 10: facilities from tweets.
pub fn facility_query(threshold: f64) -> String {
    format!(
        r#"
extract x:Entity from "input.txt" if ()
satisfying x
("at" x {{1}}) or
([["went to"]] x {{0.8}}) or
([["go to"]] x {{0.8}})
with threshold {threshold}
excluding
(str(x) contains "p.m.") or
(str(x) contains "a.m.") or
(str(x) contains "pm") or
(str(x) contains "am") or
(str(x) mentions "@") or
(str(x) contains "today") or
(str(x) contains "tomorrow") or
(str(x) contains "tonight")
"#
    )
}

/// Figure 11: sports teams from tweets.
pub fn sports_team_query(threshold: f64) -> String {
    format!(
        r#"
extract x:Entity from "input.txt" if ()
satisfying x
(x [["to host"]] {{0.9}}) or
(x "vs" {{0.9}}) or
("vs" x {{0.9}}) or
(x "versus" {{0.9}}) or
(x [["soccer"]] {{0.9}}) or
("go" x {{0.9}})
with threshold {threshold}
"#
    )
}
