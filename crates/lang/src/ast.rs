//! Abstract syntax of the KOKO language (§2).
//!
//! A query has the shape
//!
//! ```text
//! extract <outputs> from <source> if ( [/ROOT:{ decls }] [constraints] )
//! [satisfying <var> (cond {w}) or … with threshold t]…
//! [excluding (cond) or …]
//! ```

use koko_nlp::{EntityType, ParseLabel, PosTag};

/// A full KOKO query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub outputs: Vec<OutputVar>,
    pub source: String,
    pub decls: Vec<Decl>,
    pub constraints: Vec<VarConstraint>,
    pub satisfying: Vec<SatClause>,
    pub excluding: Vec<Cond>,
}

/// `e:Entity`, `d:Str`, `a:Person` … in the extract clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputVar {
    pub name: String,
    pub ty: OutType,
}

/// Output types: `Str` (span), `Entity` (any mention) or a typed mention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutType {
    Str,
    Entity,
    Typed(EntityType),
}

impl OutType {
    /// The entity-type filter this output type implies (`None` for `Str`;
    /// `Some(None)` for any entity).
    pub fn entity_filter(&self) -> Option<Option<EntityType>> {
        match self {
            OutType::Str => None,
            OutType::Entity => Some(None),
            OutType::Typed(t) => Some(Some(*t)),
        }
    }
}

/// `a = //verb` — one variable declaration inside the `/ROOT:{…}` block.
#[derive(Debug, Clone, PartialEq)]
pub struct Decl {
    pub name: String,
    pub expr: Expr,
}

/// Right-hand side of a declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A path expression (node term).
    Path(PathExpr),
    /// A span term: concatenation of atoms.
    Span(Vec<SpanAtom>),
    /// A bare identifier, resolved during normalization (another variable,
    /// an entity type like `Entity`, or a bare label like `verb`).
    Ident(String),
}

/// `//verb[text="ate"]/dobj` — XPath-like path (§2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct PathExpr {
    pub start: PathStart,
    pub steps: Vec<Step>,
}

/// Where a path is rooted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathStart {
    /// Absolute (`/…` inside the `/ROOT:` block).
    Root,
    /// Relative to a previously declared node variable (`b = a/dobj`).
    Var(String),
}

/// One path step.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    pub axis: Axis,
    pub label: StepLabel,
    pub conds: Vec<NodeCond>,
}

/// `/` vs `//`.
pub use koko_nlp::Axis;

/// What a step matches: a parse label, a POS tag, a quoted word, a wildcard,
/// or (before normalization) an ambiguous identifier.
#[derive(Debug, Clone, PartialEq)]
pub enum StepLabel {
    Pl(ParseLabel),
    Pos(PosTag),
    Word(String),
    Wildcard,
}

impl StepLabel {
    /// Resolve an identifier: parse labels win ties, then POS tags; the
    /// paper's label vocabulary makes the two disjoint except `det`, `num`,
    /// `conj` — resolved as parse labels, matching the paper's examples
    /// (`c2 = x/det` is a parse-label step).
    pub fn from_ident(name: &str) -> Option<StepLabel> {
        if let Some(l) = ParseLabel::from_name(name) {
            return Some(StepLabel::Pl(l));
        }
        if let Some(p) = PosTag::from_name(name) {
            return Some(StepLabel::Pos(p));
        }
        None
    }
}

/// Conditions attached to a step in `[...]`.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeCond {
    /// `@regex = "…"` on the token text.
    Regex(String),
    /// `@pos = "noun"`.
    Pos(PosTag),
    /// `etype = "Person"`.
    Etype(EntityType),
    /// `text = "ate"`.
    Text(String),
}

/// One atom of a span term (§2.1).
#[derive(Debug, Clone, PartialEq)]
pub enum SpanAtom {
    /// An inline path.
    Path(PathExpr),
    /// A variable reference (or bare label/entity ident, resolved later).
    Ident(String),
    /// `x.subtree`.
    Subtree(String),
    /// A quoted token sequence.
    Tokens(Vec<String>),
    /// `∧` (written `^`): zero or more tokens, with optional conditions.
    Elastic(Vec<ElasticCond>),
}

/// Conditions on an elastic span: `∧[etype="Entity"]`, `∧[mintok=1]`, ….
#[derive(Debug, Clone, PartialEq)]
pub enum ElasticCond {
    Etype(Option<EntityType>),
    Regex(String),
    MinTok(u32),
    MaxTok(u32),
}

/// `(b) in (e)` / `(x) eq (y)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarConstraint {
    pub left: String,
    pub op: ConstraintOp,
    pub right: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    In,
    Eq,
}

/// A `satisfying <var> … with threshold t` clause (§2.2): a disjunction of
/// weighted conditions.
#[derive(Debug, Clone, PartialEq)]
pub struct SatClause {
    pub var: String,
    pub conds: Vec<WeightedCond>,
    /// Threshold; `None` means the engine default (0.5 — the Chocolate and
    /// DateOfBirth queries of §6.3 omit it).
    pub threshold: Option<f64>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct WeightedCond {
    pub cond: Cond,
    pub weight: f64,
}

/// A boolean / descriptor condition (§4.4.1) with the variable it tests.
#[derive(Debug, Clone, PartialEq)]
pub struct Cond {
    pub var: String,
    pub pred: Pred,
}

#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// `str(x) contains "Cafe"` — substring of the value.
    Contains(String),
    /// `str(x) mentions "choc"` — the paper's mentions (value is substring
    /// of… see §4.4.1; the engine implements the paper's definition).
    Mentions(String),
    /// `str(x) matches "<regex>"` — full-string regular expression.
    Matches(String),
    /// `x "suffix"` — x immediately followed by the token string.
    FollowedBy(String),
    /// `"prefix" x`.
    PrecededBy(String),
    /// `x near "coffee"` — proximity score 1/(1+distance).
    Near(String),
    /// `x similarTo "city"` / `str(x) ~ "is"` — embedding similarity.
    SimilarTo(String),
    /// `x [[descriptor]]` — descriptor evidence to the right of x.
    DescRight(String),
    /// `[[descriptor]] x`.
    DescLeft(String),
    /// `str(x) in dict("Location")`.
    InDict(String),
}
