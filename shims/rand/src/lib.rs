//! Minimal offline stand-in for the `rand` crate.
//!
//! The corpus generators and the CRF baseline only need a seedable,
//! deterministic generator with `gen_range` / `gen_bool` / `gen`. This shim
//! provides that subset with the `rand` 0.8 trait names so the call sites
//! compile unchanged. The bit streams do NOT match the real `rand` crate —
//! everything in this workspace that consumes randomness treats the seed as
//! an opaque determinism knob, never as a cross-library contract.

/// Core source of 64-bit randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Types with uniform sampling over a half-open `[lo, hi)` interval.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// The successor value, for inclusive-range sampling; `None` if `hi` is
    /// the maximum representable value (floats never need this).
    fn successor(self) -> Option<Self>;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is ~span/2^64, negligible for test-corpus use.
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
            fn successor(self) -> Option<Self> {
                self.checked_add(1)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
    fn successor(self) -> Option<Self> {
        None
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + f32::sample(rng) * (hi - lo)
    }
    fn successor(self) -> Option<Self> {
        None
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        match hi.successor() {
            Some(end) => T::sample_half_open(rng, lo, end),
            // hi == T::MAX for ints (floats return None and fall through to
            // a closed-interval approximation by the half-open sampler).
            None => T::sample_half_open(rng, lo, hi),
        }
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        f64::sample(self) < p
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: SplitMix64 seeding into xorshift64*.
    /// Fast, full-period, and reproducible across platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64* (Vigna); state is never zero after seeding.
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 scrambles the seed so nearby seeds diverge.
            let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            StdRng {
                state: z.max(1), // xorshift must not start at zero
            }
        }
    }
}

pub use rngs::StdRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y: usize = r.gen_range(0..=4);
            assert!(y <= 4);
            let f = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let neg = r.gen_range(-5i32..-2);
            assert!((-5..-2).contains(&neg));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn gen_standard_types() {
        let mut r = StdRng::seed_from_u64(3);
        let _: u64 = r.gen();
        let _: bool = r.gen();
        let f: f64 = r.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
