//! Regex-string strategies: generate random strings matching a pattern.
//!
//! Patterns are parsed with the workspace's own `koko-regex` parser and the
//! AST is walked generatively. Anchors are no-ops (generation is whole-string
//! by construction); unbounded repeats draw a small random count.

use koko_regex::{Ast, ClassItem};
use rand::rngs::StdRng;
use rand::Rng;

/// Cap applied to `*` / `+` / `{m,}` repeats.
const UNBOUNDED_REPEAT_EXTRA: u32 = 8;

/// Generate one string matching `pattern`. Panics on an invalid pattern —
/// strategy construction errors are programmer errors in tests.
pub fn generate_matching(pattern: &str, rng: &mut StdRng) -> String {
    let ast = koko_regex::parse(pattern)
        .unwrap_or_else(|e| panic!("invalid regex strategy {pattern:?}: {e:?}"));
    let mut out = String::new();
    walk(&ast, rng, &mut out);
    out
}

fn walk(ast: &Ast, rng: &mut StdRng, out: &mut String) {
    match ast {
        Ast::Empty | Ast::StartAnchor | Ast::EndAnchor => {}
        Ast::Literal(c) => out.push(*c),
        Ast::AnyChar => out.push(printable(rng)),
        Ast::Class { negated, items } => out.push(class_char(rng, *negated, items)),
        Ast::Concat(seq) => {
            for node in seq {
                walk(node, rng, out);
            }
        }
        Ast::Alternate(branches) => {
            let i = rng.gen_range(0..branches.len());
            walk(&branches[i], rng, out);
        }
        Ast::Repeat { node, min, max } => {
            let hi = max.unwrap_or(min + UNBOUNDED_REPEAT_EXTRA);
            let n = rng.gen_range(*min..=hi);
            for _ in 0..n {
                walk(node, rng, out);
            }
        }
    }
}

/// A random printable ASCII character (space through `~`).
fn printable(rng: &mut StdRng) -> char {
    char::from(rng.gen_range(0x20u8..0x7F))
}

fn class_char(rng: &mut StdRng, negated: bool, items: &[ClassItem]) -> char {
    if negated {
        // Rejection-sample printable ASCII; classes in test patterns never
        // exclude all of it.
        for _ in 0..512 {
            let c = printable(rng);
            if !items.iter().any(|i| i.contains(c)) {
                return c;
            }
        }
        panic!("negated class excludes all printable ASCII");
    }
    let item = items[rng.gen_range(0..items.len())];
    match item {
        ClassItem::Char(c) => c,
        ClassItem::Range(lo, hi) => {
            let (lo, hi) = (lo as u32, hi as u32);
            // Ranges in test patterns are within a plane and avoid the
            // surrogate gap; retry defensively anyway.
            loop {
                let v = rng.gen_range(lo..=hi);
                if let Some(c) = char::from_u32(v) {
                    return c;
                }
            }
        }
        ClassItem::Digit => char::from(rng.gen_range(b'0'..=b'9')),
        ClassItem::Word => {
            let alphabet = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
            char::from(alphabet[rng.gen_range(0..alphabet.len())])
        }
        ClassItem::Space => *[' ', '\t', '\n'].get(rng.gen_range(0..3)).unwrap(),
        ClassItem::NotDigit | ClassItem::NotWord | ClassItem::NotSpace => loop {
            let c = printable(rng);
            if item.contains(c) {
                return c;
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generated_strings_match_their_pattern() {
        let mut rng = StdRng::seed_from_u64(9);
        for pattern in [
            ".{0,200}",
            "[a-z ()=+/*{}\\[\\],:0-9\"^~@.]{0,80}",
            "(ab|c)+x?",
        ] {
            let re = koko_regex::Regex::new(pattern).unwrap();
            for _ in 0..200 {
                let s = generate_matching(pattern, &mut rng);
                assert!(re.is_full_match(&s), "{pattern:?} vs {s:?}");
            }
        }
    }
}
