//! The [`Strategy`] trait and core combinators.

use rand::rngs::StdRng;
use std::rc::Rc;

/// A recipe for generating values of one type from a deterministic RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase (and reference-count, so clones are cheap).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Build a recursive strategy by unrolling `f` `depth` times over the
    /// base strategy. Unlike real proptest there is no probabilistic leaf
    /// fall-back inside levels, so generated structures are at most `depth`
    /// layers deep — sufficient for grammar-shaped test inputs.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut current = self.boxed();
        for _ in 0..depth {
            current = f(current).boxed();
        }
        current
    }
}

/// Object-safe view used inside [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut StdRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

/// A reference-counted, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one branch");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// String literals are regex strategies: `".{0,200}"` generates strings
/// matching the pattern (see [`crate::string`]).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn ranges_maps_and_unions() {
        let mut r = rng();
        let s = (0..5usize).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v % 2 == 0 && v < 10);
        }
        let u = Union::new(vec![Just(1).boxed(), Just(2).boxed()]);
        for _ in 0..50 {
            assert!([1, 2].contains(&u.generate(&mut r)));
        }
    }

    #[test]
    fn recursive_terminates() {
        let leaf = Just("x".to_string()).boxed();
        let s = leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| format!("({a}{b})"))
        });
        let mut r = rng();
        let v = s.generate(&mut r);
        assert!(v.contains('x'));
    }
}
