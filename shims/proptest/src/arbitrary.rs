//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical generation strategy.
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut StdRng) -> Self;
}

/// The canonical strategy for `A` (`any::<A>()`).
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

#[derive(Debug, Clone, Copy)]
pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut StdRng) -> A {
        A::arbitrary_value(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut StdRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut StdRng) -> f64 {
        rng.gen::<f64>()
    }
}

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut StdRng) -> char {
        // Weighted mix: mostly printable ASCII, some control/whitespace,
        // some arbitrary unicode scalars — mirrors proptest's bias toward
        // "interesting" characters without its full tables.
        match rng.gen_range(0..10) {
            0 => *['\0', '\t', '\n', '\r', ' ', '~', 'é', 'ß', '中', '🦀']
                .get(rng.gen_range(0..10))
                .unwrap(),
            1 | 2 => loop {
                if let Some(c) = char::from_u32(rng.gen_range(0u32..0x11_0000)) {
                    return c;
                }
            },
            _ => char::from(rng.gen_range(0x20u8..0x7F)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn chars_cover_ascii_and_beyond() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = any::<char>();
        let mut ascii = 0;
        let mut non_ascii = 0;
        for _ in 0..500 {
            if s.generate(&mut rng).is_ascii() {
                ascii += 1;
            } else {
                non_ascii += 1;
            }
        }
        assert!(ascii > 300);
        assert!(non_ascii > 10);
    }
}
