//! Runner configuration and the per-case error type.

/// Per-test configuration; `cases` is the number of generated inputs.
#[derive(Debug, Clone)]
pub struct Config {
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Config {
        Config {
            cases: env_cases().unwrap_or(cases),
        }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config {
            cases: env_cases().unwrap_or(256),
        }
    }
}

/// `PROPTEST_CASES`, when set, overrides every suite's case count — the
/// scheduled long-fuzz CI job uses it to run the same properties with a
/// far larger budget than a per-commit run affords. (Real proptest only
/// lets the variable override the *default*; here explicit
/// `with_cases(..)` values are deliberately small per-commit budgets, so
/// the override applies to them too.)
///
/// A malformed or zero value panics instead of being silently ignored:
/// an override of `0` (or a typo like `6_400`) would make every property
/// suite vacuously green, which is exactly the failure the long-fuzz job
/// exists to prevent.
fn env_cases() -> Option<u32> {
    let raw = std::env::var("PROPTEST_CASES").ok()?;
    match raw.parse() {
        Ok(0) | Err(_) => panic!(
            "PROPTEST_CASES must be a positive integer, got {raw:?} \
             (unset it to use the per-suite defaults)"
        ),
        Ok(n) => Some(n),
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The input was rejected (e.g. by `prop_assume`); not a failure.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}
