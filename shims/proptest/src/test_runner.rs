//! Runner configuration and the per-case error type.

/// Per-test configuration; `cases` is the number of generated inputs.
#[derive(Debug, Clone)]
pub struct Config {
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The input was rejected (e.g. by `prop_assume`); not a failure.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}
