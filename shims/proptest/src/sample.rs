//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Uniform choice from a fixed list of values.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select from an empty list");
    Select { items }
}

#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.items[rng.gen_range(0..self.items.len())].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn selects_members() {
        let mut rng = StdRng::seed_from_u64(11);
        let s = select(vec!["a", "b", "c"]);
        for _ in 0..50 {
            assert!(["a", "b", "c"].contains(&s.generate(&mut rng)));
        }
    }
}
