//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Half-open size interval for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// `Vec` strategy: random length in `size`, elements from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.size.lo..self.size.hi);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sizes_respected() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = vec(0..10usize, 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let exact = vec(0..10usize, 3usize);
        assert_eq!(exact.generate(&mut rng).len(), 3);
    }
}
