//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this shim re-implements
//! the slice of proptest the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_recursive` /
//! `boxed`, collection and sample strategies, regex-string strategies
//! (generation is driven by the workspace's own `koko-regex` parser — the
//! engine under test elsewhere, used here only as a pattern AST), the
//! [`proptest!`] / [`prop_oneof!`] / `prop_assert*` macros, and a
//! deterministic runner.
//!
//! Deliberate differences from real proptest: no shrinking (failing cases
//! print their error and the case number; re-running is deterministic, so a
//! failure always reproduces), and value streams are seeded from the test
//! name rather than an external RNG state file.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Namespaced re-exports matching `proptest::prelude::prop::*` paths.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Stable 64-bit FNV-1a hash of the test name, for per-test seeding.
pub fn seed_for(name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h.wrapping_add(case.wrapping_mul(0x9E3779B97F4A7C15))
}

/// The RNG for one `(test, case)` pair; called by the [`proptest!`]
/// expansion so call sites need no `rand` dependency of their own.
pub fn rng_for(name: &str, case: u64) -> rand::rngs::StdRng {
    <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed_for(name, case))
}

/// The property-test entry macro: an optional `#![proptest_config(..)]`
/// attribute followed by test functions whose arguments are drawn from
/// strategies (`arg in strategy`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl [$config] $($rest)*);
    };
    (@impl [$config:expr]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $config;
                let __strats = ($($strategy,)+);
                for __case in 0..__config.cases {
                    let mut __rng = $crate::rng_for(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case as u64,
                    );
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::generate(&__strats, &mut __rng);
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {}/{}: {}",
                                stringify!($name), __case, __config.cases, msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl [$crate::test_runner::Config::default()] $($rest)*);
    };
}

/// Union of same-valued strategies, chosen uniformly per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Assert inside a property body; failures report the message without
/// aborting the whole process state.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(*__l == *__r, "assertion failed: {:?} != {:?}", __l, __r);
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: {:?} != {:?}: {}",
                    __l,
                    __r,
                    format!($($fmt)*)
                );
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(*__l != *__r, "assertion failed: {:?} == {:?}", __l, __r);
            }
        }
    };
}
