//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the `Criterion` / `benchmark_group` / `bench_function` /
//! `Bencher::iter` surface the workspace benches use. Instead of criterion's
//! statistical machinery it runs a short warm-up, then a fixed measurement
//! window, and prints mean time per iteration — enough to compare hot paths
//! by eye and to keep `cargo bench` working without a registry.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level handle, passed to every `criterion_group!` target.
pub struct Criterion {
    /// Measurement window per benchmark.
    measurement: Duration,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement: Duration::from_millis(600),
            warm_up: Duration::from_millis(150),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n## {name}");
        BenchmarkGroup {
            criterion: self,
            group: name.to_string(),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.warm_up, self.measurement, &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's fixed measurement window
    /// ignores the requested sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.group, id);
        run_one(
            &label,
            self.criterion.warm_up,
            self.criterion.measurement,
            &mut f,
        );
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    warm_up: Duration,
    measurement: Duration,
    f: &mut F,
) {
    let mut b = Bencher {
        budget: warm_up,
        iterations: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b); // warm-up pass (also sizes the first measurement batch)
    let mut b = Bencher {
        budget: measurement,
        iterations: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if b.iterations == 0 {
        Duration::ZERO
    } else {
        b.elapsed / b.iterations
    };
    println!(
        "{label:<40} {:>12} ({} iterations)",
        fmt_duration(per_iter),
        b.iterations
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Runs the closure under test repeatedly until the time budget is spent.
pub struct Bencher {
    budget: Duration,
    iterations: u32,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        loop {
            black_box(routine());
            self.iterations += 1;
            self.elapsed = start.elapsed();
            if self.elapsed >= self.budget {
                break;
            }
        }
    }
}

/// Declares a bench entry point running each target function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_counts() {
        let mut c = Criterion {
            measurement: Duration::from_millis(5),
            warm_up: Duration::from_millis(1),
        };
        let mut g = c.benchmark_group("shim");
        let mut ran = 0u64;
        g.bench_function("noop", |b| b.iter(|| ran += 1));
        g.finish();
        assert!(ran > 0);
    }
}
