//! Minimal offline stand-in for `parking_lot`.
//!
//! Wraps the std synchronization primitives with `parking_lot`'s
//! non-poisoning API (guards returned directly from `lock`/`read`/`write`).
//! A poisoned std lock means a writer panicked mid-update; matching
//! parking_lot, we propagate the inner data anyway rather than surfacing a
//! `PoisonError`.

use std::sync::{Mutex as StdMutex, RwLock as StdRwLock};

// The guard types are part of `parking_lot`'s public API (callers name
// them in signatures, e.g. a function returning a held write lock); we
// hand out the std guards directly, so re-export them under the
// `parking_lot` names.
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutex with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 4);
    }

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
