//! Minimal offline stand-in for the `bytes` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the tiny slice of the `bytes` API that `koko-storage`'s codec consumes:
//! [`BytesMut`] as a growable byte buffer and the [`BufMut`] little-endian
//! writer methods. Semantics match the real crate for this subset.

use std::ops::{Deref, DerefMut};

/// A growable byte buffer backed by a `Vec<u8>`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.inner.extend_from_slice(extend);
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

/// Little-endian append operations, as in `bytes::BufMut`.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }
    fn put_u16_le(&mut self, n: u16) {
        self.put_slice(&n.to_le_bytes());
    }
    fn put_u32_le(&mut self, n: u32) {
        self.put_slice(&n.to_le_bytes());
    }
    fn put_u64_le(&mut self, n: u64) {
        self.put_slice(&n.to_le_bytes());
    }
    fn put_f32_le(&mut self, n: f32) {
        self.put_slice(&n.to_le_bytes());
    }
    fn put_f64_le(&mut self, n: f64) {
        self.put_slice(&n.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_little_endian() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u16_le(0x0102);
        b.put_u32_le(0x03040506);
        b.put_u64_le(0x0708090a0b0c0d0e);
        b.put_f64_le(1.5);
        b.put_slice(b"xy");
        assert_eq!(b.len(), 1 + 2 + 4 + 8 + 8 + 2);
        assert_eq!(&b[0..3], &[7, 0x02, 0x01]);
        assert_eq!(b.to_vec().len(), b.len());
    }
}
