//! Top-k queries and pagination with [`QueryRequest`]: build a corpus,
//! page through results with `limit`/`offset`, inspect
//! `total_matches`/`truncated`, and print an explain report showing the
//! work early termination skipped.
//!
//! ```text
//! cargo run --example topk_paginate
//! ```

use koko::{Koko, Order, QueryRequest};

fn main() {
    // A corpus where many documents match, so limits have bite.
    let texts = koko::corpus::wiki::generate(60, 4242);
    let koko = Koko::from_texts(&texts);
    let query = koko::queries::TITLE;

    // ---- Page through the results, three rows at a time -----------------
    println!("## paging through {:?}", "TITLE");
    let page_size = 3;
    let mut offset = 0;
    loop {
        let page = QueryRequest::new(query)
            .offset(offset)
            .limit(page_size)
            .run(&koko)
            .expect("query runs");
        println!(
            "page at offset {offset}: {} rows (total_matches {}{}, truncated: {})",
            page.rows.len(),
            page.total_matches,
            if page.truncated { "+" } else { "" },
            page.truncated,
        );
        for row in &page.rows {
            let text: Vec<&str> = row.values.iter().map(|v| v.text.as_str()).collect();
            println!(
                "  doc {:>2} score {:.2}  {}",
                row.doc,
                row.score,
                text.join(" | ")
            );
        }
        if !page.truncated {
            break;
        }
        offset += page_size;
    }

    // ---- Top-k by score, with a floor -----------------------------------
    let top = QueryRequest::new(query)
        .order(Order::ScoreDesc)
        .min_score(0.5)
        .limit(5)
        .run(&koko)
        .expect("query runs");
    println!(
        "\n## top {} rows by score (floor 0.5; {} matched, {} pruned by the floor)",
        top.rows.len(),
        top.total_matches,
        top.profile.min_score_pruned,
    );
    for row in &top.rows {
        println!("  doc {:>2} score {:.2}", row.doc, row.score);
    }

    // ---- Explain: what did limit(1) skip? --------------------------------
    let explained = QueryRequest::new(query)
        .limit(1)
        .explain(true)
        .run(&koko)
        .expect("query runs");
    let explain = explained.explain.as_ref().expect("explain requested");
    println!(
        "\n## explain for limit(1): {} candidate sentences, {} docs skipped, early stop: {}",
        explain.total_candidates(),
        explained.profile.docs_skipped,
        explain.early_terminated(),
    );
    for plan in &explain.plans {
        println!("  plan  {plan}");
    }
    for s in &explain.shards {
        println!(
            "  shard {:>2} ({}): candidates {} | docs {}/{} | rows {} | early stop {}",
            s.shard,
            if s.is_delta { "delta" } else { "base" },
            s.candidates,
            s.docs_processed,
            s.docs,
            s.rows,
            s.early_stopped,
        );
    }
}
