//! Inspect KOKO's multi-index (§3): the word/entity inverted indices, the
//! hierarchy indices with their node-merging compression, and a decomposed
//! path lookup (the Example 4.2–4.4 walkthrough).
//!
//! ```text
//! cargo run --release --example index_explorer
//! ```

use koko::index::KokoIndex;
use koko::nlp::{Axis, NodeLabel, ParseLabel, Pipeline};

fn main() {
    let pipeline = Pipeline::new();
    let corpus = pipeline.parse_corpus(&[
        "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
        "Anna ate some delicious cheesecake that she bought at a grocery store.",
    ]);
    let index = KokoIndex::build(&corpus);

    println!("== word index (Example 3.2)");
    for word in ["i", "ate", "delicious", "cream"] {
        let postings: Vec<String> = index
            .word_refs(word)
            .iter()
            .map(|&r| {
                let p = index.posting(r);
                format!("({},{},{}–{},{})", p.sid, p.tid, p.left, p.right, p.depth)
            })
            .collect();
        println!("   {word:<10} → {}", postings.join(", "));
    }

    println!("\n== entity index (Example 3.2)");
    for (name, postings) in index.entities() {
        let ps: Vec<String> = postings
            .iter()
            .map(|e| format!("({},{}–{})", e.sid, e.left, e.right))
            .collect();
        println!("   {name:<22} → {}", ps.join(", "));
    }

    println!("\n== hierarchy indices (§3.2)");
    println!(
        "   PL  index: {} merged nodes for {} tokens ({:.1}% reduction)",
        index.pl_index().num_nodes(),
        corpus.num_tokens(),
        100.0 * index.pl_index().compression_ratio()
    );
    println!(
        "   POS index: {} merged nodes ({:.1}% reduction)",
        index.pos_index().num_nodes(),
        100.0 * index.pos_index().compression_ratio()
    );
    let nn = index.pl_index().lookup(
        &[
            (Axis::Child, Some(ParseLabel::Root)),
            (Axis::Child, Some(ParseLabel::Dobj)),
            (Axis::Child, Some(ParseLabel::Nn)),
        ],
        true,
    );
    println!("   /root/dobj/nn posting refs → {nn:?} (chocolate, ice — merged, Example 3.3)");

    println!("\n== decomposed lookup: //verb/dobj//\"delicious\" (Example 4.2–4.4)");
    let pattern = koko::nlp::TreePattern::path(
        false,
        vec![
            (Axis::Descendant, NodeLabel::Pos(koko::nlp::PosTag::Verb)),
            (Axis::Child, NodeLabel::Pl(ParseLabel::Dobj)),
            (Axis::Descendant, NodeLabel::Word("delicious".into())),
        ],
    );
    let refs = index.lookup_path(&pattern).expect("constrained pattern");
    for r in refs {
        let p = index.posting(r);
        let s = corpus.sentence(p.sid);
        println!(
            "   candidate: sid {} tid {} ({:?})",
            p.sid, p.tid, s.tokens[p.tid as usize].text
        );
    }
    println!(
        "\n   total index footprint: {} KiB",
        index.approx_bytes() / 1024
    );
}
