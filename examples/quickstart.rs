//! Quickstart: parse a document, run the paper's Example 2.1 query, print
//! the extracted tuples.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use koko::Koko;

fn main() {
    // The Figure 1 sentence from the paper.
    let koko = Koko::from_texts(&[
        "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
        "Anna ate some delicious cheesecake that she bought at a grocery store.",
        "The cafe was busy today.",
    ]);

    // Example 2.1: pairs (e, d) where the dobj subtree contains "delicious"
    // and the dobj token lies inside entity e.
    let query = r#"
        extract e:Entity, d:Str from input.txt if
        (/ROOT:{
          a = //verb,
          b = a/dobj,
          c = b//"delicious",
          d = (b.subtree)
        } (b) in (e))
    "#;

    let out = koko.query(query).expect("query evaluates");
    println!("Example 2.1 over {} documents:", koko.num_documents());
    for row in &out.rows {
        let e = &row.values[0];
        let d = &row.values[1];
        println!("  doc {} | e = {:?} | d = {:?}", row.doc, e.text, d.text);
    }
    println!(
        "\nstages: normalize {:?}, dpli {:?}, load {:?}, gsp {:?}, extract {:?}, satisfying {:?}",
        out.profile.normalize,
        out.profile.dpli,
        out.profile.load_article,
        out.profile.gsp,
        out.profile.extract,
        out.profile.satisfying,
    );
}
