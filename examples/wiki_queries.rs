//! The three §6.3 scale-up queries (Chocolate / Title / DateOfBirth) over a
//! synthetic Wikipedia-like corpus, with the Table 2 stage breakdown.
//!
//! ```text
//! cargo run --release --example wiki_queries
//! ```

use koko::lang::queries;
use koko::Koko;

fn main() {
    let texts = koko::corpus::wiki::generate(200, 4242);
    let koko = Koko::from_texts(&texts);
    let snapshot = koko.snapshot();
    println!(
        "corpus: {} articles, {} sentences, {} tokens\n",
        snapshot.corpus().num_documents(),
        snapshot.corpus().num_sentences(),
        snapshot.corpus().num_tokens()
    );

    for (name, q) in [
        ("Chocolate (low selectivity)", queries::CHOCOLATE),
        ("Title (medium selectivity)", queries::TITLE),
        ("DateOfBirth (high selectivity)", queries::DATE_OF_BIRTH),
    ] {
        let out = koko.query(q).expect("query runs");
        let mut docs: Vec<u32> = out.rows.iter().map(|r| r.doc).collect();
        docs.sort_unstable();
        docs.dedup();
        println!("== {name}");
        println!(
            "   {} rows over {} documents ({:.1}% of articles), {} candidate sentences",
            out.rows.len(),
            docs.len(),
            100.0 * docs.len() as f64 / koko.num_documents() as f64,
            out.profile.candidate_sentences,
        );
        for row in out.rows.iter().take(4) {
            let vals: Vec<String> = row
                .values
                .iter()
                .map(|v| format!("{}={:?}", v.name, v.text))
                .collect();
            println!("   doc {} | {}", row.doc, vals.join(" | "));
        }
        println!(
            "   stages: DPLI {:?} | LoadArticle {:?} | extract {:?} | satisfying {:?}\n",
            out.profile.dpli, out.profile.load_article, out.profile.extract, out.profile.satisfying
        );
    }
}
