//! The build-once / query-many workflow: ingest a corpus, persist the
//! snapshot to a `.koko` file, reopen it without re-parsing, and verify the
//! loaded engine answers identically.
//!
//! ```text
//! cargo run --release --example build_then_query
//! ```

use koko::{queries, Koko};
use std::time::Instant;

fn main() {
    let texts = koko::corpus::wiki::generate(200, 4242);

    // Build: NLP parse + per-shard index construction (the expensive part).
    let t = Instant::now();
    let built = Koko::from_texts(&texts);
    let build_time = t.elapsed();

    // Persist the whole snapshot — indices, document stores, router,
    // embeddings — to one checksummed file.
    let path = std::env::temp_dir().join("build_then_query_example.koko");
    let t = Instant::now();
    let file_bytes = built.save(&path).expect("snapshot saves");
    let save_time = t.elapsed();

    // Reopen: deserialize instead of re-ingesting.
    let t = Instant::now();
    let loaded = Koko::open(&path).expect("snapshot loads");
    let load_time = t.elapsed();

    println!(
        "built {} docs in {build_time:.2?}; saved {:.1} KiB in {save_time:.2?}; loaded in {load_time:.2?} ({:.1}x faster than building)",
        built.num_documents(),
        file_bytes as f64 / 1024.0,
        build_time.as_secs_f64() / load_time.as_secs_f64().max(1e-9),
    );

    // The loaded engine is byte-identical in query output.
    for (name, q) in [
        ("Title", queries::TITLE),
        ("DateOfBirth", queries::DATE_OF_BIRTH),
    ] {
        let a = built.query(q).expect("query on built");
        let b = loaded.query(q).expect("query on loaded");
        assert_eq!(a.rows, b.rows, "loaded snapshot must answer identically");
        println!(
            "{name}: {} rows, identical before/after persistence",
            a.rows.len()
        );
    }

    std::fs::remove_file(&path).ok();
}
