//! The paper's headline use case (§1, §6.1): extracting newly opened cafe
//! names from blog posts by aggregating weak, linguistically varied
//! evidence across each document — the Figure 9 query on a synthetic
//! BaristaMag-like corpus with ground truth.
//!
//! ```text
//! cargo run --release --example cafe_extraction
//! ```

use koko::corpus::cafe::{self, Style};
use koko::corpus::eval;
use koko::lang::queries;
use koko::Koko;

fn main() {
    let labeled = cafe::generate(Style::Barista, 40, 11);
    println!(
        "corpus: {} articles, {} gold cafes",
        labeled.len(),
        labeled.num_labels()
    );
    let koko = Koko::from_texts(&labeled.texts);

    for threshold in [0.2, 0.5, 0.8] {
        let out = koko
            .query(&queries::cafe_query(threshold))
            .expect("cafe query runs");
        let preds = out.doc_values("x");
        let s = eval::score(&preds, &labeled.truth);
        println!(
            "\nthreshold {threshold}: P {:.3} / R {:.3} / F1 {:.3}",
            s.precision, s.recall, s.f1
        );
        for (doc, name) in preds.iter().take(8) {
            println!("  doc {doc}: {name}");
        }
        if preds.len() > 8 {
            println!("  … {} more", preds.len() - 8);
        }
    }
    println!("\n(lower thresholds admit weak descriptor-only evidence; higher ones demand strong surface evidence)");
}
