//! Example 2.2 from the paper: two syntactically identical sentences are
//! distinguished by the `similarTo` descriptor — Q1 retrieves cities, Q2
//! retrieves countries, each with a graded similarity score.
//!
//! ```text
//! cargo run --release --example similar_cities
//! ```

use koko::lang::queries;
use koko::Koko;

fn main() {
    let koko = Koko::from_texts(&[
        "cities in asian countries such as China and Japan.", // S1
        "cities in asian countries such as Beijing and Tokyo.", // S2
    ]);

    for (name, q) in [
        ("Q1: a SimilarTo \"city\"", queries::EXAMPLE_2_2_Q1),
        ("Q2: a SimilarTo \"country\"", queries::EXAMPLE_2_2_Q2),
    ] {
        let out = koko.query(q).expect("query runs");
        println!("== {name}");
        for s in ["S1", "S2"] {
            let doc = if s == "S1" { 0 } else { 1 };
            let hits: Vec<String> = out
                .rows
                .iter()
                .filter(|r| r.doc == doc)
                .map(|r| format!("{}, {:.4}", r.values[0].text, r.score))
                .collect();
            if hits.is_empty() {
                println!("   {s}: NA");
            } else {
                println!("   {s}: {}", hits.join(" | "));
            }
        }
        println!();
    }
    println!("(paper's Example 2.2: Q1 → Tokyo 0.409, Beijing 0.358 on S2 only; Q2 → China 0.513, Japan 0.457 on S1 only)");
}
