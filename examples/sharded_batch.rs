//! The sharded engine's new API surface: explicit shard counts and
//! `query_batch` over one shared snapshot — and the equivalence guarantee
//! that sharded rows are byte-identical to the sequential evaluator's.
//!
//! ```text
//! cargo run --release --example sharded_batch
//! ```

use koko::core::{EngineOpts, Koko};
use koko::{queries, Pipeline};

fn main() {
    let texts = koko::corpus::wiki::generate(24, 4242);
    let corpus = Pipeline::new().parse_corpus(&texts);

    let sequential = Koko::from_corpus_with_opts(
        corpus.clone(),
        EngineOpts {
            num_shards: 1,
            parallel: false,
            ..EngineOpts::default()
        },
    );
    let sharded = Koko::from_corpus_with_opts(
        corpus,
        EngineOpts {
            num_shards: 6,
            ..EngineOpts::default()
        },
    );
    println!(
        "sequential: {} shard | sharded: {} shards over {} docs",
        sequential.num_shards(),
        sharded.num_shards(),
        sharded.num_documents(),
    );
    let snapshot = sharded.snapshot();
    for shard in snapshot.shards() {
        println!(
            "  shard {}: docs {:?} sids {:?}",
            shard.id(),
            shard.doc_range(),
            shard.sid_range()
        );
    }

    let batch = [queries::CHOCOLATE, queries::TITLE, queries::DATE_OF_BIRTH];
    let sharded_results = sharded.query_batch(&batch);
    for (q, result) in batch.iter().zip(sharded_results) {
        let sharded_out = result.expect("sharded query");
        let sequential_out = sequential.query(q).expect("sequential query");
        assert_eq!(
            format!("{:?}", sequential_out.rows),
            format!("{:?}", sharded_out.rows),
            "sharded rows must be byte-identical to sequential"
        );
        println!(
            "query {:>12}: {} rows, identical across 1-shard and 6-shard engines",
            q.split_whitespace().nth(1).unwrap_or("?"),
            sharded_out.rows.len()
        );
        if let Some(row) = sharded_out.rows.first() {
            let vals: Vec<String> = row
                .values
                .iter()
                .map(|v| format!("{}={:?}", v.name, v.text))
                .collect();
            println!("  e.g. doc {} | {}", row.doc, vals.join(" | "));
        }
    }
}
