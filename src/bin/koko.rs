//! `koko` — command-line interface to the KOKO engine.
//!
//! ```text
//! koko build  <corpus> -o <file.koko>    parse + index a corpus once and
//!                                        write a persistent snapshot
//! koko add    <file.koko> <more.txt>     ingest new documents into an
//!             [--compact] [-o out.koko]  existing snapshot (delta shards)
//! koko query  <corpus> '<query>'         run a KOKO query over a text file
//!             [--limit=N] [--offset=N]   or a .koko snapshot; the flags
//!             [--min-score=S] [--explain] build a per-request QueryRequest
//!             [--order=doc|score_desc]   (top-k early termination, score
//!             [--deadline-ms=N] [--eager] floors, deadlines, explain plans)
//! koko batch  <corpus> '<q1>' '<q2>'     evaluate many queries over one
//!                                        shared snapshot (parallel); takes
//!                                        the same per-request flags
//! koko parse  <corpus.txt>               show the annotation pipeline output
//! koko stats  <corpus>                   corpus + per-shard index statistics
//! koko serve  <corpus> [--addr=H:P]      long-running query server over one
//!             [--threads=N] [--cache=N]  loaded snapshot (see docs/SERVING.md);
//!             [--writable] [--eager]     --writable accepts wire add/compact
//! koko client <addr> '<query>' ...       scripted client / load generator
//!             [--threads=N] [--repeat=M] against a running `koko serve`;
//!             [--add=<more.txt>]         --add / --compact drive a
//!             [--compact]                writable server's live index;
//!             [--limit=N ...]            per-request flags ride the wire
//!                                        as the protocol `opts` object
//! koko demo                              the paper's Figure 1 walkthrough
//! ```
//!
//! `<corpus>` is either a text file (one document per line, or
//! blank-line-separated paragraphs with `--doc=para`) or a `.koko` snapshot
//! produced by `koko build` — detected by the `KOKOSNAP` magic bytes, not
//! the extension. Querying a snapshot skips NLP ingest entirely, so
//! repeated queries start in milliseconds. Sectioned (v4) snapshots are
//! memory-mapped by default — the open is O(sections) and shards decode
//! lazily on first touch; `--eager` forces the classic full up-front load
//! (see docs/SNAPSHOTS.md). See docs/QUERYLANG.md for the query language.

use koko::nlp::tree_stats;
use koko::storage::is_snapshot_file;
use koko::{EngineOpts, Koko, Order, Pipeline, QueryRequest};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..]),
        Some("add") => cmd_add(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("parse") => cmd_parse(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        Some("cluster") => cmd_cluster(&args[1..]),
        Some("demo") => cmd_demo(),
        _ => {
            eprintln!(
                "usage: koko <build|add|query|batch|parse|stats|serve|client|cluster|demo> [args]  (see `src/bin/koko.rs`)"
            );
            2
        }
    };
    std::process::exit(code);
}

/// Load documents from a file: one document per line by default, or
/// blank-line-separated paragraphs with `--doc=para`.
fn load_docs(path: &str, args: &[String]) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let para_mode = args.iter().any(|a| a == "--doc=para");
    let docs: Vec<String> = if para_mode {
        text.split("\n\n")
            .map(|p| p.split_whitespace().collect::<Vec<_>>().join(" "))
            .filter(|p| !p.is_empty())
            .collect()
    } else {
        text.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .map(str::to_string)
            .collect()
    };
    if docs.is_empty() {
        return Err("no documents found".into());
    }
    Ok(docs)
}

/// Integer flag with a default, accepted as `--name=N` or `--name N`;
/// an unparsable value is an error rather than a silent fallback.
fn arg_named_usize(args: &[String], name: &str, default: usize) -> Result<usize, String> {
    let flag = format!("--{name}");
    let prefix = format!("--{name}=");
    for (i, a) in args.iter().enumerate() {
        let value = if let Some(v) = a.strip_prefix(&prefix) {
            Some(v)
        } else if *a == flag {
            Some(args.get(i + 1).map(String::as_str).unwrap_or(""))
        } else {
            None
        };
        if let Some(v) = value {
            return v
                .parse()
                .map_err(|_| format!("--{name} expects a number, got {v:?}"));
        }
    }
    Ok(default)
}

/// [`arg_named_usize`] with an inclusive validity range. Out-of-range
/// values (e.g. `--threads=0` where at least one thread is required, or an
/// absurd `--repeat` that would overflow allocation sizes) are structured
/// errors with a nonzero exit, never a panic downstream.
fn arg_named_usize_in(
    args: &[String],
    name: &str,
    default: usize,
    min: usize,
    max: usize,
) -> Result<usize, String> {
    let v = arg_named_usize(args, name, default)?;
    if !(min..=max).contains(&v) {
        return Err(format!("--{name} must be between {min} and {max}, got {v}"));
    }
    Ok(v)
}

/// `--shards=N` knob shared by `build` and the engine-backed commands
/// (`0`, the default, means one shard per core).
fn arg_shards(args: &[String]) -> Result<usize, String> {
    arg_named_usize_in(args, "shards", 0, 0, 65536)
}

/// Widest worker/client pool any CLI command will spin up; larger values
/// are user error (and would previously overflow a `Vec` capacity).
const MAX_THREADS: usize = 1024;
/// Most repeats `koko client` accepts per run.
const MAX_REPEAT: usize = 10_000_000;

/// String flag accepted as `--name=value` or `--name value`.
fn arg_named_str(args: &[String], name: &str) -> Option<String> {
    let flag = format!("--{name}");
    let prefix = format!("--{name}=");
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&prefix) {
            return Some(v.to_string());
        }
        if *a == flag {
            return Some(args.get(i + 1).cloned().unwrap_or_default());
        }
    }
    None
}

/// Every occurrence of a repeatable `--flag=V` / `--flag V` option, in
/// order (`koko serve --tenant=... --tenant=...`).
fn arg_named_all(args: &[String], name: &str) -> Vec<String> {
    let flag = format!("--{name}");
    let prefix = format!("--{name}=");
    let mut values = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(v) = args[i].strip_prefix(&prefix) {
            values.push(v.to_string());
        } else if args[i] == flag {
            values.push(args.get(i + 1).cloned().unwrap_or_default());
            i += 1; // the value
        }
        i += 1;
    }
    values
}

/// Flags that take a value, for skipping that value when collecting
/// positional arguments in space-separated form
/// ([`collect_positionals`]). Keep in sync with the `arg_named_*` calls
/// in `cmd_query`/`cmd_batch`/`cmd_serve`/`cmd_client`.
const VALUE_FLAGS: &[&str] = &[
    "--threads",
    "--repeat",
    "--cache",
    "--shards",
    "--addr",
    "--add",
    "--limit",
    "--offset",
    "--min-score",
    "--order",
    "--deadline-ms",
    "--auth",
    "--rate",
    "--requests",
    "--tenant",
    "--default-tenant",
    "--max-conns",
    "--workers",
    "--out-dir",
    "--port-base",
];

/// Positional (non-flag) arguments, skipping the values of space-form
/// `--flag N` options per [`VALUE_FLAGS`] — shared by `batch` and
/// `client` so a new value-taking flag cannot be mis-parsed as a query
/// in one command but not the other.
fn collect_positionals(args: &[String]) -> Vec<String> {
    let mut positionals: Vec<String> = Vec::new();
    let mut skip_value = false;
    for a in args {
        if skip_value {
            skip_value = false; // the value of a space-form `--flag N`
        } else if VALUE_FLAGS.contains(&a.as_str()) {
            skip_value = true;
        } else if !a.starts_with("--") {
            positionals.push(a.clone());
        }
    }
    positionals
}

/// Per-request query options shared by `query`, `batch` and `client`:
/// `--limit=N --offset=N --min-score=S --order=doc|score_desc
/// --deadline-ms=N --explain` (all optional; absent flags keep the
/// historical semantics).
#[derive(Default, Clone, Copy)]
struct RequestFlags {
    limit: Option<usize>,
    offset: Option<usize>,
    min_score: Option<f64>,
    order: Option<Order>,
    deadline_ms: Option<u64>,
    explain: bool,
}

impl RequestFlags {
    fn parse(args: &[String]) -> Result<RequestFlags, String> {
        let opt_usize = |name: &str| -> Result<Option<usize>, String> {
            match arg_named_str(args, name) {
                None => Ok(None),
                Some(v) => v
                    .parse()
                    .map(Some)
                    .map_err(|_| format!("--{name} expects a non-negative number, got {v:?}")),
            }
        };
        let min_score = match arg_named_str(args, "min-score") {
            None => None,
            Some(v) => match v.parse::<f64>() {
                Ok(s) if s.is_finite() => Some(s),
                _ => return Err(format!("--min-score expects a finite number, got {v:?}")),
            },
        };
        let order = match arg_named_str(args, "order").as_deref() {
            None => None,
            Some("doc") => Some(Order::DocOrder),
            Some("score_desc") => Some(Order::ScoreDesc),
            Some(v) => return Err(format!("--order must be doc or score_desc, got {v:?}")),
        };
        Ok(RequestFlags {
            limit: opt_usize("limit")?,
            offset: opt_usize("offset")?,
            min_score,
            order,
            deadline_ms: opt_usize("deadline-ms")?.map(|ms| ms as u64),
            explain: args.iter().any(|a| a == "--explain"),
        })
    }

    /// Whether any per-request option was given (if not, `query`/`batch`
    /// keep their historical output byte-for-byte).
    fn is_default(&self) -> bool {
        self.limit.is_none()
            && self.offset.is_none()
            && self.min_score.is_none()
            && self.order.is_none()
            && self.deadline_ms.is_none()
            && !self.explain
    }

    /// Lower onto an engine request through the same wire-opts path the
    /// server uses — one lowering to maintain, so CLI and wire semantics
    /// can never drift.
    fn to_request(self, text: &str) -> QueryRequest {
        self.to_wire().to_request(text, true)
    }

    /// The wire-protocol form, for `koko client`.
    fn to_wire(self) -> koko::serve::QueryOpts {
        koko::serve::QueryOpts {
            limit: self.limit.map(|k| k as u64),
            offset: self.offset.map(|n| n as u64),
            min_score: self.min_score,
            order: self.order.map(|o| match o {
                Order::DocOrder => koko::serve::WireOrder::Doc,
                Order::ScoreDesc => koko::serve::WireOrder::ScoreDesc,
            }),
            deadline_ms: self.deadline_ms,
            explain: self.explain,
            stream: false,
        }
    }
}

/// Deterministic rendering of an output's totals + explain report, for
/// opts-bearing `query`/`batch` runs (stdout, so it can be goldened —
/// timings stay on stderr).
fn print_request_summary(out: &koko::QueryOutput) {
    println!(
        "## matches: {} returned, {} total ({})",
        out.rows.len(),
        out.total_matches,
        if out.truncated {
            "truncated"
        } else {
            "complete"
        }
    );
    if let Some(explain) = &out.explain {
        println!("## explain");
        for plan in &explain.plans {
            println!("plan  {plan}");
        }
        for s in &explain.shards {
            println!(
                "shard {:>2} ({}): lookups {} | candidates {} | probes {} | docs {}/{} | tuples {} | rows {} | min_score pruned {} | early stop {} | bound {} | floor {} | bound skipped {} | block skipped {}",
                s.shard,
                if s.is_delta { "delta" } else { "base" },
                s.lookups,
                s.candidates,
                s.probes,
                s.docs_processed,
                s.docs,
                s.tuples,
                s.rows,
                s.min_score_pruned,
                s.early_stopped,
                s.score_bound,
                s.heap_floor
                    .map_or_else(|| "-".to_string(), |f| f.to_string()),
                s.bound_skipped_docs,
                s.block_bound_skipped_docs,
            );
        }
    }
}

/// Build an engine from `path` — a `.koko` snapshot (sniffed by magic
/// bytes) or a raw text corpus. Snapshot load failures surface the
/// structured message naming the file and the expected format version.
/// Snapshots are memory-mapped by default; `--eager` forces the full
/// up-front materialization (decode every shard at open).
fn load_engine(path: &str, args: &[String]) -> Result<Koko, String> {
    if is_snapshot_file(std::path::Path::new(path)) {
        let opts = EngineOpts {
            eager_load: args.iter().any(|a| a == "--eager"),
            ..EngineOpts::default()
        };
        return Koko::open_with_opts(std::path::Path::new(path), opts).map_err(|e| e.to_string());
    }
    let opts = EngineOpts {
        num_shards: arg_shards(args)?,
        ..EngineOpts::default()
    };
    Ok(Koko::from_texts_with_opts(&load_docs(path, args)?, opts))
}

/// The `-o <path>` / `--out=<path>` output flag shared by `build` and
/// `add`. `-o` must be followed by a real path — a missing or
/// flag-shaped value would silently misroute a destructive write (e.g.
/// `-o --compact` saving a snapshot to a file named "--compact").
fn arg_out_path(args: &[String]) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == "-o") {
        Some(i) => match args.get(i + 1) {
            Some(v) if !v.starts_with('-') => Ok(Some(v.clone())),
            _ => Err("-o expects an output path".into()),
        },
        None => Ok(args
            .iter()
            .find_map(|a| a.strip_prefix("--out=").map(str::to_string))),
    }
}

fn cmd_build(args: &[String]) -> i32 {
    let usage = "usage: koko build <corpus.txt> -o <snapshot.koko> [--shards=N] [--doc=para]";
    let input = args.first();
    let out = match arg_out_path(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{usage}");
            return 2;
        }
    };
    let (Some(input), Some(out)) = (input, out) else {
        eprintln!("{usage}");
        return 2;
    };
    if is_snapshot_file(std::path::Path::new(input)) {
        eprintln!("error: {input} is already a KOKO snapshot; `koko build` takes a text corpus");
        return 1;
    }
    let num_shards = match arg_shards(args) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let docs = match load_docs(input, args) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let t = std::time::Instant::now();
    let opts = EngineOpts {
        num_shards,
        ..EngineOpts::default()
    };
    let koko = Koko::from_texts_with_opts(&docs, opts);
    let ingest = t.elapsed();
    let t = std::time::Instant::now();
    match koko.save(std::path::Path::new(&out)) {
        Ok(bytes) => {
            eprintln!(
                "built {} documents into {} shards in {:.2?}; wrote {out} ({:.1} KiB) in {:.2?}",
                koko.num_documents(),
                koko.num_shards(),
                ingest,
                bytes as f64 / 1024.0,
                t.elapsed(),
            );
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

/// `koko add <snapshot.koko> <more.txt>` — incremental ingest: open an
/// existing snapshot, push the new documents through the full NLP
/// pipeline into a delta shard, optionally compact, and save the next
/// generation (in place, or to `-o`).
fn cmd_add(args: &[String]) -> i32 {
    let usage =
        "usage: koko add <snapshot.koko> <more.txt> [--compact] [-o <out.koko>] [--doc=para]";
    let out_flag = match arg_out_path(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{usage}");
            return 2;
        }
    };
    let mut positional: Vec<&String> = Vec::new();
    let mut skip_value = false;
    for a in args {
        if skip_value {
            skip_value = false;
        } else if a == "-o" {
            skip_value = true;
        } else if !a.starts_with('-') {
            positional.push(a);
        }
    }
    let (Some(snap_path), Some(more_path)) = (positional.first(), positional.get(1)) else {
        eprintln!("{usage}");
        return 2;
    };
    if !is_snapshot_file(std::path::Path::new(snap_path.as_str())) {
        eprintln!(
            "error: {snap_path} is not a KOKO snapshot; build one first with `koko build` \
             (incremental add needs the indexed form, not raw text)"
        );
        return 1;
    }
    // Write path: materialize everything up front so a corrupt section
    // fails here with a structured error, not inside the infallible
    // `add_texts`/`compact` calls below.
    let open_opts = EngineOpts {
        eager_load: true,
        ..EngineOpts::default()
    };
    let koko = match Koko::open_with_opts(std::path::Path::new(snap_path.as_str()), open_opts) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let docs = match load_docs(more_path, args) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let t = std::time::Instant::now();
    let report = koko.add_texts(&docs);
    let ingest = t.elapsed();
    if args.iter().any(|a| a == "--compact") {
        let c = koko.compact();
        eprintln!(
            "compacted {} delta shards into {} base shards (generation {})",
            c.merged_deltas, c.shards, c.generation
        );
    }
    let out_path = out_flag.unwrap_or_else(|| snap_path.to_string());
    match koko.save(std::path::Path::new(&out_path)) {
        Ok(bytes) => {
            eprintln!(
                "added {} documents in {:.2?} (total {} | epoch {} | generation {} | {} delta shards holding {} docs); wrote {out_path} ({:.1} KiB)",
                report.added,
                ingest,
                koko.num_documents(),
                koko.epoch(),
                koko.generation(),
                koko.num_delta_shards(),
                koko.snapshot().num_delta_documents(),
                bytes as f64 / 1024.0,
            );
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

fn print_rows(out: &koko::QueryOutput) {
    for row in &out.rows {
        let vals: Vec<String> = row
            .values
            .iter()
            .map(|v| format!("{}={:?}", v.name, v.text))
            .collect();
        println!(
            "doc {}\tscore {:.3}\t{}",
            row.doc,
            row.score,
            vals.join("\t")
        );
    }
}

fn cmd_query(args: &[String]) -> i32 {
    let (Some(path), Some(query)) = (args.first(), args.get(1)) else {
        eprintln!(
            "usage: koko query <corpus.txt|snapshot.koko> '<query>' [--limit=N] [--offset=N] \
             [--min-score=S] [--order=doc|score_desc] [--deadline-ms=N] [--explain] [--eager] \
             [--doc=para]"
        );
        return 2;
    };
    let flags = match RequestFlags::parse(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let koko = match load_engine(path, args) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    match koko.run(&flags.to_request(query)) {
        Ok(out) => {
            print_rows(&out);
            if !flags.is_default() {
                print_request_summary(&out);
            }
            eprintln!(
                "{} rows | {} candidate sentences | total {:?} (normalize {:?}, dpli {:?}, load {:?}, gsp {:?}, extract {:?}, satisfying {:?})",
                out.rows.len(),
                out.profile.candidate_sentences,
                out.profile.total(),
                out.profile.normalize,
                out.profile.dpli,
                out.profile.load_article,
                out.profile.gsp,
                out.profile.extract,
                out.profile.satisfying,
            );
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

fn cmd_batch(args: &[String]) -> i32 {
    let usage = "usage: koko batch <corpus.txt|snapshot.koko> '<query>' ['<query>' ...] \
                 [--limit=N] [--offset=N] [--min-score=S] [--order=doc|score_desc] \
                 [--deadline-ms=N] [--explain] [--eager] [--doc=para]";
    let Some(path) = args.first() else {
        eprintln!("{usage}");
        return 2;
    };
    let queries: Vec<String> = collect_positionals(&args[1..]);
    if queries.is_empty() {
        eprintln!("{usage}");
        return 2;
    }
    let flags = match RequestFlags::parse(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let koko = match load_engine(path, args) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let requests: Vec<QueryRequest> = queries.iter().map(|q| flags.to_request(q)).collect();
    let mut code = 0;
    for (q, result) in queries.iter().zip(koko.run_batch(&requests)) {
        println!("## {q}");
        match result {
            Ok(out) => {
                print_rows(&out);
                if !flags.is_default() {
                    print_request_summary(&out);
                }
                eprintln!("{} rows | total {:?}", out.rows.len(), out.profile.total());
            }
            Err(e) => {
                eprintln!("error: {e}");
                code = 1;
            }
        }
    }
    code
}

fn cmd_parse(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("usage: koko parse <corpus.txt> [--doc=para]");
        return 2;
    };
    let docs = match load_docs(path, args) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let pipeline = Pipeline::new();
    for (di, text) in docs.iter().enumerate() {
        let doc = pipeline.parse_document(di as u32, text);
        for (si, s) in doc.sentences.iter().enumerate() {
            println!("# doc {di} sentence {si}");
            print_sentence(s);
        }
    }
    0
}

fn print_sentence(s: &koko::Sentence) {
    let stats = tree_stats(s);
    for (i, t) in s.tokens.iter().enumerate() {
        let head = t
            .head
            .map(|h| format!("{h}:{}", s.tokens[h as usize].text))
            .unwrap_or("-".into());
        println!(
            "{i:>3}  {:<16} {:<6} {:<8} head={:<14} span={}..{} depth={}",
            t.text,
            t.pos.name(),
            t.label.name(),
            head,
            stats[i].left,
            stats[i].right,
            stats[i].depth
        );
    }
    for m in &s.entities {
        println!(
            "     entity [{}..{}] {:?} {}",
            m.start,
            m.end,
            s.mention_text(m),
            m.etype
        );
    }
}

fn cmd_stats(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("usage: koko stats <corpus.txt|snapshot.koko> [--doc=para]");
        return 2;
    };
    let koko = match load_engine(path, args) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let snap = koko.snapshot();
    // Stats walks every shard anyway, so materialize through the
    // fallible paths — a corrupt section prints a structured error
    // naming the file instead of panicking mid-report.
    let c = match snap.try_corpus() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    println!("documents:        {}", c.num_documents());
    println!("sentences:        {}", c.num_sentences());
    println!("tokens:           {}", c.num_tokens());
    println!("generation:       {}", snap.generation());
    let shards = match snap.try_shards() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let total_bytes: usize = shards.iter().map(|s| s.approx_index_bytes()).sum();
    println!(
        "shards:           {} ({} base + {} delta)",
        shards.len(),
        snap.num_base_shards(),
        snap.num_delta_shards()
    );
    println!("index footprint:  {} KiB (all shards)", total_bytes / 1024);
    for (i, shard) in shards.iter().enumerate() {
        let idx = shard.index();
        println!(
            "  {} {:>2}: docs {}..{} | {} sentences | {} KiB | PL {} nodes ({:.2}% merged) | POS {} nodes ({:.2}% merged) | {} entities",
            if i < snap.num_base_shards() {
                "shard"
            } else {
                "delta"
            },
            shard.id(),
            shard.doc_range().start,
            shard.doc_range().end,
            shard.num_sentences(),
            idx.approx_bytes() / 1024,
            idx.pl_index().num_nodes(),
            100.0 * idx.pl_index().compression_ratio(),
            idx.pos_index().num_nodes(),
            100.0 * idx.pos_index().compression_ratio(),
            idx.entities().count(),
        );
    }
    0
}

fn cmd_serve(args: &[String]) -> i32 {
    let usage = "usage: koko serve <corpus.txt|snapshot.koko> [--addr=HOST:PORT] [--threads=N] [--cache=N] [--shards=N] [--writable] [--worker] [--eager] [--doc=para] [--max-conns=N] [--tenant=name:rate:burst:queue:conc[:cap_ms]]... [--default-tenant=rate:burst:queue:conc[:cap_ms]]\n       koko serve <cluster.json> --coordinator [--addr=HOST:PORT] [--strict|--partial] [--deadline-ms=N]";
    let Some(path) = args.first() else {
        eprintln!("{usage}");
        return 2;
    };
    if args.iter().any(|a| a == "--coordinator") {
        return cmd_serve_coordinator(path, args);
    }
    let parsed = (|| -> Result<(String, usize, usize, usize), String> {
        let addr = arg_named_str(args, "addr").unwrap_or_else(|| "127.0.0.1:4100".to_string());
        // 0 = one worker per core; an absurd explicit count is an error,
        // not a 4-billion-thread attempt.
        let threads = arg_named_usize_in(args, "threads", 0, 0, MAX_THREADS)?;
        let cache = arg_named_usize_in(args, "cache", 1024, 0, 100_000_000)?;
        let max_conns = arg_named_usize_in(args, "max-conns", 4096, 1, 1_000_000)?;
        Ok((addr, threads, cache, max_conns))
    })();
    let (addr, threads, cache, max_conns) = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    // Multi-tenant admission control: each --tenant names a principal and
    // its budget; --default-tenant admits anonymous (no `auth`) clients.
    let mut tenants = koko::core::TenantTable::new();
    for spec in arg_named_all(args, "tenant") {
        if let Err(e) = tenants.insert_spec(&spec) {
            eprintln!("error: --tenant: {e}");
            return 2;
        }
    }
    if let Some(spec) = arg_named_str(args, "default-tenant") {
        match koko::core::TenantPolicy::parse(&spec) {
            Ok(policy) => tenants.set_default(policy),
            Err(e) => {
                eprintln!("error: --default-tenant: {e}");
                return 2;
            }
        }
    }
    // A cluster worker is a plain server that must accept the
    // coordinator's forwarded writes: --worker is --writable plus the
    // eager open that writability already implies.
    let writable = args.iter().any(|a| a == "--writable" || a == "--worker");
    let opts = EngineOpts {
        num_shards: match arg_shards(args) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("error: {e}");
                return 2;
            }
        },
        result_cache: cache,
        // A writable server mutates the index behind infallible APIs, so
        // it always pays the eager open; read-only servers take the mmap
        // fast path unless --eager asks for up-front materialization.
        eager_load: writable || args.iter().any(|a| a == "--eager"),
        ..EngineOpts::default()
    };
    // `parallel` stays on here so ingest / snapshot load fan out; the
    // server itself disables per-query shard parallelism (the worker
    // pool is the serving-time concurrency).
    let koko = if is_snapshot_file(std::path::Path::new(path)) {
        match Koko::open_with_opts(std::path::Path::new(path), opts) {
            Ok(k) => k,
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        }
    } else {
        match load_docs(path, args) {
            Ok(docs) => Koko::from_texts_with_opts(&docs, opts),
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        }
    };
    let documents = koko.num_documents();
    let shards = koko.num_shards();
    let admission = if tenants.is_empty() {
        "admission off".to_string()
    } else {
        format!(
            "{} tenant polic{}",
            tenants.len(),
            if tenants.len() == 1 { "y" } else { "ies" }
        )
    };
    let config = koko_serve::ServerConfig {
        threads,
        writable,
        tenants,
        max_connections: max_conns,
        ..koko_serve::ServerConfig::default()
    };
    match koko_serve::Server::bind_config(koko, &addr, config) {
        Ok(server) => {
            eprintln!(
                "serving {documents} documents ({shards} shards, {}) on {} | {} worker threads | result cache {cache} entries | {admission} | max {max_conns} connections",
                if writable { "writable" } else { "read-only" },
                server.local_addr(),
                server.threads(),
            );
            eprintln!("protocol: one JSON request per line (docs/SERVING.md); stop with {{\"cmd\":\"shutdown\"}}");
            server.join();
            0
        }
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            1
        }
    }
}

/// `koko serve <cluster.json> --coordinator` — bind the cluster front
/// door: fan queries out to the workers in the shard map, merge replies
/// byte-identically to single-node, route writes through the two-phase
/// epoch publish (see `docs/CLUSTER.md`).
fn cmd_serve_coordinator(path: &str, args: &[String]) -> i32 {
    let addr = arg_named_str(args, "addr").unwrap_or_else(|| "127.0.0.1:4100".to_string());
    let strict = args.iter().any(|a| a == "--strict");
    let partial = args.iter().any(|a| a == "--partial");
    if strict && partial {
        eprintln!("error: --strict and --partial are mutually exclusive");
        return 2;
    }
    let deadline_ms = match arg_named_usize_in(args, "deadline-ms", 10_000, 1, 3_600_000) {
        Ok(ms) => ms,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let map = match koko::cluster::ShardMap::load(std::path::Path::new(path)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let mode = if strict {
        Some(koko::cluster::Mode::Strict)
    } else if partial {
        Some(koko::cluster::Mode::Partial)
    } else {
        None
    };
    let config = koko::cluster::CoordinatorConfig {
        mode,
        default_deadline: std::time::Duration::from_millis(deadline_ms as u64),
        ..koko::cluster::CoordinatorConfig::default()
    };
    let workers = map.workers.len();
    let documents = map.total_docs();
    let epoch = map.epoch;
    let mode_str = mode.unwrap_or(map.mode).as_str();
    match koko::cluster::Coordinator::bind(map, &addr, config) {
        Ok(coordinator) => {
            eprintln!(
                "coordinating {workers} workers ({documents} documents, epoch {epoch}, {mode_str} mode) on {} | per-query deadline {deadline_ms} ms",
                coordinator.local_addr(),
            );
            eprintln!("protocol: one JSON request per line (docs/CLUSTER.md); stop with {{\"cmd\":\"shutdown\"}}");
            coordinator.join();
            0
        }
        Err(e) => {
            eprintln!("error: cannot start coordinator on {addr}: {e}");
            1
        }
    }
}

/// `koko cluster <split|status>` — topology tooling: cut a corpus into
/// per-worker snapshots plus a shard map, and probe a running cluster.
fn cmd_cluster(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("split") => cmd_cluster_split(&args[1..]),
        Some("status") => cmd_cluster_status(&args[1..]),
        _ => {
            eprintln!(
                "usage: koko cluster split <corpus.txt> --workers=N --out-dir=DIR [--port-base=4101] [--strict] [--shards=N] [--doc=para]\n       koko cluster status <cluster.json>"
            );
            2
        }
    }
}

fn cmd_cluster_split(args: &[String]) -> i32 {
    let usage = "usage: koko cluster split <corpus.txt> --workers=N --out-dir=DIR [--port-base=4101] [--strict] [--shards=N] [--doc=para]";
    let Some(input) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("{usage}");
        return 2;
    };
    if is_snapshot_file(std::path::Path::new(input.as_str())) {
        eprintln!("error: {input} is a KOKO snapshot; `koko cluster split` cuts a *text* corpus into per-worker snapshots");
        return 1;
    }
    let parsed = (|| -> Result<(usize, String, usize, usize), String> {
        let workers = arg_named_usize_in(args, "workers", 2, 1, 1024)?;
        let out_dir = arg_named_str(args, "out-dir").ok_or("missing --out-dir")?;
        let port_base = arg_named_usize_in(args, "port-base", 4101, 1, 65_535)?;
        let shards = arg_shards(args)?;
        Ok((workers, out_dir, port_base, shards))
    })();
    let (workers, out_dir, port_base, num_shards) = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n{usage}");
            return 2;
        }
    };
    let docs = match load_docs(input, args) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    if docs.len() < workers {
        eprintln!(
            "error: {} documents cannot cover {workers} workers (every worker needs a non-empty range)",
            docs.len()
        );
        return 1;
    }
    let dir = std::path::Path::new(&out_dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("error: cannot create {out_dir}: {e}");
        return 1;
    }
    // The same contiguous split ShardMap::split_even produces: remainder
    // spread over the leading workers.
    let per = docs.len() / workers;
    let extra = docs.len() % workers;
    let mut entries = Vec::with_capacity(workers);
    let mut doc_base = 0usize;
    let mut sid_base = 0usize;
    for i in 0..workers {
        let count = per + usize::from(i < extra);
        let slice = &docs[doc_base..doc_base + count];
        let koko = Koko::from_texts_with_opts(
            slice,
            EngineOpts {
                num_shards,
                ..EngineOpts::default()
            },
        );
        let sentences = koko.snapshot().num_sentences();
        let snap_name = format!("worker-{i}.koko");
        let snap_path = dir.join(&snap_name);
        match koko.save(&snap_path) {
            Ok(bytes) => eprintln!(
                "worker w{i}: docs [{doc_base}..{}) ({count} documents, {sentences} sentences) -> {} ({:.1} KiB)",
                doc_base + count,
                snap_path.display(),
                bytes as f64 / 1024.0,
            ),
            Err(e) => {
                eprintln!("error: cannot write {}: {e}", snap_path.display());
                return 1;
            }
        }
        entries.push(koko::cluster::WorkerEntry {
            name: format!("w{i}"),
            addr: format!("127.0.0.1:{}", port_base + i),
            replicas: Vec::new(),
            doc_base: doc_base as u32,
            docs: count as u32,
            sid_base: sid_base as u32,
            snapshot: Some(snap_name),
        });
        doc_base += count;
        sid_base += sentences;
    }
    let map = koko::cluster::ShardMap {
        version: 1,
        epoch: 0,
        mode: if args.iter().any(|a| a == "--strict") {
            koko::cluster::Mode::Strict
        } else {
            koko::cluster::Mode::Partial
        },
        workers: entries,
    };
    let map_path = dir.join("cluster.json");
    if let Err(e) = map.validate().and_then(|()| map.save(&map_path)) {
        eprintln!("error: {e}");
        return 1;
    }
    eprintln!("wrote {}", map_path.display());
    eprintln!(
        "start each worker:  koko serve {out_dir}/worker-<i>.koko --worker --addr=127.0.0.1:<port>"
    );
    eprintln!(
        "then the frontend:  koko serve {} --coordinator",
        map_path.display()
    );
    0
}

fn cmd_cluster_status(args: &[String]) -> i32 {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: koko cluster status <cluster.json>");
        return 2;
    };
    let map = match koko::cluster::ShardMap::load(std::path::Path::new(path)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    println!(
        "epoch {} | {} mode | {} workers | {} documents",
        map.epoch,
        map.mode.as_str(),
        map.workers.len(),
        map.total_docs()
    );
    let mut down = 0usize;
    for w in &map.workers {
        let state = probe_worker(&w.addr);
        if state != "up" {
            down += 1;
        }
        println!(
            "{:>4}  {:<21}  docs [{}..{})  sid_base {}  replicas {}  {}",
            w.name,
            w.addr,
            w.doc_base,
            w.doc_base + w.docs,
            w.sid_base,
            w.replicas.len(),
            state
        );
    }
    i32::from(down > 0)
}

/// Ping one worker with bounded connect/read timeouts so `status` never
/// hangs on a wedged node.
fn probe_worker(addr: &str) -> &'static str {
    use std::io::{BufRead, BufReader, Write};
    let timeout = std::time::Duration::from_millis(1000);
    let Some(sock_addr) = addr.parse().ok().or_else(|| {
        std::net::ToSocketAddrs::to_socket_addrs(&addr)
            .ok()
            .and_then(|mut a| a.next())
    }) else {
        return "bad address";
    };
    let Ok(mut stream) = std::net::TcpStream::connect_timeout(&sock_addr, timeout) else {
        return "DOWN (connect failed)";
    };
    let _ = stream.set_read_timeout(Some(timeout));
    if stream.write_all(b"{\"id\":0,\"cmd\":\"ping\"}\n").is_err() {
        return "DOWN (write failed)";
    }
    let mut line = String::new();
    match BufReader::new(stream).read_line(&mut line) {
        Ok(n) if n > 0 && line.contains("\"pong\":true") => "up",
        _ => "DOWN (no pong)",
    }
}

fn cmd_client(args: &[String]) -> i32 {
    let usage = "usage: koko client <HOST:PORT> ['<query>' ...] [--threads=N] [--repeat=M] [--no-cache] [--limit=N] [--offset=N] [--min-score=S] [--order=doc|score_desc] [--deadline-ms=N] [--explain] [--auth=TENANT] [--stream] [--open-loop --rate=RPS --requests=N] [--add=<more.txt>] [--compact] [--stats] [--shutdown]";
    let Some(addr) = args.first() else {
        eprintln!("{usage}");
        return 2;
    };
    let flags = match RequestFlags::parse(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let queries: Vec<String> = collect_positionals(&args[1..]);
    let stats = args.iter().any(|a| a == "--stats");
    let shutdown = args.iter().any(|a| a == "--shutdown");
    let compact = args.iter().any(|a| a == "--compact");
    let add_file = arg_named_str(args, "add");
    let cache = !args.iter().any(|a| a == "--no-cache");
    let auth = arg_named_str(args, "auth");
    let stream_mode = args.iter().any(|a| a == "--stream");
    let open_loop = args.iter().any(|a| a == "--open-loop");
    // A zero-thread client can send nothing and a huge pool would only
    // DOS the local machine: both are structured errors (satellite fix —
    // these used to fall through to panics / silent no-ops).
    let (threads, repeat) = match (
        arg_named_usize_in(args, "threads", 1, 1, MAX_THREADS),
        arg_named_usize_in(args, "repeat", 1, 1, MAX_REPEAT),
    ) {
        (Ok(t), Ok(r)) => (t, r),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    if queries.is_empty() && !stats && !shutdown && !compact && add_file.is_none() {
        eprintln!("{usage}");
        return 2;
    }

    // Online updates first: push new documents / compaction before any
    // queries of the same invocation, so they observe the new epoch.
    if add_file.is_some() || compact {
        let mut client = match koko_serve::Client::connect(addr) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: cannot connect to {addr}: {e}");
                return 1;
            }
        };
        if let Some(file) = add_file {
            let docs = match load_docs(&file, args) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 1;
                }
            };
            match client.add(&docs) {
                Ok(line) => {
                    println!("{line}");
                    if line.contains("\"ok\":false") {
                        return 1;
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    return 1;
                }
            }
        }
        if compact {
            match client.compact() {
                Ok(line) => {
                    println!("{line}");
                    if line.contains("\"ok\":false") {
                        return 1;
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    return 1;
                }
            }
        }
    }

    let mut code = 0;
    if !queries.is_empty() && open_loop {
        // Open-loop (fixed-arrival-rate) measurement mode: arrivals are
        // scheduled, latency is measured from the schedule (so a server
        // falling behind shows it in the tail), and the summary reports
        // p50/p95/p99.
        let parsed = (|| -> Result<(f64, usize), String> {
            let rate = match arg_named_str(args, "rate") {
                None => 100.0,
                Some(v) => match v.parse::<f64>() {
                    Ok(r) if r.is_finite() && r > 0.0 => r,
                    _ => return Err(format!("--rate expects a positive number, got {v:?}")),
                },
            };
            let requests = arg_named_usize_in(args, "requests", 100, 1, 100_000_000)?;
            Ok((rate, requests))
        })();
        let (rate, requests) = match parsed {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {e}");
                return 2;
            }
        };
        let wire_opts = (!flags.is_default()).then(|| flags.to_wire());
        match koko_serve::run_load_open(
            addr,
            &queries,
            threads,
            requests,
            rate,
            cache,
            wire_opts,
            auth.as_deref(),
        ) {
            Ok(r) => {
                // Machine-readable summary on stdout, prose on stderr.
                println!(
                    "{{\"requests\":{},\"ok\":{},\"errors\":{},\"offered_rps\":{:.1},\"achieved_rps\":{:.1},\"p50_ms\":{:.3},\"p95_ms\":{:.3},\"p99_ms\":{:.3}}}",
                    r.requests,
                    r.ok,
                    r.errors,
                    r.offered_rps,
                    r.achieved_rps,
                    r.p50.as_secs_f64() * 1e3,
                    r.p95.as_secs_f64() * 1e3,
                    r.p99.as_secs_f64() * 1e3,
                );
                eprintln!(
                    "open loop: {} arrivals at {:.0} rps over {} connections in {:.3}s | achieved {:.0} rps | p50 {:.2}ms p95 {:.2}ms p99 {:.2}ms | {} ok, {} errors",
                    r.requests,
                    r.offered_rps,
                    r.threads,
                    r.wall.as_secs_f64(),
                    r.achieved_rps,
                    r.p50.as_secs_f64() * 1e3,
                    r.p95.as_secs_f64() * 1e3,
                    r.p99.as_secs_f64() * 1e3,
                    r.ok,
                    r.errors,
                );
                if r.errors > 0 {
                    code = 1;
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        }
    } else if !queries.is_empty() && stream_mode {
        // Streamed responses: header / reassembled rows / trailer per
        // query on stdout (one connection, sequential — streaming is a
        // framing mode, not a load mode).
        let mut client = match koko_serve::Client::connect(addr) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: cannot connect to {addr}: {e}");
                return 1;
            }
        };
        for _ in 0..repeat {
            for q in &queries {
                match client.query_stream(q, cache, flags.to_wire(), auth.as_deref()) {
                    Ok(s) => {
                        println!("{}", s.header);
                        if s.header.contains("\"ok\":false") {
                            code = 1;
                            continue;
                        }
                        println!("{}", s.rows_json);
                        println!("{}", s.trailer);
                    }
                    Err(e) => {
                        eprintln!("error: {e}");
                        return 1;
                    }
                }
            }
        }
    } else if !queries.is_empty() {
        // Per-request options ride along as the wire `opts` object; the
        // server answers with the extended response shape.
        let wire_opts = (!flags.is_default()).then(|| flags.to_wire());
        match koko_serve::run_load_as(
            addr,
            &queries,
            threads,
            repeat,
            cache,
            wire_opts,
            auth.as_deref(),
        ) {
            Ok(report) => {
                // One thread's responses in send order on stdout (scripted
                // use); the load summary goes to stderr.
                for line in &report.responses[0] {
                    println!("{line}");
                    if line.contains("\"ok\":false") {
                        code = 1;
                    }
                }
                eprintln!(
                    "{} requests over {} threads in {:.3}s | {:.0} queries/s | {} ok, {} errors",
                    report.requests,
                    report.threads,
                    report.wall.as_secs_f64(),
                    report.qps,
                    report.ok,
                    report.errors,
                );
            }
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        }
    }
    if stats || shutdown {
        let mut client = match koko_serve::Client::connect(addr) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: cannot connect to {addr}: {e}");
                return 1;
            }
        };
        if stats {
            match client.stats() {
                Ok(line) => println!("{line}"),
                Err(e) => {
                    eprintln!("error: {e}");
                    return 1;
                }
            }
        }
        if shutdown {
            match client.shutdown() {
                Ok(line) => println!("{line}"),
                Err(e) => {
                    eprintln!("error: {e}");
                    return 1;
                }
            }
        }
    }
    code
}

fn cmd_demo() -> i32 {
    let text = "I ate a chocolate ice cream, which was delicious, and also ate a pie.";
    println!("## Figure 1 sentence\n{text}\n");
    let pipeline = Pipeline::new();
    let doc = pipeline.parse_document(0, text);
    print_sentence(&doc.sentences[0]);
    println!("\n## Example 2.1 query");
    let koko = Koko::from_texts(&[text]);
    match koko.query(koko::queries::EXAMPLE_2_1) {
        Ok(out) => {
            for row in &out.rows {
                for v in &row.values {
                    println!("  {} = {:?}", v.name, v.text);
                }
            }
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}
