//! # KOKO — Scalable Semantic Querying of Text
//!
//! A from-scratch Rust reproduction of *Scalable Semantic Querying of Text*
//! (Wang, Feng, Golshan, Halevy, Mihaila, Oiwa, Tan — VLDB 2018,
//! arXiv:1805.01083): a declarative information-extraction engine whose
//! query language combines surface-text conditions, XPath-like conditions
//! over dependency parse trees, and a semantic-similarity operator with
//! document-level evidence aggregation — scaled by a multi-index (inverted
//! word/entity indices + compressed hierarchy indices) and a skip-plan
//! heuristic. The query language is documented in `docs/QUERYLANG.md`.
//!
//! This facade crate re-exports the public API; see the workspace crates
//! for internals:
//!
//! * [`nlp`] — the NLP preprocessing substrate (tokenizer, tagger,
//!   dependency parser, NER, clause decomposition);
//! * [`regex`] — the regular-expression engine used by query conditions;
//! * [`embed`] — paraphrase embeddings + descriptor expansion;
//! * [`storage`] — the embedded store (codec, tables, closure tables,
//!   document store, the `.koko` snapshot container);
//! * [`index`] — the KOKO multi-index and the three §6.2 baselines;
//! * [`lang`] — the query language (lexer/parser/AST/normalizer);
//! * [`core`] — the sharded evaluation engine (Snapshot, parallel
//!   executor, persistence, DPLI, GSP, aggregation);
//! * [`corpus`] — synthetic corpora + the SyntheticTree/SyntheticSpan
//!   benchmarks;
//! * [`baselines`] — CRF, IKE, NELL and Odin re-implementations;
//! * [`serve`] — the concurrent query server (NDJSON-over-TCP protocol,
//!   worker pool over one shared snapshot, load-generating client); see
//!   `docs/SERVING.md`;
//! * [`cluster`] — the multi-node layer: a coordinator that owns the
//!   shard map, fans queries out to worker servers over the wire
//!   protocol, and merges replies byte-identically to single-node
//!   execution; see `docs/CLUSTER.md`.
//!
//! The engine is sharded: the corpus is partitioned into contiguous
//! document ranges, each with its own index and document store
//! ([`index::Shard`]), ingested and queried in parallel. Results are
//! byte-identical to sequential evaluation regardless of the shard count
//! (`EngineOpts::num_shards`; 0 = one per core).
//!
//! # Quickstart
//!
//! ```
//! use koko::Koko;
//!
//! let koko = Koko::from_texts(&[
//!     "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
//! ]);
//! let out = koko
//!     .query(
//!         r#"extract e:Entity, d:Str from input.txt if
//!            (/ROOT:{ a = //verb, b = a/dobj, c = b//"delicious",
//!                     d = (b.subtree) } (b) in (e))"#,
//!     )
//!     .unwrap();
//! assert_eq!(out.rows[0].values[0].text, "chocolate ice cream");
//! ```
//!
//! Per-request control — top-k, score floors, deadlines, explain plans —
//! goes through the [`QueryRequest`] builder (see `docs/API.md`):
//!
//! ```
//! use koko::{Koko, QueryRequest};
//!
//! let koko = Koko::from_texts(&[
//!     "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
//!     "Anna ate some delicious cheesecake that she bought at a grocery store.",
//! ]);
//! let out = QueryRequest::new(koko::queries::EXAMPLE_2_1)
//!     .limit(1)
//!     .min_score(0.0)
//!     .run(&koko)
//!     .unwrap();
//! assert_eq!(out.rows.len(), 1);
//! assert!(out.truncated, "a second match exists");
//! ```
//!
//! # Build once, query many times
//!
//! Ingest (NLP parsing + index construction) dominates cold-start cost.
//! [`Snapshot::save`](core::Snapshot::save) persists the fully built
//! engine state to a single `.koko` file; [`Koko::open`] maps it back
//! without re-running any build step, with byte-identical query results:
//!
//! ```
//! use koko::Koko;
//!
//! let built = Koko::from_texts(&["Anna ate some delicious cheesecake."]);
//! let path = std::env::temp_dir().join("facade_doctest.koko");
//! built.save(&path).unwrap();
//!
//! let loaded = Koko::open(&path).unwrap();
//! let q = koko::queries::EXAMPLE_2_1;
//! assert_eq!(loaded.query(q).unwrap().rows, built.query(q).unwrap().rows);
//! # std::fs::remove_file(&path).ok();
//! ```

#![deny(missing_docs)]

pub use koko_baselines as baselines;
pub use koko_cluster as cluster;
pub use koko_core as core;
pub use koko_corpus as corpus;
pub use koko_embed as embed;
pub use koko_index as index;
pub use koko_lang as lang;
pub use koko_nlp as nlp;
pub use koko_regex as regex;
pub use koko_serve as serve;
pub use koko_storage as storage;

pub use koko_core::{
    AddReport, CacheStats, CompactReport, EngineOpts, Error, Explain, Koko, LiveIndex, Order,
    OutValue, Profile, QueryOutput, QueryRequest, RemoteShardExplain, Row, ShardExplain, Snapshot,
};
pub use koko_lang::{normalize, parse_query, queries};
pub use koko_nlp::{Corpus, Document, Pipeline, Sentence};
