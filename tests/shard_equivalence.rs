//! Sharded/parallel execution must be *byte-identical* (rows, order,
//! scores) to the sequential single-shard evaluator — the correctness
//! contract of the sharded architecture. Exercises 1-document, empty,
//! shard-boundary (docs == shards, docs < shards, docs % shards != 0) and
//! generator corpora across the paper's query set, plus `query_batch`.

use koko::core::{EngineOpts, Koko};
use koko::nlp::Pipeline;
use koko::{queries, Corpus, QueryOutput};

fn opts(num_shards: usize, parallel: bool) -> EngineOpts {
    EngineOpts {
        num_shards,
        parallel,
        ..EngineOpts::default()
    }
}

/// Render rows with full content so comparisons cover text, spans, sids,
/// docs, scores — and ORDER (no sorting here on purpose).
fn render(out: &QueryOutput) -> Vec<String> {
    out.rows
        .iter()
        .map(|r| format!("doc={} score={:.6} values={:?}", r.doc, r.score, r.values))
        .collect()
}

fn assert_equivalent(corpus: &Corpus, queries: &[&str], shard_counts: &[usize]) {
    let sequential = Koko::from_corpus_with_opts(corpus.clone(), opts(1, false));
    for &k in shard_counts {
        let sharded = Koko::from_corpus_with_opts(corpus.clone(), opts(k, true));
        for q in queries {
            let a = sequential
                .query(q)
                .unwrap_or_else(|e| panic!("seq {q}: {e}"));
            let b = sharded
                .query(q)
                .unwrap_or_else(|e| panic!("shard {q}: {e}"));
            assert_eq!(
                render(&a),
                render(&b),
                "rows differ (shards={k}) for query: {q}"
            );
            assert_eq!(
                a.profile.candidate_sentences, b.profile.candidate_sentences,
                "candidate count differs (shards={k}) for query: {q}"
            );
            assert_eq!(
                a.profile.raw_tuples, b.profile.raw_tuples,
                "raw tuple count differs (shards={k}) for query: {q}"
            );
        }
    }
}

const PAPER_QUERIES: &[&str] = &[
    queries::EXAMPLE_2_1,
    queries::EXAMPLE_2_3,
    queries::TITLE,
    queries::DATE_OF_BIRTH,
    queries::CHOCOLATE,
];

#[test]
fn empty_corpus() {
    let corpus = Corpus::new(Vec::new());
    assert_equivalent(&corpus, PAPER_QUERIES, &[2, 4]);
}

#[test]
fn single_document_corpus() {
    let corpus = Pipeline::new()
        .parse_corpus(&["I ate a chocolate ice cream, which was delicious, and also ate a pie."]);
    // More shards than documents: the layer must clamp, not crash.
    assert_equivalent(&corpus, PAPER_QUERIES, &[1, 2, 8]);
}

#[test]
fn shard_boundary_corpora() {
    let texts = koko::corpus::wiki::generate(6, 99);
    let corpus = Pipeline::new().parse_corpus(&texts);
    // docs == shards, docs % shards != 0, docs < shards.
    assert_equivalent(&corpus, PAPER_QUERIES, &[6, 4, 16]);
}

#[test]
fn wiki_corpus_all_scaleup_queries() {
    let texts = koko::corpus::wiki::generate(40, 4242);
    let corpus = Pipeline::new().parse_corpus(&texts);
    assert_equivalent(&corpus, PAPER_QUERIES, &[2, 3, 7]);
}

#[test]
fn happydb_corpus_synthetic_queries() {
    // The gsp_equivalence-style corpus: HappyDB sentences with generated
    // span queries of mixed atom counts.
    let texts = koko::corpus::happydb::generate(30, 13);
    let corpus = Pipeline::new().parse_corpus(&texts);
    let generated = koko::corpus::synthetic_span::generate(&corpus, 3);
    let sample: Vec<&str> = generated
        .iter()
        .filter(|q| q.atoms <= 3)
        .step_by(11)
        .map(|q| q.text.as_str())
        .collect();
    assert!(sample.len() >= 8, "need a meaningful query sample");
    assert_equivalent(&corpus, &sample, &[3, 5]);
}

#[test]
fn store_backed_and_in_memory_paths_agree_when_sharded() {
    let texts = koko::corpus::wiki::generate(12, 7);
    let corpus = Pipeline::new().parse_corpus(&texts);
    let stored = Koko::from_corpus_with_opts(corpus.clone(), opts(4, true));
    let borrowed = Koko::from_corpus_with_opts(
        corpus,
        EngineOpts {
            store_backed: false,
            ..opts(4, true)
        },
    );
    for q in PAPER_QUERIES {
        assert_eq!(
            render(&stored.query(q).unwrap()),
            render(&borrowed.query(q).unwrap()),
            "store-backed vs in-memory rows differ for: {q}"
        );
    }
}

#[test]
fn query_batch_matches_individual_queries() {
    let texts = koko::corpus::wiki::generate(15, 21);
    let corpus = Pipeline::new().parse_corpus(&texts);
    for k in [1, 3] {
        let koko = Koko::from_corpus_with_opts(corpus.clone(), opts(k, true));
        let batch = koko.query_batch(PAPER_QUERIES);
        assert_eq!(batch.len(), PAPER_QUERIES.len());
        for (q, out) in PAPER_QUERIES.iter().zip(batch) {
            let individual = koko.query(q).unwrap();
            assert_eq!(
                render(&individual),
                render(&out.unwrap()),
                "batch result differs (shards={k}) for: {q}"
            );
        }
    }
    // Errors surface per slot without poisoning the batch.
    let koko = Koko::from_corpus_with_opts(corpus, opts(2, true));
    let mixed = koko.query_batch(&["not a query", queries::TITLE]);
    assert!(mixed[0].is_err());
    assert!(mixed[1].is_ok());
}

#[test]
fn resharding_via_with_opts_preserves_results() {
    let texts = koko::corpus::wiki::generate(10, 5);
    let corpus = Pipeline::new().parse_corpus(&texts);
    let base = Koko::from_corpus_with_opts(corpus, opts(1, false));
    let expected = render(&base.query(queries::TITLE).unwrap());
    let resharded = base.with_opts(opts(5, true));
    assert_eq!(resharded.num_shards(), 5);
    assert_eq!(render(&resharded.query(queries::TITLE).unwrap()), expected);
}
