//! Public-API surface guard: every name the facade re-exports, and the
//! signatures downstream code builds against, asserted at compile time.
//! An accidental rename, removal, or signature change fails this test
//! loudly at `cargo test` time instead of silently breaking users.
//!
//! Extend this file whenever the public surface intentionally grows; do
//! not weaken it to make a refactor compile.
#![allow(clippy::type_complexity)]

// ---- Facade re-exports: every name must resolve --------------------------
#[allow(unused_imports)]
use koko::{
    baselines,
    cluster,
    core,
    corpus,
    embed,
    index,
    lang,
    nlp,
    normalize,
    parse_query,
    queries, // lang helpers
    regex,
    serve,
    storage, // crate aliases
    AddReport,
    CacheStats,
    CompactReport,
    Corpus,
    Document,
    EngineOpts,
    Error,
    Explain,
    Koko,
    LiveIndex,
    Order,
    OutValue,
    Pipeline,
    Profile,
    QueryOutput,
    QueryRequest,
    RemoteShardExplain,
    Row,
    Sentence,
    ShardExplain,
    Snapshot,
};

use std::time::Duration;

// ---- Signature pins (compile-time) ---------------------------------------
// Engine entry points.
const _QUERY: fn(&Koko, &str) -> Result<QueryOutput, Error> = Koko::query;
const _QUERY_WITH_CACHE: fn(&Koko, &str, bool) -> Result<QueryOutput, Error> =
    Koko::query_with_cache;
const _RUN: fn(&Koko, &QueryRequest) -> Result<QueryOutput, Error> = Koko::run;
const _QUERY_BATCH: fn(&Koko, &[&str]) -> Vec<Result<QueryOutput, Error>> = Koko::query_batch;
const _RUN_BATCH: fn(&Koko, &[QueryRequest]) -> Vec<Result<QueryOutput, Error>> = Koko::run_batch;
const _SAVE: fn(&Koko, &std::path::Path) -> Result<u64, Error> = Koko::save;
const _OPEN: fn(&std::path::Path) -> Result<Koko, Error> = Koko::open;
const _OPEN_WITH_OPTS: fn(&std::path::Path, EngineOpts) -> Result<Koko, Error> =
    Koko::open_with_opts;
const _CACHE_STATS: fn(&Koko) -> CacheStats = Koko::cache_stats;
const _COMPACT: fn(&Koko) -> CompactReport = Koko::compact;

// Snapshot persistence: the mmap fast path and the fallible accessors it
// introduces (panicking `corpus()`/`shards()` remain for eager callers).
const _SNAP_OPEN_MMAP: fn(&std::path::Path) -> Result<Snapshot, Error> = Snapshot::open_mmap;
const _SNAP_LOAD: fn(&std::path::Path, bool) -> Result<Snapshot, Error> = Snapshot::load;
const _SNAP_TRY_CORPUS: fn(&Snapshot) -> Result<&Corpus, storage::SnapshotFileError> =
    Snapshot::try_corpus;
const _SNAP_TRY_SHARDS: fn(
    &Snapshot,
) -> Result<&[std::sync::Arc<index::Shard>], storage::SnapshotFileError> = Snapshot::try_shards;

// QueryRequest builder: every method, chained the way user code writes it.
const _REQ_RUN: fn(&QueryRequest, &Koko) -> Result<QueryOutput, Error> = QueryRequest::run;
const _REQ_TEXT: fn(&QueryRequest) -> &str = QueryRequest::text;

// Serve layer.
const _WIRE_QUERY: fn(&mut serve::Client, &str, bool, serve::QueryOpts) -> std::io::Result<String> =
    serve::Client::query_with_opts;
const _WIRE_QUERY_AS: fn(
    &mut serve::Client,
    &str,
    bool,
    Option<serve::QueryOpts>,
    Option<&str>,
) -> std::io::Result<String> = serve::Client::query_as;
const _WIRE_QUERY_STREAM: fn(
    &mut serve::Client,
    &str,
    bool,
    serve::QueryOpts,
    Option<&str>,
) -> std::io::Result<serve::StreamedResponse> = serve::Client::query_stream;
const _OPEN_LOOP: fn(
    &str,
    &[String],
    usize,
    usize,
    f64,
    bool,
    Option<serve::QueryOpts>,
    Option<&str>,
) -> std::io::Result<serve::OpenLoadReport> = serve::run_load_open;

#[test]
fn query_request_builder_chains_every_option() {
    let req = QueryRequest::new("extract x:Entity from t if ()")
        .limit(10)
        .offset(5)
        .min_score(0.5)
        .order(Order::ScoreDesc)
        .deadline(Duration::from_millis(50))
        .cache(false)
        .explain(true);
    assert_eq!(req.text(), "extract x:Entity from t if ()");
    // Both orders exist and default is DocOrder.
    assert_eq!(Order::default(), Order::DocOrder);
    let _ = Order::ScoreDesc;
}

#[test]
fn query_output_carries_the_documented_fields() {
    let out = QueryOutput::default();
    let _rows: &Vec<Row> = &out.rows;
    let _total: usize = out.total_matches;
    let _truncated: bool = out.truncated;
    let _explain: &Option<Explain> = &out.explain;
    let _profile: &Profile = &out.profile;
    // Explain shape.
    let e = Explain::default();
    let _plans: &Vec<String> = &e.plans;
    let _shards: &Vec<ShardExplain> = &e.shards;
    // Cluster execution: one entry per remote worker (always empty for
    // single-node runs), plus the health summaries built on them.
    let _remote: &Vec<RemoteShardExplain> = &e.remote_shards;
    let _ = (e.healthy_workers(), e.failed_workers());
    let r = RemoteShardExplain::default();
    let _: (&String, &String) = (&r.worker, &r.addr);
    let _: (u32, u32) = (r.doc_base, r.docs);
    let _: (usize, f64, usize) = (r.rows, r.rtt_ms, r.retries);
    let _: &Option<String> = &r.error;
    let _ = e.total_candidates();
    let _ = e.early_terminated();
    // Per-shard ranked top-k counters.
    let s = ShardExplain::default();
    let _bound: f64 = s.score_bound;
    let _floor: Option<f64> = s.heap_floor;
    let _skipped: usize = s.bound_skipped_docs;
    // Block-max refinement + streamed-intersection counters.
    let _block_skipped: usize = s.block_bound_skipped_docs;
    let _probes: usize = s.probes;
}

#[test]
fn engine_opts_carry_the_eager_load_switch() {
    // `eager_load` selects up-front materialization over the mmap open;
    // it can never change results, only when decode costs are paid.
    let opts = EngineOpts {
        eager_load: true,
        ..EngineOpts::default()
    };
    assert!(opts.eager_load);
    assert!(!EngineOpts::default().eager_load, "mmap is the default");
}

#[test]
fn snapshot_file_errors_cover_the_hostile_input_taxonomy() {
    use koko::storage::SnapshotFileError;
    // Every structured rejection a `.koko` open can produce; matching on
    // these is part of the public contract (docs/SNAPSHOTS.md).
    for e in [
        SnapshotFileError::Io {
            path: "x".into(),
            error: "e".into(),
        },
        SnapshotFileError::NotASnapshot { path: "x".into() },
        SnapshotFileError::WrongVersion {
            path: "x".into(),
            found: 9,
        },
        SnapshotFileError::Truncated {
            path: "x".into(),
            expected: 2,
            found: 1,
        },
        SnapshotFileError::TrailingBytes {
            path: "x".into(),
            declared: 1,
            actual: 2,
        },
        SnapshotFileError::TooLarge {
            path: "x".into(),
            declared: u64::MAX,
        },
        SnapshotFileError::ChecksumMismatch { path: "x".into() },
        SnapshotFileError::Corrupt {
            path: "x".into(),
            detail: "d".into(),
        },
    ] {
        assert!(e.to_string().contains('x'), "{e}: names the file");
    }
}

#[test]
fn error_has_the_structured_deadline_variant() {
    let e = Error::DeadlineExceeded {
        budget: Duration::from_millis(1),
        elapsed: Duration::from_millis(2),
    };
    let rendered = e.to_string();
    assert!(rendered.contains("deadline exceeded"), "{rendered}");
}

#[test]
fn profile_exposes_the_pruning_counters() {
    let p = Profile::default();
    let _ = (
        p.docs_skipped,
        p.candidates_skipped,
        p.min_score_pruned,
        p.bound_skipped_docs,
        p.block_bound_skipped_docs,
        p.gallop_probes,
    );
    let _ = (
        p.candidate_sentences,
        p.delta_candidates,
        p.raw_tuples,
        p.compiled_cache_hits,
        p.compiled_cache_misses,
        p.result_cache_hits,
        p.result_cache_misses,
    );
    // Coordinator fan-out accounting (zero on single-node executions;
    // deliberately excluded from `Profile::total()` — the six Table 2
    // stage columns stay comparable across topologies).
    let _: usize = p.remote_shards;
    let _: Duration = p.remote_wait;
}

#[test]
fn cluster_surface_is_stable() {
    use koko::cluster::{Coordinator, CoordinatorConfig, Mode, ShardMap, WorkerEntry};
    // Shard-map format + topology helpers.
    let map = ShardMap::split_even(8, &["a:1".into(), "b:2".into()], Mode::Partial);
    assert_eq!(map.workers.len(), 2);
    assert_eq!(map.total_docs(), 8);
    map.validate().unwrap();
    let round = ShardMap::parse(&map.to_json()).unwrap();
    assert_eq!(round, map);
    let w = WorkerEntry {
        name: "w0".into(),
        addr: "h:1".into(),
        replicas: vec!["h:2".into()],
        doc_base: 0,
        docs: 4,
        sid_base: 0,
        snapshot: None,
    };
    assert_eq!(w.endpoints(), vec!["h:1".to_string(), "h:2".to_string()]);
    let _ = (Mode::Strict.as_str(), Mode::Partial.as_str());
    // Coordinator entry points.
    let _bind: fn(ShardMap, &str, CoordinatorConfig) -> std::io::Result<Coordinator> =
        Coordinator::bind;
    let config = CoordinatorConfig::default();
    let _: Duration = config.default_deadline;
    let _: Duration = config.write_deadline;
    // Fan-out failure taxonomy is public: coordinator explain strings
    // are built from it.
    let _ = cluster::WorkerError::Timeout.wire();
}

#[test]
fn serve_client_retry_surface_is_stable() {
    use koko::serve::{is_transient, Client, RetryPolicy, ServeError};
    let policy = RetryPolicy::default();
    assert!(policy.attempts >= 1);
    let _connect: fn(&str, RetryPolicy) -> Result<Client, ServeError> = Client::connect_with_retry;
    assert!(is_transient(&std::io::Error::from(
        std::io::ErrorKind::ConnectionRefused
    )));
    let unavailable = ServeError::Unavailable {
        addr: "h:1".into(),
        attempts: 3,
        last: std::io::Error::from(std::io::ErrorKind::ConnectionReset),
    };
    let rendered = unavailable.to_string();
    assert!(
        rendered.contains("h:1") && rendered.contains('3'),
        "{rendered}"
    );
    let _: std::io::Error = unavailable.into();
}

#[test]
fn wire_opts_surface_is_stable() {
    let opts = serve::QueryOpts {
        limit: Some(1),
        offset: Some(2),
        min_score: Some(0.5),
        order: Some(serve::WireOrder::ScoreDesc),
        deadline_ms: Some(100),
        explain: true,
        stream: false,
    };
    assert!(!opts.is_default());
    let req = opts.to_request("q", true);
    assert_eq!(req.text(), "q");
}

#[test]
fn tenant_admission_surface_is_stable() {
    use koko::core::{Admission, AdmissionState, TenantPolicy, TenantTable};
    let mut table = TenantTable::new();
    table
        .insert_spec("alice:10:5:8:2")
        .expect("spec must parse");
    table.set_default(TenantPolicy::default());
    let policy = TenantPolicy::parse("1:1:1:1:250").expect("cap form must parse");
    assert_eq!(policy.deadline_cap, Some(Duration::from_millis(250)));
    let mut adm = AdmissionState::new(table);
    assert!(adm.enabled());
    assert!(matches!(adm.admit(Some("alice"), 0.0), Admission::Dispatch));
    adm.on_complete(Some("alice"));
    // Server-side config for the event-loop server.
    let config = serve::ServerConfig::default();
    let _ = (
        config.threads,
        config.writable,
        config.max_connections,
        config.write_buffer_cap,
        config.pipeline_depth,
        config.drain_timeout,
    );
}
