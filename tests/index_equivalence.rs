//! Cross-crate index invariants over generated corpora: every scheme's
//! candidate set is complete (§4.2.2), and the effectiveness ordering of
//! Figures 7/8 holds (KOKO ≈ ADVINVERTED ≥ SUBTREE > INVERTED).

use koko::corpus::synthetic_tree;
use koko::index::{
    effectiveness, ground_truth_sids, AdvInvertedIndex, CandidateIndex, InvertedIndex, KokoIndex,
    SubtreeIndex,
};
use koko::nlp::Pipeline;

fn corpus() -> koko::nlp::Corpus {
    let texts = koko::corpus::wiki::generate(40, 2024);
    Pipeline::new().parse_corpus(&texts)
}

#[test]
fn all_schemes_are_complete_on_the_benchmark() {
    let c = corpus();
    let queries = synthetic_tree::generate(&c, 7);
    let koko = KokoIndex::build(&c);
    let inv = InvertedIndex::build(&c);
    let adv = AdvInvertedIndex::build(&c);
    let sub = SubtreeIndex::build(&c);
    for q in queries.iter().step_by(3) {
        let truth = ground_truth_sids(&c, &q.pattern);
        for (name, cands) in [
            ("KOKO", koko.lookup(&q.pattern)),
            ("INVERTED", inv.lookup(&q.pattern)),
            ("ADVINVERTED", adv.lookup(&q.pattern)),
            ("SUBTREE", sub.lookup(&q.pattern)),
        ] {
            let Some(cands) = cands else { continue };
            for t in &truth {
                assert!(
                    cands.contains(t),
                    "{name} dropped true match sid {t} for {} ({})",
                    q.pattern.render(),
                    q.setting
                );
            }
        }
    }
}

#[test]
fn effectiveness_ordering_matches_figures_7_and_8() {
    let c = corpus();
    let queries = synthetic_tree::generate(&c, 8);
    let koko = KokoIndex::build(&c);
    let inv = InvertedIndex::build(&c);
    let adv = AdvInvertedIndex::build(&c);
    let eff = |name: &str| -> f64 {
        let mut sum = 0.0;
        let mut n = 0;
        for q in &queries {
            let truth = ground_truth_sids(&c, &q.pattern);
            let cands = match name {
                "koko" => koko.lookup(&q.pattern),
                "inv" => inv.lookup(&q.pattern),
                _ => adv.lookup(&q.pattern),
            };
            if let Some(cands) = cands {
                sum += effectiveness(&cands, &truth);
                n += 1;
            }
        }
        sum / n as f64
    };
    let e_koko = eff("koko");
    let e_adv = eff("adv");
    let e_inv = eff("inv");
    assert!(e_adv > 0.95, "ADVINVERTED near-perfect: {e_adv}");
    assert!(e_koko > 0.8, "KOKO highly effective: {e_koko}");
    assert!(
        e_inv < e_koko - 0.1,
        "INVERTED clearly worse: {e_inv} vs {e_koko}"
    );
}

#[test]
fn size_ordering_matches_figure_6b() {
    let c = corpus();
    let koko = KokoIndex::build(&c);
    let inv = InvertedIndex::build(&c);
    let adv = AdvInvertedIndex::build(&c);
    let sub = SubtreeIndex::build(&c);
    let k = CandidateIndex::approx_bytes(&koko);
    assert!(k < inv.approx_bytes(), "KOKO smallest");
    assert!(
        inv.approx_bytes() < adv.approx_bytes(),
        "INVERTED < ADVINVERTED"
    );
    assert!(adv.approx_bytes() < sub.approx_bytes(), "SUBTREE largest");
}

#[test]
fn hierarchy_compression_is_dramatic_at_scale() {
    let texts = koko::corpus::wiki::generate(120, 9);
    let c = Pipeline::new().parse_corpus(&texts);
    let koko = KokoIndex::build(&c);
    // The paper reports >99.7% on 5M articles; at a few thousand sentences
    // the merge rate is already far past 90%.
    assert!(
        koko.pl_index().compression_ratio() > 0.9,
        "PL compression {}",
        koko.pl_index().compression_ratio()
    );
    assert!(
        koko.pos_index().compression_ratio() > 0.9,
        "POS compression {}",
        koko.pos_index().compression_ratio()
    );
}
