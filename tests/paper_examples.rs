//! End-to-end integration tests: every worked example in the paper runs
//! through the public facade and produces the published answers.

use koko::lang::queries;
use koko::Koko;

#[test]
fn example_21_returns_the_published_pair() {
    let koko = Koko::from_texts(&[
        "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
    ]);
    let out = koko.query(queries::EXAMPLE_2_1).unwrap();
    assert_eq!(out.rows.len(), 1);
    assert_eq!(out.rows[0].values[0].text, "chocolate ice cream");
    assert_eq!(
        out.rows[0].values[1].text,
        "a chocolate ice cream , which was delicious"
    );
}

#[test]
fn example_22_distinguishes_syntactically_identical_sentences() {
    let koko = Koko::from_texts(&[
        "cities in asian countries such as China and Japan.",
        "cities in asian countries such as Beijing and Tokyo.",
    ]);
    let q1 = koko.query(queries::EXAMPLE_2_2_Q1).unwrap();
    let q2 = koko.query(queries::EXAMPLE_2_2_Q2).unwrap();
    // Q1 (cities) fires only on S2; Q2 (countries) only on S1, with graded
    // scores in the paper's 0.3–0.6 band.
    assert!(q1.rows.iter().all(|r| r.doc == 1));
    assert!(q2.rows.iter().all(|r| r.doc == 0));
    assert_eq!(q1.doc_values("a").len(), 2);
    assert_eq!(q2.doc_values("a").len(), 2);
    for r in q1.rows.iter().chain(q2.rows.iter()) {
        assert!(r.score > 0.3 && r.score < 0.75, "{:?}", r);
    }
}

#[test]
fn example_23_aggregates_and_excludes() {
    let koko = Koko::from_texts(&[
        "Velvet Moon Cafe opened downtown.",
        "Quiet Owl serves delicious cappuccinos. Quiet Owl employs excellent baristas. Quiet Owl serves espresso.",
        "They bought a La Marzocco for the bar.",
    ]);
    let out = koko.query(queries::EXAMPLE_2_3).unwrap();
    let names = out.distinct("x");
    assert!(names.iter().any(|n| n == "Velvet Moon Cafe"));
    assert!(names.iter().any(|n| n == "Quiet Owl"));
    assert!(!names.iter().any(|n| n == "La Marzocco"));
}

#[test]
fn scaleup_queries_have_the_right_selectivity_ordering() {
    // Chocolate (low) < Title (medium) < DateOfBirth (high) — §6.3.
    let texts = koko::corpus::wiki::generate(250, 4242);
    let koko = Koko::from_texts(&texts);
    let frac = |q: &str| {
        let out = koko.query(q).unwrap();
        let mut docs: Vec<u32> = out.rows.iter().map(|r| r.doc).collect();
        docs.sort_unstable();
        docs.dedup();
        docs.len() as f64 / 250.0
    };
    let choc = frac(queries::CHOCOLATE);
    let title = frac(queries::TITLE);
    let dob = frac(queries::DATE_OF_BIRTH);
    assert!(choc < 0.05, "chocolate selectivity {choc}");
    assert!(title > choc && title < 0.35, "title selectivity {title}");
    assert!(dob > 0.4, "date-of-birth selectivity {dob}");
    assert!(dob > title && title > choc);
}

#[test]
fn title_query_extracts_person_and_nickname() {
    let koko = Koko::from_texts(&["Cyd Charisse had been called Sid for years."]);
    let out = koko.query(queries::TITLE).unwrap();
    assert_eq!(out.rows.len(), 1);
    assert_eq!(out.rows[0].values[0].text, "Cyd Charisse");
    assert_eq!(out.rows[0].values[1].text, "Sid");
}

#[test]
fn figure9_cafe_query_runs_fully() {
    let labeled = koko::corpus::cafe::generate(koko::corpus::cafe::Style::Barista, 25, 3);
    let koko = Koko::from_texts(&labeled.texts);
    let out = koko.query(&queries::cafe_query(0.5)).unwrap();
    let s = koko::corpus::eval::score(&out.doc_values("x"), &labeled.truth);
    assert!(s.f1 > 0.4, "end-to-end cafe extraction works: F1 {}", s.f1);
    // Distractors are excluded.
    for (_, name) in out.doc_values("x") {
        assert!(!name.to_lowercase().contains("marzocco"), "{name}");
        assert!(!name.to_lowercase().contains("festival"), "{name}");
    }
}

#[test]
fn tweet_queries_run_fully() {
    let tw = koko::corpus::tweets::generate(120, 5);
    let koko = Koko::from_texts(&tw.texts);
    let teams = koko.query(&queries::sports_team_query(0.4)).unwrap();
    let s = koko::corpus::eval::score(&teams.doc_values("x"), &tw.teams);
    assert!(s.f1 > 0.3, "team extraction F1 {}", s.f1);
    let fac = koko.query(&queries::facility_query(0.4)).unwrap();
    let s = koko::corpus::eval::score(&fac.doc_values("x"), &tw.facilities);
    assert!(s.f1 > 0.3, "facility extraction F1 {}", s.f1);
}
