//! Table 1's correctness precondition: the GSP evaluator and the naive
//! nested-loop evaluator must return identical result bags on the
//! SyntheticSpan benchmark — they differ only in time.

use koko::core::{EngineOpts, Koko};
use koko::nlp::Pipeline;

#[test]
fn gsp_and_nogsp_agree_on_synthetic_span_queries() {
    let texts = koko::corpus::happydb::generate(60, 13);
    let corpus = Pipeline::new().parse_corpus(&texts);
    let queries = koko::corpus::synthetic_span::generate(&corpus, 3);

    let gsp = Koko::from_corpus(corpus.clone());
    let nogsp_opts = EngineOpts {
        use_gsp: false,
        ..EngineOpts::default()
    };
    let nogsp = Koko::from_corpus(corpus).with_opts(nogsp_opts);

    // A slice across all three atom counts (5-atom NOGSP queries are slow
    // by design; keep the test snappy).
    let sample: Vec<&str> = queries
        .iter()
        .filter(|q| q.atoms <= 3)
        .step_by(7)
        .map(|q| q.text.as_str())
        .chain(
            queries
                .iter()
                .filter(|q| q.atoms == 5)
                .take(4)
                .map(|q| q.text.as_str()),
        )
        .collect();
    assert!(sample.len() >= 20);

    for q in sample {
        let mut a: Vec<String> = gsp
            .query(q)
            .unwrap()
            .rows
            .iter()
            .map(|r| format!("{}:{:?}", r.doc, r.values))
            .collect();
        let mut b: Vec<String> = nogsp
            .query(q)
            .unwrap()
            .rows
            .iter()
            .map(|r| format!("{}:{:?}", r.doc, r.values))
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "result bags differ for {q}");
    }
}

#[test]
fn gsp_skips_make_five_atom_queries_cheap() {
    let texts = koko::corpus::happydb::generate(120, 14);
    let corpus = Pipeline::new().parse_corpus(&texts);
    let queries = koko::corpus::synthetic_span::generate(&corpus, 4);
    let five: Vec<&str> = queries
        .iter()
        .filter(|q| q.atoms == 5)
        .take(10)
        .map(|q| q.text.as_str())
        .collect();
    let koko = Koko::from_corpus(corpus);
    for q in five {
        let out = koko.query(q).unwrap();
        let per_sentence = (out.profile.gsp + out.profile.extract).as_secs_f64()
            / out.profile.candidate_sentences.max(1) as f64;
        assert!(
            per_sentence < 0.01,
            "GSP keeps 5-atom evaluation under 10ms/sentence, got {per_sentence}s for {q}"
        );
    }
}
