//! Incremental ingest must be *byte-identical* (rows, order, scores) to a
//! one-shot batch build of the concatenated corpus — the correctness
//! contract of the live index, mirroring `tests/shard_equivalence.rs` for
//! the update path.
//!
//! Covers: every split of a corpus into K `add_texts` batches (K = 1..5),
//! with and without compaction, caches on and off, starting from a
//! non-empty base and from an empty engine; save → load round-trips after
//! incremental adds; epoch-keyed result-cache invalidation; and a
//! serve-level test of concurrent queries racing a wire `add`.

use koko::core::{EngineOpts, Koko};
use koko::serve::{protocol, Client, Server};
use koko::{queries, QueryOutput};
use proptest::prelude::*;

const PAPER_QUERIES: &[&str] = &[
    queries::EXAMPLE_2_1,
    queries::EXAMPLE_2_3,
    queries::TITLE,
    queries::DATE_OF_BIRTH,
    queries::CHOCOLATE,
];

/// Render rows with full content so comparisons cover text, spans, sids,
/// docs, scores — and ORDER (no sorting here on purpose).
fn render(out: &QueryOutput) -> Vec<String> {
    out.rows
        .iter()
        .map(|r| format!("doc={} score={:.6} values={:?}", r.doc, r.score, r.values))
        .collect()
}

fn opts(num_shards: usize, result_cache: usize) -> EngineOpts {
    EngineOpts {
        num_shards,
        result_cache,
        ..EngineOpts::default()
    }
}

/// Split `texts` into `k` contiguous batches with boundaries derived from
/// `seed` (deterministic, covers uneven and empty batches).
fn split_texts(texts: &[String], k: usize, seed: u64) -> Vec<Vec<String>> {
    let mut cuts: Vec<usize> = (0..k.saturating_sub(1))
        .map(|i| {
            let h = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(i as u64 * 1442695040888963407);
            (h % (texts.len() as u64 + 1)) as usize
        })
        .collect();
    cuts.push(texts.len());
    cuts.sort_unstable();
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for cut in cuts {
        out.push(texts[start..cut].to_vec());
        start = cut;
    }
    out
}

/// Ingest `texts` as `k` seeded batches (first batch builds the engine,
/// the rest arrive via `add_texts`), optionally compacting at the end,
/// and assert every probe query matches the batch build byte-for-byte.
fn assert_incremental_matches_batch(
    texts: &[String],
    k: usize,
    seed: u64,
    compact: bool,
    engine_opts: EngineOpts,
    probes: &[&str],
) {
    let batch = Koko::from_texts_with_opts(texts, engine_opts);
    let splits = split_texts(texts, k, seed);
    let live = Koko::from_texts_with_opts(&splits[0], engine_opts);
    for batch_texts in &splits[1..] {
        live.add_texts(batch_texts);
    }
    if compact {
        live.compact();
    }
    assert_eq!(live.num_documents(), texts.len(), "k={k} seed={seed}");
    for q in probes {
        let a = batch.query(q).unwrap_or_else(|e| panic!("batch {q}: {e}"));
        let b = live.query(q).unwrap_or_else(|e| panic!("live {q}: {e}"));
        assert_eq!(
            render(&a),
            render(&b),
            "rows differ (k={k} seed={seed} compact={compact}) for query: {q}"
        );
        assert_eq!(
            a.profile.candidate_sentences, b.profile.candidate_sentences,
            "candidate count differs (k={k} seed={seed}) for query: {q}"
        );
    }
}

#[test]
fn fixed_splits_match_batch_build() {
    let texts = koko::corpus::wiki::generate(14, 4242);
    for k in 1..=5 {
        for compact in [false, true] {
            assert_incremental_matches_batch(&texts, k, 7, compact, opts(3, 0), PAPER_QUERIES);
        }
    }
}

#[test]
fn incremental_ingest_matches_batch_build_under_query_requests() {
    // The live-equivalence invariant re-run through the QueryRequest
    // path: windows, score floors, and score ordering must all be
    // byte-identical between an incrementally built index (delta shards
    // live, then compacted) and the one-shot batch build.
    use koko::{Order, QueryRequest};
    let texts = koko::corpus::wiki::generate(12, 4242);
    let requests: Vec<QueryRequest> = PAPER_QUERIES
        .iter()
        .flat_map(|q| {
            [
                QueryRequest::new(*q).limit(2),
                QueryRequest::new(*q).limit(3).offset(1).min_score(0.2),
                QueryRequest::new(*q).order(Order::ScoreDesc).limit(4),
                QueryRequest::new(*q).min_score(0.5),
            ]
        })
        .collect();
    for compact in [false, true] {
        let batch = Koko::from_texts_with_opts(&texts, opts(3, 16));
        let splits = split_texts(&texts, 3, 11);
        let live = Koko::from_texts_with_opts(&splits[0], opts(3, 16));
        for batch_texts in &splits[1..] {
            live.add_texts(batch_texts);
        }
        if compact {
            live.compact();
        }
        for req in &requests {
            let a = req.run(&batch).unwrap();
            let b = req.run(&live).unwrap();
            assert_eq!(
                render(&a),
                render(&b),
                "compact={compact} request over {:?}",
                req.text()
            );
            assert_eq!(a.truncated, b.truncated, "compact={compact}");
        }
    }
}

#[test]
fn growth_from_an_empty_engine_matches_batch_build() {
    let texts = koko::corpus::wiki::generate(6, 99);
    let batch = Koko::from_texts(&texts);
    let live = Koko::from_texts::<&str>(&[]);
    for t in &texts {
        live.add_texts(std::slice::from_ref(t));
    }
    for q in PAPER_QUERIES {
        assert_eq!(
            render(&batch.query(q).unwrap()),
            render(&live.query(q).unwrap())
        );
    }
    live.compact();
    for q in PAPER_QUERIES {
        assert_eq!(
            render(&batch.query(q).unwrap()),
            render(&live.query(q).unwrap())
        );
    }
}

#[test]
fn result_cache_never_serves_rows_from_an_older_epoch() {
    let live = Koko::from_texts_with_opts(
        &["Anna ate some delicious cheesecake that she bought at a store."],
        opts(1, 32),
    );
    let before = live.query(queries::EXAMPLE_2_1).unwrap();
    assert_eq!(before.profile.result_cache_misses, 1);
    // Cache warm: a repeat is a hit.
    assert_eq!(
        live.query(queries::EXAMPLE_2_1)
            .unwrap()
            .profile
            .result_cache_hits,
        1
    );

    let report = live.add_texts(&["Bob ate a delicious croissant at the cafe."]);
    assert_eq!(report.added, 1);
    let after = live.query(queries::EXAMPLE_2_1).unwrap();
    // New epoch → the warm entry is unreachable; the query re-evaluates
    // and sees the new document.
    assert_eq!(after.profile.result_cache_hits, 0, "stale hit served");
    assert_eq!(after.profile.result_cache_misses, 1);
    assert!(
        render(&after).len() > render(&before).len(),
        "new document must contribute rows"
    );
    assert!(after.profile.delta_candidates > 0, "delta shard was probed");

    // The compiled-query cache survives updates (epoch-independent).
    assert_eq!(after.profile.compiled_cache_hits, 1);

    // Compaction is another epoch: rows identical, cache re-missed.
    live.compact();
    let compacted = live.query(queries::EXAMPLE_2_1).unwrap();
    assert_eq!(render(&compacted), render(&after));
    assert_eq!(compacted.profile.result_cache_hits, 0);
    assert_eq!(compacted.profile.delta_candidates, 0);
}

#[test]
fn snapshot_saved_after_adds_reloads_identically() {
    let dir = std::env::temp_dir().join("koko_it_live_equivalence");
    std::fs::create_dir_all(&dir).unwrap();
    let texts = koko::corpus::wiki::generate(10, 17);
    let (head, tail) = texts.split_at(6);

    let live = Koko::from_texts_with_opts(head, opts(2, 0));
    live.add_texts(tail);
    assert!(live.num_delta_shards() > 0);

    let path = dir.join("after_adds.koko");
    live.save(&path).unwrap();
    let loaded = Koko::open(&path).unwrap();
    assert_eq!(loaded.generation(), live.generation());
    assert_eq!(loaded.num_shards(), live.num_shards());
    assert_eq!(loaded.num_delta_shards(), live.num_delta_shards());
    for q in PAPER_QUERIES {
        assert_eq!(
            render(&live.query(q).unwrap()),
            render(&loaded.query(q).unwrap()),
            "loaded rows differ for: {q}"
        );
    }

    // The reloaded engine keeps ingesting: a further add + compact + save
    // round-trips again (generations survive the format).
    loaded.add_texts(&["Vera Alys was born in 1911."]);
    loaded.compact();
    let path2 = dir.join("next_generation.koko");
    loaded.save(&path2).unwrap();
    let again = Koko::open(&path2).unwrap();
    assert_eq!(again.generation(), loaded.generation());
    assert_eq!(again.num_delta_shards(), 0);
    for q in PAPER_QUERIES {
        assert_eq!(
            render(&loaded.query(q).unwrap()),
            render(&again.query(q).unwrap())
        );
    }
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&path2).ok();
}

/// Serve-level: N client threads hammer queries while the main thread
/// streams `add` batches into a writable server. Every response must be
/// well-formed, and every served rows-payload must equal what a local
/// engine answers for one of the epochs the server could have been in
/// (pre-add, mid-add, …, post-add) — epochs publish atomically, so no
/// response may show a torn in-between state.
#[test]
fn concurrent_queries_during_wire_adds_see_only_whole_epochs() {
    let texts = koko::corpus::wiki::generate(12, 31);
    let (base, rest) = texts.split_at(4);
    let waves: Vec<&[String]> = rest.chunks(4).collect();

    // Expected rows per epoch: base, base+wave0, base+wave0+wave1, …
    let probe = queries::TITLE;
    let mut epoch_rows: Vec<String> = Vec::new();
    let mut so_far: Vec<String> = base.to_vec();
    let reference = |docs: &[String]| {
        let k = Koko::from_texts_with_opts(
            docs,
            EngineOpts {
                num_shards: 1,
                parallel: false,
                ..EngineOpts::default()
            },
        );
        protocol::rows_json(&k.query(probe).unwrap().rows)
    };
    epoch_rows.push(reference(&so_far));
    for wave in &waves {
        so_far.extend(wave.iter().cloned());
        epoch_rows.push(reference(&so_far));
    }

    let server = Server::bind_with(
        Koko::from_texts_with_opts(base, opts(2, 64)),
        "127.0.0.1:0",
        3,
        true,
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    let stop = std::sync::atomic::AtomicBool::new(false);
    let collected: std::sync::Mutex<Vec<String>> = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..3 {
            scope.spawn(|| {
                let mut client = Client::connect(&addr).unwrap();
                let mut mine = Vec::new();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let line = client.query(probe, true).unwrap();
                    assert!(line.contains("\"ok\":true"), "{line}");
                    mine.push(
                        protocol::response_rows(&line)
                            .expect("rows payload present")
                            .to_string(),
                    );
                }
                collected.lock().unwrap().extend(mine);
            });
        }
        // Writer: stream the waves in, then signal the readers to stop.
        let mut writer = Client::connect(&addr).unwrap();
        for wave in &waves {
            let line = writer.add(wave).unwrap();
            assert!(line.contains("\"ok\":true"), "{line}");
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });

    let responses = collected.into_inner().unwrap();
    assert!(!responses.is_empty());
    for rows in &responses {
        assert!(
            epoch_rows.iter().any(|e| e == rows),
            "served rows match no published epoch: {rows}"
        );
    }
    // After the last add, a fresh query must see the final epoch.
    let mut client = Client::connect(&addr).unwrap();
    let final_line = client.query(probe, true).unwrap();
    assert_eq!(
        protocol::response_rows(&final_line).unwrap(),
        epoch_rows.last().unwrap().as_str()
    );
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any corpus, any split into K incremental batches, any shard count,
    /// caches on or off, compacted or not: rows are byte-identical to the
    /// batch build.
    #[test]
    fn incremental_ingest_equivalence(
        n_docs in 1usize..16,
        corpus_seed in 0u64..500,
        k in 1usize..6,
        shards in 1usize..5,
        mode in 0usize..4, // bit 0: result cache on, bit 1: compact
    ) {
        let split_seed = corpus_seed.wrapping_mul(0x9e3779b97f4a7c15) ^ k as u64;
        let (cache, compact) = (mode & 1, mode >> 1);
        let texts = koko::corpus::wiki::generate(n_docs, corpus_seed);
        let engine_opts = opts(shards, cache * 16);
        let batch = Koko::from_texts_with_opts(&texts, engine_opts);
        let splits = split_texts(&texts, k, split_seed);
        let live = Koko::from_texts_with_opts(&splits[0], engine_opts);
        for batch_texts in &splits[1..] {
            live.add_texts(batch_texts);
        }
        if compact == 1 {
            live.compact();
        }
        prop_assert_eq!(live.num_documents(), texts.len());
        for q in PAPER_QUERIES {
            let a = batch.query(q).unwrap();
            let b = live.query(q).unwrap();
            prop_assert_eq!(
                render(&a),
                render(&b),
                "query {} over {} docs (corpus seed {}, k {}, split seed {}, shards {}, cache {}, compact {})",
                q, n_docs, corpus_seed, k, split_seed, shards, cache, compact
            );
        }
    }
}
