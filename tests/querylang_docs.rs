//! Doc-example conformance: every runnable query in `docs/QUERYLANG.md`
//! is extracted from the markdown and executed against a fixture corpus,
//! so the language reference cannot drift from the lexer/parser/normalizer
//! (a doc edit that breaks an example breaks this test — and a parser
//! change that orphans the docs does too).
//!
//! Three kinds of fenced ```text blocks are runnable:
//!
//! * full queries (first word `extract`) — run verbatim;
//! * declaration fragments (starting `/ROOT:{`) — wrapped in
//!   `extract <v>:Str from "docs.md" if ( … )` over their first variable;
//! * `satisfying` / `excluding` fragments — appended to an empty-extract
//!   entity query, as the reference describes.
//!
//! Blocks with meta-syntax (`<placeholders>`, `…` ellipses) are grammar
//! illustrations, not examples, and are skipped.

use koko::{EngineOpts, Koko};

/// A fenced code block: (language tag, contents).
fn fenced_blocks(markdown: &str) -> Vec<(String, String)> {
    let mut blocks = Vec::new();
    let mut current: Option<(String, String)> = None;
    for line in markdown.lines() {
        match &mut current {
            None => {
                if let Some(tag) = line.trim_start().strip_prefix("```") {
                    current = Some((tag.trim().to_string(), String::new()));
                }
            }
            Some((_, body)) => {
                if line.trim_start().starts_with("```") {
                    blocks.push(current.take().unwrap());
                } else {
                    body.push_str(line);
                    body.push('\n');
                }
            }
        }
    }
    blocks
}

/// The first declared variable of a `/ROOT:{…}` fragment (`a = …` → `a`).
fn first_declared_var(fragment: &str) -> Option<String> {
    let inner = fragment.split_once('{')?.1;
    let name: String = inner
        .chars()
        .skip_while(|c| !c.is_alphabetic())
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// Classify a ```text block into a runnable query, if it is one.
fn runnable_query(block: &str) -> Option<String> {
    let text = block.trim();
    if text.contains('…') || text.contains('<') {
        return None; // grammar illustration, not an example
    }
    if text.starts_with("extract") {
        return Some(text.to_string());
    }
    if text.starts_with("/ROOT:{") {
        let var = first_declared_var(text)?;
        return Some(format!("extract {var}:Str from \"docs.md\" if ( {text} )"));
    }
    if text.starts_with("satisfying") || text.starts_with("excluding") {
        return Some(format!("extract x:Entity from \"docs.md\" if () {text}"));
    }
    None
}

fn fixture_engine() -> Koko {
    Koko::from_texts_with_opts(
        &[
            "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
            "Anna ate some delicious cheesecake that she bought at a grocery store.",
            "Velvet Moon Cafe opened downtown. Quiet Owl serves delicious cappuccinos.",
            "They bought a La Marzocco for the bar, a cafe needs one.",
            "cities in asian countries such as Beijing and Tokyo.",
            "Vera Alys was born in 1911.",
            "Cyd Charisse had been called Sid for years.",
        ],
        EngineOpts {
            num_shards: 1,
            ..EngineOpts::default()
        },
    )
}

fn load_doc() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/docs/QUERYLANG.md");
    std::fs::read_to_string(path).expect("docs/QUERYLANG.md exists")
}

#[test]
fn every_runnable_doc_example_executes() {
    let doc = load_doc();
    let koko = fixture_engine();
    let mut ran = 0usize;
    let mut full_queries = 0usize;
    for (lang, block) in fenced_blocks(&doc) {
        if lang != "text" {
            continue;
        }
        let Some(query) = runnable_query(&block) else {
            continue;
        };
        let out = koko
            .query(&query)
            .unwrap_or_else(|e| panic!("doc example no longer runs.\nquery:\n{query}\nerror: {e}"));
        ran += 1;
        if block.trim().starts_with("extract") {
            full_queries += 1;
            // The complete examples target the fixture corpus; they must
            // actually extract something, not just parse.
            assert!(
                !out.rows.is_empty(),
                "doc example parses but extracts nothing:\n{query}"
            );
        }
    }
    // Drift guard: QUERYLANG.md currently carries 4 complete queries and
    // 4 runnable fragments. Falling below means examples were dropped or
    // the extractor stopped recognizing them.
    assert!(
        full_queries >= 4,
        "only {full_queries} complete doc queries ran"
    );
    assert!(ran >= 8, "only {ran} doc examples ran");
}

#[test]
fn doc_examples_match_paper_query_constants() {
    // The doc's "Complete examples" restate `koko::queries` constants;
    // they must stay semantically in sync: identical rows on the fixture.
    let doc = load_doc();
    let koko = fixture_engine();
    let doc_queries: Vec<String> = fenced_blocks(&doc)
        .into_iter()
        .filter(|(lang, block)| lang == "text" && block.trim().starts_with("extract"))
        .filter_map(|(_, block)| runnable_query(&block))
        .collect();
    for (name, constant) in [
        ("EXAMPLE_2_1", koko::queries::EXAMPLE_2_1),
        ("EXAMPLE_2_2_Q1", koko::queries::EXAMPLE_2_2_Q1),
        ("DATE_OF_BIRTH", koko::queries::DATE_OF_BIRTH),
    ] {
        let expected = koko.query(constant).unwrap().rows;
        let matched = doc_queries.iter().any(|q| {
            koko.query(q)
                .map(|out| out.rows == expected)
                .unwrap_or(false)
        });
        assert!(
            matched,
            "no doc example is row-equivalent to queries::{name} anymore"
        );
    }
}
