//! Serving conformance: every response a concurrent `koko-serve` server
//! produces must be **byte-identical** to what the single-threaded
//! [`Koko::query`] evaluator answers for the same query — under N client
//! threads, M in-flight queries each, with the result cache on and off,
//! and regardless of which worker (or which cache) produced the bytes.
//!
//! This is the serving layer's analogue of `tests/shard_equivalence.rs`:
//! concurrency and caching are allowed to change wall-clock only, never
//! rows, order, scores or spans.

use koko::serve::{protocol, run_load, Client, Server};
use koko::serve::{QueryOpts, Request, WireOrder};
use koko::{queries, EngineOpts, Koko};

const CORPUS: &[&str] = &[
    "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
    "Anna ate some delicious cheesecake that she bought at a grocery store.",
    "Cyd Charisse had been called Sid for years.",
    "Vera Alys was born in 1911.",
    "Baking chocolate is a type of chocolate that is prepared for baking.",
    "cities in asian countries such as Beijing and Tokyo.",
    "Velvet Moon Cafe opened downtown. The owner was proud.",
    "The cafe was busy today.",
];

/// The query mix: every paper query the fixture corpus can answer, plus a
/// deliberately malformed one (served errors must be deterministic too).
fn query_mix() -> Vec<String> {
    vec![
        queries::EXAMPLE_2_1.to_string(),
        queries::EXAMPLE_2_2_Q1.to_string(),
        queries::EXAMPLE_2_3.to_string(),
        queries::TITLE.to_string(),
        queries::DATE_OF_BIRTH.to_string(),
        queries::CHOCOLATE.to_string(),
        "extract x:Entity from \"t\" if ()".to_string(),
        "this is not a koko query".to_string(),
    ]
}

fn reference_engine() -> Koko {
    // The sequential gold standard: one shard, no parallelism, no caches.
    Koko::from_texts_with_opts(
        CORPUS,
        EngineOpts {
            num_shards: 1,
            parallel: false,
            compiled_cache: false,
            result_cache: 0,
            ..EngineOpts::default()
        },
    )
}

/// The expected `"rows"` bytes per query, computed by the sequential
/// engine through the same canonical serializer the server uses. `None`
/// marks queries the engine rejects (the server must answer `ok:false`).
fn expected_rows(reference: &Koko, mix: &[String]) -> Vec<Option<String>> {
    mix.iter()
        .map(|q| {
            reference
                .query(q)
                .ok()
                .map(|out| protocol::rows_json(&out.rows))
        })
        .collect()
}

fn check_load(server_engine: Koko, server_threads: usize, clients: usize, cache: bool) {
    check_load_with(server_engine, server_threads, clients, cache, false)
}

fn check_load_with(
    server_engine: Koko,
    server_threads: usize,
    clients: usize,
    cache: bool,
    writable: bool,
) {
    let reference = reference_engine();
    let mix = query_mix();
    let expected = expected_rows(&reference, &mix);

    let server = Server::bind_with(server_engine, "127.0.0.1:0", server_threads, writable).unwrap();
    let addr = server.local_addr().to_string();
    // Each client thread sends the whole mix several times, so later
    // rounds hit whatever the earlier rounds cached.
    let report = run_load(&addr, &mix, clients, 3, cache).unwrap();
    server.shutdown();

    assert_eq!(report.requests, mix.len() * 3 * clients);
    for thread_responses in &report.responses {
        for (i, line) in thread_responses.iter().enumerate() {
            let qi = i % mix.len();
            match &expected[qi] {
                Some(rows) => {
                    let got = protocol::response_rows(line)
                        .unwrap_or_else(|| panic!("no rows in response: {line}"));
                    assert_eq!(
                        got, rows,
                        "served rows differ from sequential Koko::query\n\
                         query: {}\nresponse: {line}",
                        mix[qi]
                    );
                }
                None => {
                    assert!(
                        line.contains("\"ok\":false"),
                        "bad query must be served as an error: {line}"
                    );
                }
            }
        }
    }
}

fn served_engine(result_cache: usize) -> Koko {
    // The served engine is deliberately configured differently from the
    // reference: multiple shards, caches, and `parallel` left on (the
    // server turns per-query fan-out off itself). Results must not care.
    Koko::from_texts_with_opts(
        CORPUS,
        EngineOpts {
            num_shards: 3,
            result_cache,
            ..EngineOpts::default()
        },
    )
}

#[test]
fn concurrent_serving_matches_sequential_with_caches() {
    check_load(served_engine(64), 4, 4, true);
}

#[test]
fn concurrent_serving_matches_sequential_without_caches() {
    // `cache: false` on every request: both caches bypassed server-side.
    check_load(served_engine(64), 4, 4, false);
}

#[test]
fn concurrent_serving_matches_sequential_with_caches_disabled_entirely() {
    let engine = Koko::from_texts_with_opts(
        CORPUS,
        EngineOpts {
            num_shards: 2,
            parallel: false,
            compiled_cache: false,
            result_cache: 0,
            ..EngineOpts::default()
        },
    );
    check_load(engine, 3, 2, true);
}

#[test]
fn tiny_result_cache_evicts_but_stays_correct() {
    // Capacity 2 with an 8-query mix: constant eviction churn under
    // concurrent load; every answer must still be exact.
    check_load(served_engine(2), 4, 3, true);
}

#[test]
fn snapshot_served_engine_matches_too() {
    // The production path: build → save → serve the loaded snapshot.
    let path = std::env::temp_dir().join(format!("serve_conformance_{}.koko", std::process::id()));
    served_engine(0).save(&path).unwrap();
    let loaded = Koko::open_with_opts(
        &path,
        EngineOpts {
            parallel: false,
            result_cache: 16,
            ..EngineOpts::default()
        },
    )
    .unwrap();
    std::fs::remove_file(&path).ok();
    check_load(loaded, 2, 2, true);
}

#[test]
fn writable_server_built_incrementally_matches_sequential() {
    // The live-update path under the same conformance harness: a writable
    // server whose corpus arrived through wire `add`s (in three waves)
    // must serve byte-identical rows to the sequential batch reference.
    let (head, tail) = CORPUS.split_at(3);
    let engine = Koko::from_texts_with_opts(
        head,
        EngineOpts {
            num_shards: 2,
            result_cache: 32,
            ..EngineOpts::default()
        },
    );
    let server = Server::bind_with(engine, "127.0.0.1:0", 3, true).unwrap();
    let addr = server.local_addr().to_string();
    let mut writer = Client::connect(&addr).unwrap();
    for wave in tail.chunks(2) {
        let texts: Vec<String> = wave.iter().map(|s| s.to_string()).collect();
        let line = writer.add(&texts).unwrap();
        assert!(line.contains("\"ok\":true"), "{line}");
    }
    drop(writer);

    let reference = reference_engine();
    let mix = query_mix();
    let expected = expected_rows(&reference, &mix);
    let report = run_load(&addr, &mix, 3, 3, true).unwrap();
    for thread_responses in &report.responses {
        for (i, line) in thread_responses.iter().enumerate() {
            let qi = i % mix.len();
            match &expected[qi] {
                Some(rows) => assert_eq!(
                    protocol::response_rows(line).unwrap(),
                    rows,
                    "incrementally-built server diverged for: {}",
                    mix[qi]
                ),
                None => assert!(line.contains("\"ok\":false"), "{line}"),
            }
        }
    }

    // Wire compaction must not change a single byte either.
    let mut client = Client::connect(&addr).unwrap();
    let line = client.compact().unwrap();
    assert!(line.contains("\"ok\":true"), "{line}");
    for (qi, q) in mix.iter().enumerate() {
        let line = client.query(q, true).unwrap();
        match &expected[qi] {
            Some(rows) => assert_eq!(protocol::response_rows(&line).unwrap(), rows),
            None => assert!(line.contains("\"ok\":false"), "{line}"),
        }
    }
    drop(client);
    server.shutdown();
}

/// The wire-opts mix exercised by the opts conformance tests: limit,
/// offset, min_score, score ordering, explain, and the empty opts object.
fn opts_mix() -> Vec<QueryOpts> {
    vec![
        QueryOpts::default(),
        QueryOpts {
            limit: Some(1),
            ..QueryOpts::default()
        },
        QueryOpts {
            limit: Some(2),
            offset: Some(1),
            ..QueryOpts::default()
        },
        QueryOpts {
            min_score: Some(0.5),
            ..QueryOpts::default()
        },
        QueryOpts {
            limit: Some(3),
            order: Some(WireOrder::ScoreDesc),
            ..QueryOpts::default()
        },
        QueryOpts {
            limit: Some(1),
            min_score: Some(0.3),
            explain: true,
            ..QueryOpts::default()
        },
    ]
}

/// Every opts-bearing served response must byte-match the rows the
/// sequential reference engine computes for the same `QueryRequest`, and
/// carry the matching `total_matches` / `truncated` fields.
fn check_opts_conformance(server_engine: Koko, writable: bool) {
    let reference = reference_engine();
    let mix = query_mix();
    let server = Server::bind_with(server_engine, "127.0.0.1:0", 3, writable).unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    // Two passes so the second pass exercises result-cache hits (where
    // enabled) — served bytes must not care.
    for pass in 0..2 {
        for q in &mix {
            for (oi, opts) in opts_mix().iter().enumerate() {
                let line = client.query_with_opts(q, true, *opts).unwrap();
                let expected = reference.run(&opts.to_request(q, true));
                match expected {
                    Ok(out) => {
                        assert!(
                            line.contains("\"ok\":true"),
                            "pass {pass} opts {oi}: {line}"
                        );
                        assert_eq!(
                            protocol::response_rows(&line).unwrap(),
                            protocol::rows_json(&out.rows),
                            "pass {pass} opts {oi} query {q}"
                        );
                        // `truncated` is exact (and layout-independent)
                        // only when no limit can trigger early
                        // termination: with a limit, whether a shard
                        // stopped "early" depends on its layout and on
                        // whether a cached full result served the slice
                        // (both legitimate), so there only presence is
                        // asserted.
                        if opts.limit.is_none() {
                            assert!(
                                line.contains(&format!("\"truncated\":{}", out.truncated)),
                                "pass {pass} opts {oi}: {line}"
                            );
                        } else {
                            assert!(line.contains("\"truncated\":"), "{line}");
                        }
                        // total_matches is exact (and layout-independent)
                        // whenever the run is not truncated; a truncated
                        // run reports a lower bound that may legitimately
                        // differ between the 3-shard served engine and
                        // the 1-shard reference.
                        if out.truncated {
                            assert!(line.contains("\"total_matches\":"), "{line}");
                        } else {
                            assert!(
                                line.contains(&format!("\"total_matches\":{}", out.total_matches)),
                                "pass {pass} opts {oi} (expected {}): {line}",
                                out.total_matches
                            );
                        }
                        assert_eq!(
                            line.contains("\"explain\":"),
                            opts.explain,
                            "pass {pass} opts {oi}: {line}"
                        );
                    }
                    Err(_) => {
                        assert!(line.contains("\"ok\":false"), "pass {pass}: {line}");
                    }
                }
            }
        }
    }
    drop(client);
    server.shutdown();
}

#[test]
fn opts_bearing_requests_match_sequential_query_requests() {
    check_opts_conformance(served_engine(64), false);
}

#[test]
fn opts_bearing_requests_match_on_writable_servers_too() {
    // Writable server built incrementally over the wire, then hammered
    // with the opts mix: live delta shards must not change a byte.
    let (head, tail) = CORPUS.split_at(3);
    let engine = Koko::from_texts_with_opts(
        head,
        EngineOpts {
            num_shards: 2,
            result_cache: 32,
            ..EngineOpts::default()
        },
    );
    let server = Server::bind_with(engine, "127.0.0.1:0", 2, true).unwrap();
    let addr = server.local_addr().to_string();
    let mut writer = Client::connect(&addr).unwrap();
    let texts: Vec<String> = tail.iter().map(|s| s.to_string()).collect();
    let line = writer.add(&texts).unwrap();
    assert!(line.contains("\"ok\":true"), "{line}");
    drop(writer);

    let reference = reference_engine();
    let mut client = Client::connect(&addr).unwrap();
    for q in &query_mix() {
        let opts = QueryOpts {
            limit: Some(2),
            min_score: Some(0.2),
            ..QueryOpts::default()
        };
        let line = client.query_with_opts(q, true, opts).unwrap();
        match reference.run(&opts.to_request(q, true)) {
            Ok(out) => assert_eq!(
                protocol::response_rows(&line).unwrap(),
                protocol::rows_json(&out.rows),
                "query {q}"
            ),
            Err(_) => assert!(line.contains("\"ok\":false"), "{line}"),
        }
    }
    drop(client);
    server.shutdown();
}

#[test]
fn served_cache_hits_slice_cached_full_results() {
    let server = Server::bind(served_engine(64), "127.0.0.1:0", 1).unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let q = queries::EXAMPLE_2_1;
    // Warm the cache with the full result (legacy request)...
    let full = client.query(q, true).unwrap();
    assert!(full.contains("\"result_cache_misses\":1"), "{full}");
    // ... then an opts-bearing slice of it must be a hit, not a re-run.
    let sliced = client
        .query_with_opts(
            q,
            true,
            QueryOpts {
                limit: Some(1),
                ..QueryOpts::default()
            },
        )
        .unwrap();
    assert!(sliced.contains("\"result_cache_hits\":1"), "{sliced}");
    let full_rows = protocol::response_rows(&full).unwrap();
    let sliced_rows = protocol::response_rows(&sliced).unwrap();
    assert!(
        full_rows.starts_with(&sliced_rows[..sliced_rows.len() - 1]),
        "slice must be a prefix of the cached rows\nfull:   {full_rows}\nsliced: {sliced_rows}"
    );
    drop(client);
    server.shutdown();
}

#[test]
fn requests_without_opts_keep_the_legacy_response_shape() {
    // PR-4 bit-compatibility: a client that never sends `opts` must see
    // exactly the historical keys — no totals, no truncation, no explain.
    let server = Server::bind(served_engine(8), "127.0.0.1:0", 1).unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    for line in [
        client.query(queries::EXAMPLE_2_1, true).unwrap(),
        client.query(queries::EXAMPLE_2_1, false).unwrap(),
        client.send_raw("{\"query\":\"not a query\"}").unwrap(),
    ] {
        assert!(!line.contains("total_matches"), "{line}");
        assert!(!line.contains("truncated"), "{line}");
        assert!(!line.contains("explain"), "{line}");
    }
    // An empty opts object opts in to the extended shape.
    let extended = client
        .query_with_opts(queries::EXAMPLE_2_1, true, QueryOpts::default())
        .unwrap();
    assert!(extended.contains("\"total_matches\":"), "{extended}");
    assert!(extended.contains("\"truncated\":false"), "{extended}");
    drop(client);
    server.shutdown();
}

#[test]
fn streamed_responses_reassemble_to_sequential_rows() {
    // The full opts mix with `stream: true`: the rows reassembled from
    // chunk frames must be byte-identical to the sequential reference —
    // streaming changes framing, never bytes.
    let reference = reference_engine();
    let server = Server::bind(served_engine(16), "127.0.0.1:0", 2).unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    for q in &query_mix() {
        for (oi, opts) in opts_mix().iter().enumerate() {
            let streamed = client.query_stream(q, true, *opts, None).unwrap();
            match reference.run(&opts.to_request(q, true)) {
                Ok(out) => {
                    assert!(
                        streamed.header.contains("\"stream\":true"),
                        "opts {oi}: {}",
                        streamed.header
                    );
                    assert_eq!(
                        streamed.rows_json,
                        protocol::rows_json(&out.rows),
                        "opts {oi} query {q}: stream reassembly diverged"
                    );
                    assert!(
                        streamed.trailer.contains("\"done\":true"),
                        "{}",
                        streamed.trailer
                    );
                    assert_eq!(
                        streamed.trailer.contains("\"explain\":"),
                        opts.explain,
                        "opts {oi}: {}",
                        streamed.trailer
                    );
                }
                Err(_) => {
                    assert!(
                        streamed.header.contains("\"ok\":false") && streamed.chunks == 0,
                        "bad query must refuse before streaming: {}",
                        streamed.header
                    );
                }
            }
        }
    }
    drop(client);
    server.shutdown();
}

#[test]
fn streamed_responses_match_on_writable_servers_too() {
    // Same property on a writable server whose corpus arrived over the
    // wire — live delta shards must not change a streamed byte either.
    let (head, tail) = CORPUS.split_at(3);
    let engine = Koko::from_texts_with_opts(
        head,
        EngineOpts {
            num_shards: 2,
            result_cache: 16,
            ..EngineOpts::default()
        },
    );
    let server = Server::bind_with(engine, "127.0.0.1:0", 2, true).unwrap();
    let addr = server.local_addr().to_string();
    let mut writer = Client::connect(&addr).unwrap();
    let texts: Vec<String> = tail.iter().map(|s| s.to_string()).collect();
    assert!(writer.add(&texts).unwrap().contains("\"ok\":true"));
    drop(writer);

    let reference = reference_engine();
    let mut client = Client::connect(&addr).unwrap();
    for q in &query_mix() {
        let opts = QueryOpts {
            min_score: Some(0.2),
            ..QueryOpts::default()
        };
        let streamed = client.query_stream(q, true, opts, None).unwrap();
        match reference.run(&opts.to_request(q, true)) {
            Ok(out) => assert_eq!(
                streamed.rows_json,
                protocol::rows_json(&out.rows),
                "query {q}"
            ),
            Err(_) => assert!(streamed.header.contains("\"ok\":false")),
        }
    }
    drop(client);
    server.shutdown();
}

#[test]
fn pipelined_responses_are_byte_identical_and_ordered() {
    // The whole query mix × opts mix fired down one socket without
    // reading a single response: answers must come back in request order
    // and byte-match what the sequential reference computes — pipelining
    // changes scheduling, never bytes.
    use std::io::{BufRead, BufReader, Write};

    let reference = reference_engine();
    let mix = query_mix();
    let opts = opts_mix();
    let server = Server::bind(served_engine(16), "127.0.0.1:0", 3).unwrap();

    let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
    let mut batch = String::new();
    let mut expected = Vec::new();
    let mut id = 0u64;
    for q in &mix {
        for o in &opts {
            id += 1;
            batch.push_str(
                &Request::Query {
                    id,
                    text: q.clone(),
                    cache: true,
                    opts: Some(*o),
                    auth: None,
                }
                .encode(),
            );
            batch.push('\n');
            expected.push((id, reference.run(&o.to_request(q, true))));
        }
    }
    stream.write_all(batch.as_bytes()).unwrap();
    stream.flush().unwrap();

    let mut reader = BufReader::new(&stream);
    for (id, exp) in &expected {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.starts_with(&format!("{{\"id\":{id},")),
            "pipelined responses out of order: wanted id {id}, got {line}"
        );
        match exp {
            Ok(out) => assert_eq!(
                protocol::response_rows(&line).unwrap(),
                protocol::rows_json(&out.rows),
                "pipelined response diverged at id {id}"
            ),
            Err(_) => assert!(line.contains("\"ok\":false"), "{line}"),
        }
    }
    drop(reader);
    drop(stream);
    server.shutdown();
}

#[test]
fn served_stats_reflect_cache_traffic() {
    let server = Server::bind(served_engine(64), "127.0.0.1:0", 2).unwrap();
    let addr = server.local_addr().to_string();
    let q = queries::EXAMPLE_2_1;
    let mut c = Client::connect(&addr).unwrap();
    c.query(q, true).unwrap();
    c.query(q, true).unwrap();
    c.query(q, false).unwrap(); // bypass: touches no cache
    let stats = c.stats().unwrap();
    drop(c);
    server.shutdown();
    assert!(stats.contains("\"queries_ok\":3"), "{stats}");
    assert!(stats.contains("\"result_cache_hits\":1"), "{stats}");
    assert!(stats.contains("\"result_cache_misses\":1"), "{stats}");
    assert!(stats.contains("\"compiled_cache_hits\":1"), "{stats}");
}

// ---- Cluster conformance -------------------------------------------------
//
// A coordinator over two workers (the corpus split into contiguous
// halves) must answer every query in the mix with rows byte-identical to
// the single-node server — the cluster's core contract (docs/CLUSTER.md).

/// Two workers splitting `CORPUS` at `at`, plus a coordinator over them.
fn spawn_cluster(at: usize) -> (Vec<Server>, koko::cluster::Coordinator) {
    use koko::cluster::{Coordinator, CoordinatorConfig, Mode, ShardMap, WorkerEntry};
    let (head, tail) = CORPUS.split_at(at);
    let build = |texts: &[&str]| {
        Koko::from_texts_with_opts(
            texts,
            EngineOpts {
                num_shards: 2,
                result_cache: 32,
                ..EngineOpts::default()
            },
        )
    };
    let e0 = build(head);
    // Sentence ids are corpus-global; w1's local sids start where w0's
    // corpus ends.
    let sid_split = e0.snapshot().num_sentences() as u32;
    let w0 = Server::bind(e0, "127.0.0.1:0", 2).unwrap();
    let w1 = Server::bind(build(tail), "127.0.0.1:0", 2).unwrap();
    let map = ShardMap {
        version: 1,
        epoch: 0,
        mode: Mode::Partial,
        workers: vec![
            WorkerEntry {
                name: "w0".into(),
                addr: w0.local_addr().to_string(),
                replicas: vec![],
                doc_base: 0,
                docs: at as u32,
                sid_base: 0,
                snapshot: None,
            },
            WorkerEntry {
                name: "w1".into(),
                addr: w1.local_addr().to_string(),
                replicas: vec![],
                doc_base: at as u32,
                docs: (CORPUS.len() - at) as u32,
                sid_base: sid_split,
                snapshot: None,
            },
        ],
    };
    let coordinator = Coordinator::bind(map, "127.0.0.1:0", CoordinatorConfig::default()).unwrap();
    (vec![w0, w1], coordinator)
}

#[test]
fn coordinator_matches_single_node_across_the_query_mix() {
    let reference = reference_engine();
    let mix = query_mix();
    let expected = expected_rows(&reference, &mix);
    let (workers, coordinator) = spawn_cluster(4);
    let mut client = Client::connect(&coordinator.local_addr().to_string()).unwrap();
    for pass in 0..2 {
        for (qi, q) in mix.iter().enumerate() {
            let line = client.query(q, true).unwrap();
            match &expected[qi] {
                Some(rows) => {
                    assert!(!line.contains("\"partial\""), "healthy answer: {line}");
                    assert_eq!(
                        protocol::response_rows(&line).unwrap(),
                        rows,
                        "pass {pass}: coordinator rows diverged from the \
                         sequential engine\nquery: {q}"
                    );
                }
                None => assert!(line.contains("\"ok\":false"), "{line}"),
            }
        }
    }
    drop(client);
    coordinator.shutdown();
    for w in workers {
        w.shutdown();
    }
}

#[test]
fn coordinator_matches_single_node_across_the_opts_mix() {
    let reference = reference_engine();
    let mix = query_mix();
    let (workers, coordinator) = spawn_cluster(4);
    let mut client = Client::connect(&coordinator.local_addr().to_string()).unwrap();
    for q in &mix {
        for (oi, opts) in opts_mix().iter().enumerate() {
            let line = client.query_with_opts(q, true, *opts).unwrap();
            match reference.run(&opts.to_request(q, true)) {
                Ok(out) => {
                    assert!(line.contains("\"ok\":true"), "opts {oi}: {line}");
                    assert_eq!(
                        protocol::response_rows(&line).unwrap(),
                        protocol::rows_json(&out.rows),
                        "opts {oi} query {q}"
                    );
                    // Same exactness rules as the single-node suite:
                    // `truncated` and `total_matches` are layout-
                    // dependent lower bounds once a limit can stop a
                    // scan early, so only presence is asserted there.
                    if opts.limit.is_none() {
                        assert!(
                            line.contains(&format!("\"truncated\":{}", out.truncated)),
                            "opts {oi}: {line}"
                        );
                        assert!(
                            line.contains(&format!("\"total_matches\":{}", out.total_matches)),
                            "opts {oi} (expected {}): {line}",
                            out.total_matches
                        );
                    } else {
                        assert!(line.contains("\"truncated\":"), "{line}");
                        assert!(line.contains("\"total_matches\":"), "{line}");
                    }
                    assert_eq!(
                        line.contains("\"explain\":"),
                        opts.explain,
                        "opts {oi}: {line}"
                    );
                    if opts.explain {
                        assert!(
                            line.contains("\"remote_shards\":["),
                            "coordinator explain shows the fan-out: {line}"
                        );
                    }
                }
                Err(_) => assert!(line.contains("\"ok\":false"), "{line}"),
            }
        }
    }
    // Streaming through the coordinator reassembles to the same rows.
    let q = queries::EXAMPLE_2_1;
    let streamed = client
        .query_stream(q, true, QueryOpts::default(), None)
        .unwrap();
    let expected = reference
        .run(&QueryOpts::default().to_request(q, true))
        .unwrap();
    assert_eq!(streamed.rows_json, protocol::rows_json(&expected.rows));
    drop(client);
    coordinator.shutdown();
    for w in workers {
        w.shutdown();
    }
}
