//! Golden-file integration tests for the `koko` binary: each scenario
//! runs the built executable as a subprocess and asserts its **stdout**
//! byte-for-byte against a checked-in file under `tests/golden/`, plus
//! its exit code (timings and diagnostics go to stderr by design, so
//! stdout is deterministic).
//!
//! Regenerate the golden files after an intentional output change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test cli_golden
//! ```
//!
//! The corrupt-input scenarios build real `.koko` files and damage them;
//! those assert exit codes, empty stdout, and stable stderr substrings
//! (stderr embeds temp paths, so it is not goldened).

use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn fixture() -> String {
    repo_path("tests/fixtures/corpus.txt").display().to_string()
}

/// Run the built `koko` binary; returns (stdout, stderr, exit code).
fn koko(args: &[&str]) -> (String, String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_koko"))
        .args(args)
        .output()
        .expect("koko binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

/// Assert `stdout` matches `tests/golden/<name>` (or rewrite it when
/// `UPDATE_GOLDEN=1`).
fn assert_golden(name: &str, stdout: &str) {
    let path = repo_path(&format!("tests/golden/{name}"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, stdout).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {path:?} ({e}); run UPDATE_GOLDEN=1"));
    assert_eq!(
        stdout, expected,
        "stdout diverged from {path:?}; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

const EXAMPLE_2_1: &str = r#"extract e:Entity, d:Str from input.txt if
(/ROOT:{ a = //verb, b = a/dobj, c = b//"delicious", d = (b.subtree) } (b) in (e))"#;

const DATE_OF_BIRTH: &str = r#"extract a:Person, b:Date from wiki.article if (
/ROOT:{ v = verb })
satisfying v
(str(v) ~ "born" {1})
with threshold 0.5"#;

#[test]
fn query_over_text_corpus() {
    let (stdout, _, code) = koko(&["query", &fixture(), EXAMPLE_2_1, "--shards=1"]);
    assert_eq!(code, 0);
    assert_golden("query_example_2_1.txt", &stdout);
}

#[test]
fn query_with_limit_and_explain() {
    // Opts-bearing query: rows + the deterministic matches/explain block
    // on stdout (timings stay on stderr). --shards=1 keeps the per-shard
    // counters stable.
    let (stdout, _, code) = koko(&[
        "query",
        &fixture(),
        EXAMPLE_2_1,
        "--shards=1",
        "--limit=1",
        "--explain",
    ]);
    assert_eq!(code, 0);
    assert_golden("query_limit_explain.txt", &stdout);
}

#[test]
fn query_with_min_score_and_order() {
    let (stdout, _, code) = koko(&[
        "query",
        &fixture(),
        EXAMPLE_2_1,
        "--shards=1",
        "--min-score=0.5",
        "--order=score_desc",
        "--offset=1",
    ]);
    assert_eq!(code, 0);
    assert_golden("query_min_score_order.txt", &stdout);
}

#[test]
fn batch_with_limit_applies_to_every_query() {
    let (stdout, _, code) = koko(&[
        "batch",
        &fixture(),
        EXAMPLE_2_1,
        DATE_OF_BIRTH,
        "--shards=1",
        "--limit=1",
    ]);
    assert_eq!(code, 0);
    assert_golden("batch_limit_one.txt", &stdout);
}

#[test]
fn request_flag_validation_is_structured() {
    for args in [
        &["query", &fixture(), EXAMPLE_2_1, "--limit=abc"][..],
        &["query", &fixture(), EXAMPLE_2_1, "--order=banana"][..],
        &["query", &fixture(), EXAMPLE_2_1, "--min-score=warm"][..],
        &["query", &fixture(), EXAMPLE_2_1, "--deadline-ms=-3"][..],
        &["batch", &fixture(), EXAMPLE_2_1, "--offset=x"][..],
        &["client", "127.0.0.1:1", "q", "--limit=no"][..],
    ] {
        let (stdout, stderr, code) = koko(args);
        assert_eq!(code, 2, "args {args:?}: {stderr}");
        assert_eq!(stdout, "", "errors print nothing to stdout, args {args:?}");
        assert!(stderr.starts_with("error: --"), "args {args:?}: {stderr}");
        assert!(!stderr.contains("panicked"), "args {args:?}: {stderr}");
    }
}

#[test]
fn zero_deadline_is_a_structured_runtime_error() {
    let (stdout, stderr, code) = koko(&[
        "query",
        &fixture(),
        EXAMPLE_2_1,
        "--shards=1",
        "--deadline-ms=0",
    ]);
    assert_eq!(code, 1);
    assert_eq!(stdout, "");
    assert!(stderr.contains("deadline exceeded"), "{stderr}");
}

#[test]
fn batch_over_text_corpus() {
    let (stdout, _, code) = koko(&[
        "batch",
        &fixture(),
        EXAMPLE_2_1,
        DATE_OF_BIRTH,
        "--shards=1",
    ]);
    assert_eq!(code, 0);
    assert_golden("batch_two_queries.txt", &stdout);
}

#[test]
fn stats_over_text_corpus() {
    let (stdout, _, code) = koko(&["stats", &fixture(), "--shards=1"]);
    assert_eq!(code, 0);
    assert_golden("stats_fixture.txt", &stdout);
}

#[test]
fn parse_error_exit_code_and_stdout() {
    let (stdout, stderr, code) = koko(&["query", &fixture(), "not a query", "--shards=1"]);
    assert_eq!(code, 1);
    assert_eq!(stdout, "", "errors print nothing to stdout");
    assert!(stderr.contains("parse error"), "{stderr}");
}

#[test]
fn usage_errors_exit_2() {
    for args in [
        &[][..],
        &["query"][..],
        &["build", &fixture()][..],
        &["frobnicate"][..],
        &["serve"][..],
        &["client"][..],
        &["add"][..],
        &["add", "only_one.koko"][..],
    ] {
        let (stdout, stderr, code) = koko(args);
        assert_eq!(code, 2, "args {args:?}");
        assert_eq!(stdout, "", "usage goes to stderr, args {args:?}");
        assert!(stderr.contains("usage:"), "args {args:?}: {stderr}");
    }
}

#[test]
fn invalid_flag_values_are_structured_errors_not_panics() {
    // Satellite bugfix: these used to reach capacity-overflow panics (or
    // silently clamp). Every case must exit 2 with a flag-naming message
    // and no panic text.
    for args in [
        &["client", "127.0.0.1:1", "q", "--threads=0"][..],
        &[
            "client",
            "127.0.0.1:1",
            "q",
            "--threads=18446744073709551615",
        ][..],
        &["client", "127.0.0.1:1", "q", "--repeat=0"][..],
        &[
            "client",
            "127.0.0.1:1",
            "q",
            "--repeat=18446744073709551615",
        ][..],
        &["client", "127.0.0.1:1", "q", "--repeat=never"][..],
        &["client", "127.0.0.1:1", "q", "--repeat"][..],
        &["serve", &fixture(), "--threads=18446744073709551615"][..],
        &["serve", &fixture(), "--threads=abc"][..],
        &["serve", &fixture(), "--cache=lots"][..],
        &["serve", &fixture(), "--shards=-3"][..],
    ] {
        let (stdout, stderr, code) = koko(args);
        assert_eq!(code, 2, "args {args:?}: {stderr}");
        assert_eq!(stdout, "", "errors print nothing to stdout, args {args:?}");
        assert!(stderr.starts_with("error: --"), "args {args:?}: {stderr}");
        assert!(!stderr.contains("panicked"), "args {args:?}: {stderr}");
    }
}

#[test]
fn add_ingests_into_a_snapshot_and_queries_match_concatenated_text() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let snap = dir.join(format!("cli_add_{pid}.koko"));
    let snap_str = snap.display().to_string();
    let more = dir.join(format!("cli_add_more_{pid}.txt"));
    let more_str = more.display().to_string();
    let combined = dir.join(format!("cli_add_combined_{pid}.txt"));
    let combined_str = combined.display().to_string();

    let base_text = std::fs::read_to_string(fixture()).unwrap();
    let more_text = "Vera Alys was born in 1911.\n";
    std::fs::write(&more, more_text).unwrap();
    std::fs::write(&combined, format!("{base_text}{more_text}")).unwrap();

    let (_, stderr, code) = koko(&["build", &fixture(), "-o", &snap_str, "--shards=2"]);
    assert_eq!(code, 0, "{stderr}");

    // `add` on raw text is refused with guidance.
    let (_, stderr, code) = koko(&["add", &fixture(), &more_str]);
    assert_eq!(code, 1);
    assert!(stderr.contains("not a KOKO snapshot"), "{stderr}");

    // A missing or flag-shaped `-o` value is a usage error, not a write
    // to a file literally named "--compact" / "--shards=2" (or a silent
    // in-place save) — for `add` and `build` alike.
    for bad in [
        &["add", &snap_str, &more_str, "-o"][..],
        &["add", &snap_str, &more_str, "-o", "--compact"][..],
        &["build", &fixture(), "-o"][..],
        &["build", &fixture(), "-o", "--shards=2"][..],
    ] {
        let (_, stderr, code) = koko(bad);
        assert_eq!(code, 2, "args {bad:?}: {stderr}");
        assert!(stderr.contains("-o expects"), "{stderr}");
    }
    assert!(!Path::new("--compact").exists());
    assert!(!Path::new("--shards=2").exists());

    let (stdout, stderr, code) = koko(&["add", &snap_str, &more_str]);
    assert_eq!(code, 0, "{stderr}");
    assert_eq!(stdout, "", "add reports on stderr only");
    assert!(stderr.contains("added 1 documents"), "{stderr}");
    assert!(stderr.contains("1 delta shards"), "{stderr}");

    // The updated snapshot answers exactly like the concatenated corpus.
    let (snap_rows, _, code) = koko(&["query", &snap_str, DATE_OF_BIRTH]);
    assert_eq!(code, 0);
    let (text_rows, _, code) = koko(&["query", &combined_str, DATE_OF_BIRTH, "--shards=1"]);
    assert_eq!(code, 0);
    assert_eq!(snap_rows, text_rows, "incremental snapshot diverged");
    assert!(snap_rows.contains("Vera Alys"), "{snap_rows}");

    // --compact merges the delta in place; rows unchanged.
    let (_, stderr, code) = koko(&["add", &snap_str, &more_str, "--compact"]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stderr.contains("compacted"), "{stderr}");
    let (compacted_rows, _, code) = koko(&["query", &snap_str, DATE_OF_BIRTH]);
    assert_eq!(code, 0);
    // The second add appended the same document again: one more row.
    assert!(compacted_rows.matches("Vera Alys").count() > snap_rows.matches("Vera Alys").count());

    std::fs::remove_file(&snap).ok();
    std::fs::remove_file(&more).ok();
    std::fs::remove_file(&combined).ok();
}

#[test]
fn build_then_query_snapshot_matches_text_corpus() {
    let dir = std::env::temp_dir();
    let snap = dir.join(format!("cli_golden_{}.koko", std::process::id()));
    let snap_str = snap.display().to_string();

    let (stdout, stderr, code) = koko(&["build", &fixture(), "-o", &snap_str, "--shards=1"]);
    assert_eq!(code, 0, "{stderr}");
    assert_eq!(stdout, "", "build reports on stderr only");
    assert!(stderr.contains("built 4 documents"), "{stderr}");

    // Querying the snapshot must print the exact same rows as querying
    // the text corpus (the golden file from `query_over_text_corpus`).
    let (stdout, _, code) = koko(&["query", &snap_str, EXAMPLE_2_1]);
    assert_eq!(code, 0);
    assert_golden("query_example_2_1.txt", &stdout);

    std::fs::remove_file(&snap).ok();
}

#[test]
fn corrupt_snapshot_is_a_clean_error() {
    let dir = std::env::temp_dir();
    let snap = dir.join(format!("cli_golden_corrupt_{}.koko", std::process::id()));
    let snap_str = snap.display().to_string();
    let (_, stderr, code) = koko(&["build", &fixture(), "-o", &snap_str, "--shards=1"]);
    assert_eq!(code, 0, "{stderr}");

    // Flip payload bytes (past the 8-byte magic + header): checksum fails.
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    bytes[mid + 1] ^= 0xff;
    std::fs::write(&snap, &bytes).unwrap();

    for cmd in ["query", "stats"] {
        let args: Vec<&str> = match cmd {
            "query" => vec![cmd, &snap_str, EXAMPLE_2_1],
            _ => vec![cmd, &snap_str],
        };
        let (stdout, stderr, code) = koko(&args);
        assert_eq!(code, 1, "{cmd}: {stderr}");
        assert_eq!(stdout, "", "{cmd} prints nothing on corrupt input");
        assert!(
            stderr.contains("snapshot error"),
            "{cmd} names the failure mode: {stderr}"
        );
    }
    std::fs::remove_file(&snap).ok();
}

#[test]
fn truncated_snapshot_is_a_clean_error() {
    let dir = std::env::temp_dir();
    let snap = dir.join(format!("cli_golden_trunc_{}.koko", std::process::id()));
    let snap_str = snap.display().to_string();
    let (_, stderr, code) = koko(&["build", &fixture(), "-o", &snap_str, "--shards=1"]);
    assert_eq!(code, 0, "{stderr}");

    let bytes = std::fs::read(&snap).unwrap();
    std::fs::write(&snap, &bytes[..bytes.len() / 3]).unwrap();

    let (stdout, stderr, code) = koko(&["query", &snap_str, EXAMPLE_2_1]);
    assert_eq!(code, 1);
    assert_eq!(stdout, "");
    assert!(stderr.contains("snapshot error"), "{stderr}");
    std::fs::remove_file(&snap).ok();
}

#[test]
fn magic_bytes_alone_are_not_a_snapshot() {
    let dir = std::env::temp_dir();
    let snap = dir.join(format!("cli_golden_magic_{}.koko", std::process::id()));
    std::fs::write(&snap, b"KOKOSNAP").unwrap();
    let (stdout, stderr, code) = koko(&["query", &snap.display().to_string(), EXAMPLE_2_1]);
    assert_eq!(code, 1);
    assert_eq!(stdout, "");
    assert!(stderr.contains("snapshot error"), "{stderr}");
    std::fs::remove_file(&snap).ok();
}

#[test]
fn build_refuses_to_rebuild_a_snapshot() {
    let dir = std::env::temp_dir();
    let snap = dir.join(format!("cli_golden_rebuild_{}.koko", std::process::id()));
    let snap_str = snap.display().to_string();
    let (_, _, code) = koko(&["build", &fixture(), "-o", &snap_str, "--shards=1"]);
    assert_eq!(code, 0);
    let out_again = dir.join("cli_golden_rebuild_again.koko");
    let (stdout, stderr, code) =
        koko(&["build", &snap_str, "-o", &out_again.display().to_string()]);
    assert_eq!(code, 1);
    assert_eq!(stdout, "");
    assert!(stderr.contains("already a KOKO snapshot"), "{stderr}");
    std::fs::remove_file(&snap).ok();
}

#[test]
fn demo_walkthrough_is_stable() {
    let (stdout, _, code) = koko(&["demo"]);
    assert_eq!(code, 0);
    assert_golden("demo.txt", &stdout);
}

#[test]
fn parse_output_is_stable() {
    let (stdout, _, code) = koko(&["parse", &fixture()]);
    assert_eq!(code, 0);
    assert_golden("parse_fixture.txt", &stdout);
}
