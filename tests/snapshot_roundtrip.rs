//! A loaded snapshot must be *byte-identical* in query output (rows,
//! order, scores) to the freshly built engine it was saved from — the
//! correctness contract of the build-once / query-many workflow, mirroring
//! `tests/shard_equivalence.rs` for the persistence layer.
//!
//! Covers empty, 1-document and shard-boundary corpora, several shard
//! counts, the paper's query set, batch evaluation, custom embeddings, and
//! a proptest sweep over generated corpora.

use koko::core::{EngineOpts, Koko};
use koko::nlp::Pipeline;
use koko::{queries, Corpus, QueryOutput};
use proptest::prelude::*;

fn opts(num_shards: usize, parallel: bool) -> EngineOpts {
    EngineOpts {
        num_shards,
        parallel,
        ..EngineOpts::default()
    }
}

/// Render rows with full content so comparisons cover text, spans, sids,
/// docs, scores — and ORDER (no sorting here on purpose).
fn render(out: &QueryOutput) -> Vec<String> {
    out.rows
        .iter()
        .map(|r| format!("doc={} score={:.6} values={:?}", r.doc, r.score, r.values))
        .collect()
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("koko_it_snapshot_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Build → save → load → compare: every query must produce identical rows
/// and candidate counts on both engines.
fn assert_roundtrip(tag: &str, corpus: &Corpus, queries: &[&str], shard_counts: &[usize]) {
    for &k in shard_counts {
        let built = Koko::from_corpus_with_opts(corpus.clone(), opts(k, true));
        let path = tmp(&format!("{tag}_{k}.koko"));
        built.save(&path).unwrap();
        let loaded = Koko::open(&path).unwrap();
        assert_eq!(loaded.num_shards(), built.num_shards());
        for q in queries {
            let a = built.query(q).unwrap_or_else(|e| panic!("built {q}: {e}"));
            let b = loaded
                .query(q)
                .unwrap_or_else(|e| panic!("loaded {q}: {e}"));
            assert_eq!(
                render(&a),
                render(&b),
                "rows differ after round-trip (shards={k}) for query: {q}"
            );
            assert_eq!(
                a.profile.candidate_sentences, b.profile.candidate_sentences,
                "candidate count differs (shards={k}) for query: {q}"
            );
            assert_eq!(
                a.profile.raw_tuples, b.profile.raw_tuples,
                "raw tuple count differs (shards={k}) for query: {q}"
            );
        }
        std::fs::remove_file(&path).ok();
    }
}

const PAPER_QUERIES: &[&str] = &[
    queries::EXAMPLE_2_1,
    queries::EXAMPLE_2_3,
    queries::TITLE,
    queries::DATE_OF_BIRTH,
    queries::CHOCOLATE,
];

#[test]
fn empty_corpus() {
    let corpus = Corpus::new(Vec::new());
    assert_roundtrip("empty", &corpus, PAPER_QUERIES, &[1, 4]);
}

#[test]
fn single_document_corpus() {
    let corpus = Pipeline::new()
        .parse_corpus(&["I ate a chocolate ice cream, which was delicious, and also ate a pie."]);
    assert_roundtrip("single", &corpus, PAPER_QUERIES, &[1, 2, 8]);
}

#[test]
fn shard_boundary_corpora() {
    let texts = koko::corpus::wiki::generate(6, 99);
    let corpus = Pipeline::new().parse_corpus(&texts);
    // docs == shards, docs % shards != 0, docs < shards.
    assert_roundtrip("boundary", &corpus, PAPER_QUERIES, &[6, 4, 16]);
}

#[test]
fn wiki_corpus_all_scaleup_queries() {
    let texts = koko::corpus::wiki::generate(30, 4242);
    let corpus = Pipeline::new().parse_corpus(&texts);
    assert_roundtrip("wiki", &corpus, PAPER_QUERIES, &[1, 3, 7]);
}

#[test]
fn loaded_snapshot_serves_batches_identically() {
    let texts = koko::corpus::wiki::generate(12, 7);
    let built = Koko::from_corpus_with_opts(Pipeline::new().parse_corpus(&texts), opts(3, true));
    let path = tmp("batch.koko");
    built.save(&path).unwrap();
    let loaded = Koko::open(&path).unwrap();
    let a = built.query_batch(PAPER_QUERIES);
    let b = loaded.query_batch(PAPER_QUERIES);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(render(x.as_ref().unwrap()), render(y.as_ref().unwrap()));
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn ontology_embeddings_survive_and_score_identically() {
    use koko::embed::Embeddings;
    let embed = Embeddings::new().with_ontology(&[("pastry", &["kouign", "cronut"])]);
    let built = Koko::from_texts(&[
        "Blue Heron serves delicious cronut stacks.",
        "The bakery sells kouign every morning.",
    ])
    .with_embeddings(embed);
    let path = tmp("ontology.koko");
    built.save(&path).unwrap();
    let loaded = Koko::open(&path).unwrap();
    let q = r#"
extract x:Entity from "input.txt" if ()
satisfying x
(x [["serves cronut"]] {1})
with threshold 0.3
"#;
    assert_eq!(
        render(&built.query(q).unwrap()),
        render(&loaded.query(q).unwrap())
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn save_load_save_is_byte_stable() {
    // Decode → re-encode must reproduce the exact same file: the codec has
    // no hidden nondeterminism (hash-map ordering, timestamps, …).
    let texts = koko::corpus::wiki::generate(8, 21);
    let built = Koko::from_corpus_with_opts(Pipeline::new().parse_corpus(&texts), opts(3, true));
    let p1 = tmp("gen1.koko");
    let p2 = tmp("gen2.koko");
    built.save(&p1).unwrap();
    let loaded = Koko::open(&p1).unwrap();
    loaded.save(&p2).unwrap();
    assert_eq!(std::fs::read(&p1).unwrap(), std::fs::read(&p2).unwrap());
    std::fs::remove_file(&p1).ok();
    std::fs::remove_file(&p2).ok();
}

#[test]
fn stats_surface_matches_after_reload() {
    let texts = koko::corpus::wiki::generate(10, 5);
    let built = Koko::from_corpus_with_opts(Pipeline::new().parse_corpus(&texts), opts(4, true));
    let path = tmp("stats.koko");
    built.save(&path).unwrap();
    let loaded = Koko::open(&path).unwrap();
    let (lsnap, bsnap) = (loaded.snapshot(), built.snapshot());
    assert_eq!(
        lsnap.corpus().num_documents(),
        bsnap.corpus().num_documents()
    );
    assert_eq!(
        lsnap.corpus().num_sentences(),
        bsnap.corpus().num_sentences()
    );
    assert_eq!(lsnap.corpus().num_tokens(), bsnap.corpus().num_tokens());
    for (a, b) in lsnap.shards().iter().zip(bsnap.shards()) {
        assert_eq!(a.id(), b.id());
        assert_eq!(a.doc_range(), b.doc_range());
        assert_eq!(a.sid_range(), b.sid_range());
        assert_eq!(a.approx_index_bytes(), b.approx_index_bytes());
        assert_eq!(a.store().approx_bytes(), b.store().approx_bytes());
        assert_eq!(
            a.index().pl_index().num_nodes(),
            b.index().pl_index().num_nodes()
        );
        assert_eq!(
            a.index().pos_index().num_nodes(),
            b.index().pos_index().num_nodes()
        );
    }
    std::fs::remove_file(&path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Snapshot → bytes → Snapshot over generated corpora and shard
    /// counts: the loaded engine answers every probe query with exactly
    /// the rows the builder produced.
    #[test]
    fn roundtrip_equivalence_over_generated_corpora(
        n_docs in 1usize..24,
        seed in 0u64..1000,
        shards in 1usize..9,
    ) {
        let texts = koko::corpus::wiki::generate(n_docs, seed);
        let corpus = Pipeline::new().parse_corpus(&texts);
        let built = Koko::from_corpus_with_opts(corpus, opts(shards, true));
        let path = tmp(&format!("prop_{n_docs}_{seed}_{shards}.koko"));
        built.save(&path).unwrap();
        let loaded = Koko::open(&path).unwrap();
        prop_assert_eq!(loaded.num_shards(), built.num_shards());
        for q in PAPER_QUERIES {
            let a = built.query(q).unwrap();
            let b = loaded.query(q).unwrap();
            prop_assert_eq!(
                render(&a),
                render(&b),
                "query {} over {} docs (seed {}, {} shards)",
                q, n_docs, seed, shards
            );
        }
        std::fs::remove_file(&path).ok();
    }
}
