//! Property-based tests (proptest) over the core invariants listed in
//! DESIGN.md §3: parser projectivity, posting-quintuple structure, codec
//! round-trips, and index completeness under randomized inputs.

use koko::nlp::{tree_stats, Pipeline};
use koko::storage::Codec;
use proptest::prelude::*;

/// Random sentences assembled from the generator vocabulary (not random
/// bytes: the pipeline's contract covers natural-language-ish input).
fn word_pool() -> Vec<&'static str> {
    vec![
        "the",
        "a",
        "delicious",
        "happy",
        "Anna",
        "Tokyo",
        "cafe",
        "barista",
        "espresso",
        "cheesecake",
        "ate",
        "serves",
        "bought",
        "was",
        "and",
        "which",
        "she",
        "in",
        "at",
        "of",
        "very",
        "pie",
        "London",
        "Falcons",
        "coffee",
        "Copper",
        "Kettle",
        "store",
        "grocery",
        "morning",
        "1911",
        "called",
        "born",
        "to",
        "went",
        "team",
    ]
}

fn arb_sentence() -> impl Strategy<Value = String> {
    prop::collection::vec(0..word_pool().len(), 1..18).prop_map(|idxs| {
        let pool = word_pool();
        let mut words: Vec<&str> = idxs.into_iter().map(|i| pool[i]).collect();
        words.push(".");
        words.join(" ")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every parse is a projective tree: single root, no cycles, and each
    /// subtree covers a contiguous token range (the hierarchy index's
    /// posting layout depends on this).
    #[test]
    fn parser_produces_projective_trees(text in arb_sentence()) {
        let pipeline = Pipeline::new();
        let doc = pipeline.parse_document(0, &text);
        for s in &doc.sentences {
            if s.is_empty() { continue; }
            let root = s.root().expect("exactly one root");
            // No cycles: every token reaches the root.
            for i in 0..s.len() {
                let mut cur = i as u32;
                let mut steps = 0;
                while let Some(h) = s.tokens[cur as usize].head {
                    cur = h;
                    steps += 1;
                    prop_assert!(steps <= s.len(), "cycle at {i} in {text:?}");
                }
                prop_assert_eq!(cur, root);
            }
            // Contiguity: subtree size equals span width.
            let stats = tree_stats(s);
            for (i, stat) in stats.iter().enumerate() {
                let mut size = 0;
                for j in 0..s.len() {
                    let mut cur = Some(j as u32);
                    while let Some(c) = cur {
                        if c == i as u32 { size += 1; break; }
                        cur = s.tokens[c as usize].head;
                    }
                }
                let width = (stat.right - stat.left + 1) as usize;
                prop_assert_eq!(size, width, "non-contiguous subtree at {} in {:?}", i, text);
            }
        }
    }

    /// Documents survive the storage codec byte-for-byte.
    #[test]
    fn codec_round_trips_random_documents(texts in prop::collection::vec(arb_sentence(), 1..4)) {
        let pipeline = Pipeline::new();
        let doc = pipeline.parse_document(7, &texts.join(" "));
        let bytes = doc.to_bytes();
        let back = koko::Document::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, doc);
    }

    /// Posting quintuples satisfy the §3.1 parent test exactly when the
    /// dependency tree says so.
    #[test]
    fn posting_parent_test_matches_tree(text in arb_sentence()) {
        let pipeline = Pipeline::new();
        let doc = pipeline.parse_document(0, &text);
        let Some(s) = doc.sentences.first() else { return Ok(()); };
        let stats = tree_stats(s);
        let posting = |i: usize| koko::nlp::Posting {
            sid: 0,
            tid: i as u32,
            left: stats[i].left,
            right: stats[i].right,
            depth: stats[i].depth,
        };
        for c in 0..s.len() {
            for p in 0..s.len() {
                if p == c { continue; }
                let tree_says = s.tokens[c].head == Some(p as u32);
                let posting_says = posting(p).is_parent_of(&posting(c));
                prop_assert_eq!(tree_says, posting_says,
                    "parent test mismatch p={} c={} in {:?}", p, c, text);
            }
        }
    }

    /// KOKO's decomposed index lookup never drops a true match.
    #[test]
    fn koko_index_candidates_are_complete(texts in prop::collection::vec(arb_sentence(), 2..6)) {
        let pipeline = Pipeline::new();
        let corpus = pipeline.parse_corpus(&texts);
        let index = koko::index::KokoIndex::build(&corpus);
        let queries = koko::corpus::synthetic_tree::generate(&corpus, 1);
        for q in queries.iter().step_by(23) {
            let truth = koko::index::ground_truth_sids(&corpus, &q.pattern);
            let cands = index.candidate_sids(&q.pattern);
            for t in &truth {
                prop_assert!(cands.contains(t), "dropped sid {} for {}", t, q.pattern.render());
            }
        }
    }
}
