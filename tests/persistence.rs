//! Storage-layer integration: indices and parsed articles survive a
//! round-trip through the on-disk format ("Indices can be persisted for
//! subsequent use", §3).

use koko::nlp::Pipeline;
use koko::storage::{Db, DocStore};

#[test]
fn docstore_and_closure_tables_round_trip_through_a_directory() {
    let texts = koko::corpus::wiki::generate(10, 77);
    let corpus = Pipeline::new().parse_corpus(&texts);
    let index = koko::index::KokoIndex::build(&corpus);

    let db = Db::new();
    let mut docs = DocStore::new();
    for d in corpus.documents() {
        docs.put(d);
    }
    db.set_docs(docs);
    db.put_closure("pl", index.pl_index().to_closure_table());
    db.put_closure("pos", index.pos_index().to_closure_table());

    let dir = std::env::temp_dir().join("koko_it_persistence");
    std::fs::remove_dir_all(&dir).ok();
    db.save_dir(&dir).unwrap();

    let back = Db::open_dir(&dir).unwrap();
    assert_eq!(back.with_docs(|d| d.len()), corpus.num_documents());
    for di in 0..corpus.num_documents() as u32 {
        assert_eq!(&back.load_document(di).unwrap(), corpus.document(di));
    }
    back.with_closure("pl", |c| {
        let c = c.expect("pl closure persisted");
        assert_eq!(c.len(), index.pl_index().to_closure_table().len());
    });
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn closure_table_answers_hierarchy_queries_after_reload() {
    use koko::nlp::ParseLabel;
    let corpus = Pipeline::new()
        .parse_corpus(&["I ate a chocolate ice cream, which was delicious, and also ate a pie."]);
    let index = koko::index::KokoIndex::build(&corpus);
    let ct = index.pl_index().to_closure_table();
    let bytes = {
        use koko::storage::Codec;
        ct.to_bytes()
    };
    let back = {
        use koko::storage::Codec;
        koko::storage::ClosureTable::from_bytes(&bytes).unwrap()
    };
    // nn nodes under a dobj parent exist (Example 3.3's merged node).
    let hits = back.nodes_with_ancestor(ParseLabel::Nn as u16, ParseLabel::Dobj as u16, Some(1));
    assert!(!hits.is_empty());
}

#[test]
fn query_results_identical_before_and_after_persistence() {
    let texts = koko::corpus::wiki::generate(15, 88);
    let corpus = Pipeline::new().parse_corpus(&texts);

    let koko_a = koko::Koko::from_corpus(corpus.clone());
    let out_a = koko_a.query(koko::queries::DATE_OF_BIRTH).unwrap();

    // Persist the document store, reload, rebuild the engine from decoded
    // documents.
    let dir = std::env::temp_dir().join("koko_it_requery");
    std::fs::remove_dir_all(&dir).ok();
    koko_a.snapshot().db().save_dir(&dir).unwrap();
    let db = Db::open_dir(&dir).unwrap();
    let docs: Vec<koko::Document> = (0..db.with_docs(|d| d.len()) as u32)
        .map(|i| db.load_document(i).unwrap())
        .collect();
    let koko_b = koko::Koko::from_corpus(koko::Corpus::new(docs));
    let out_b = koko_b.query(koko::queries::DATE_OF_BIRTH).unwrap();

    let key = |o: &koko::QueryOutput| {
        let mut v: Vec<String> = o
            .rows
            .iter()
            .map(|r| format!("{}:{:?}", r.doc, r.values))
            .collect();
        v.sort();
        v
    };
    assert_eq!(key(&out_a), key(&out_b));
    std::fs::remove_dir_all(&dir).ok();
}
