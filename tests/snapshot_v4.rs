//! The sectioned (v4) snapshot container contract, enforced end-to-end
//! through the public API:
//!
//! * **Open equivalence** — `Snapshot::open_mmap` (the default) and the
//!   eager load answer every query byte-identically to the in-memory
//!   engine that wrote the file, across request shapes.
//! * **Hostile input** — byte flips, truncations, and version/header
//!   mangling are either rejected with a structured [`SnapshotFileError`]
//!   (at open or on first touch) or provably harmless (padding); nothing
//!   panics, and no mangled file ever yields *wrong* rows.
//! * **Crash safety** — a torn append (crash after data write, before
//!   the header rewrite) leaves trailing bytes past the declared extent;
//!   v4 opens tolerate them and serve the pre-append snapshot. Stale
//!   temp files from a killed full rewrite are inert.
//! * **Append-on-add** — re-saving a grown engine to the same path
//!   appends sealed sections instead of rewriting, and both open paths
//!   see the new generation.
//! * **Legacy compat** — payload-framed v1/v2 files load identically
//!   through `Koko::open` (which falls back from mmap) and the eager path.

use koko::{queries, EngineOpts, Error, Koko, Order, QueryRequest, Row};
use std::path::{Path, PathBuf};

const PAPER_QUERIES: &[&str] = &[
    queries::EXAMPLE_2_1,
    queries::EXAMPLE_2_3,
    queries::TITLE,
    queries::DATE_OF_BIRTH,
    queries::CHOCOLATE,
];

fn render_rows(rows: &[Row]) -> Vec<String> {
    rows.iter()
        .map(|r| format!("doc={} score={:.6} values={:?}", r.doc, r.score, r.values))
        .collect()
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("koko_v4_{}_{name}", std::process::id()))
}

fn engine(n_docs: usize, seed: u64, shards: usize) -> Koko {
    let texts = koko::corpus::wiki::generate(n_docs, seed);
    Koko::from_texts_with_opts(
        &texts,
        EngineOpts {
            num_shards: shards,
            ..EngineOpts::default()
        },
    )
}

fn open_eager(path: &Path) -> Result<Koko, Error> {
    Koko::open_with_opts(
        path,
        EngineOpts {
            eager_load: true,
            ..EngineOpts::default()
        },
    )
}

/// Every request shape exercised by the equivalence matrix.
fn requests(q: &str) -> Vec<QueryRequest> {
    vec![
        QueryRequest::new(q),
        QueryRequest::new(q).order(Order::ScoreDesc).limit(3),
        QueryRequest::new(q).min_score(0.25).offset(1).limit(4),
        QueryRequest::new(q).explain(true),
    ]
}

#[test]
fn mmap_and_eager_opens_answer_identically() {
    let built = engine(8, 77, 3);
    let path = tmp("equiv.koko");
    built.save(&path).unwrap();
    let mapped = Koko::open(&path).unwrap(); // mmap is the default
    let eager = open_eager(&path).unwrap();
    assert_eq!(mapped.num_documents(), built.num_documents());
    for q in PAPER_QUERIES {
        for req in requests(q) {
            let reference = render_rows(&built.run(&req).unwrap().rows);
            let via_mmap = render_rows(&mapped.run(&req).unwrap().rows);
            let via_eager = render_rows(&eager.run(&req).unwrap().rows);
            assert_eq!(via_mmap, reference, "{q}: mmap vs in-memory");
            assert_eq!(via_eager, reference, "{q}: eager vs in-memory");
        }
    }
    std::fs::remove_file(&path).ok();
}

/// Open (both paths) and query a mangled file. Returns the rows if the
/// whole pipeline succeeded. Panics (failing the test) only if a
/// *successful* run disagrees with `baseline` — corruption must be
/// rejected or harmless, never silently wrong.
fn open_and_query(path: &Path, baseline: &[String], ctx: &str) {
    for eager in [false, true] {
        let opened = if eager {
            open_eager(path)
        } else {
            Koko::open(path)
        };
        let koko = match opened {
            Ok(k) => k,
            Err(Error::Snapshot(_)) => continue, // structured rejection at open
            Err(e) => panic!("{ctx}: unexpected error class at open: {e}"),
        };
        match koko.run(&QueryRequest::new(queries::EXAMPLE_2_1)) {
            Ok(out) => assert_eq!(
                render_rows(&out.rows),
                baseline,
                "{ctx} (eager={eager}): accepted corruption changed the rows"
            ),
            Err(Error::Snapshot(_)) => {} // structured rejection on touch
            Err(e) => panic!("{ctx}: unexpected error class at query: {e}"),
        }
    }
}

#[test]
fn byte_flips_are_either_detected_or_harmless() {
    let built = engine(4, 901, 2);
    let path = tmp("flip.koko");
    built.save(&path).unwrap();
    let good = std::fs::read(&path).unwrap();
    let baseline = render_rows(
        &built
            .run(&QueryRequest::new(queries::EXAMPLE_2_1))
            .unwrap()
            .rows,
    );

    // Every header byte, a stride through the body, and the tail (the
    // section table + its trailer live at the end of the file).
    let mut offsets: Vec<usize> = (0..26.min(good.len())).collect();
    offsets.extend((26..good.len()).step_by(101));
    offsets.extend(good.len().saturating_sub(64)..good.len());
    for off in offsets {
        let mut bad = good.clone();
        bad[off] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        open_and_query(&path, &baseline, &format!("flip@{off}"));
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncations_never_panic() {
    let built = engine(4, 902, 2);
    let path = tmp("trunc.koko");
    built.save(&path).unwrap();
    let good = std::fs::read(&path).unwrap();
    let baseline = render_rows(
        &built
            .run(&QueryRequest::new(queries::EXAMPLE_2_1))
            .unwrap()
            .rows,
    );
    let cuts = [
        0,
        5,
        9,
        13,
        25,
        26,
        31,
        32,
        good.len() / 3,
        good.len() / 2,
        good.len() - 1,
    ];
    for cut in cuts {
        std::fs::write(&path, &good[..cut]).unwrap();
        // A shorter extent can never serve the full snapshot: both opens
        // must reject it (header, table, or a section lands out of range).
        assert!(
            Koko::open(&path).is_err(),
            "cut@{cut}: mmap open accepted a truncated file"
        );
        assert!(
            open_eager(&path).is_err(),
            "cut@{cut}: eager open accepted a truncated file"
        );
        open_and_query(&path, &baseline, &format!("cut@{cut}")); // and never panics
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn torn_appends_are_tolerated_and_invisible() {
    let built = engine(5, 903, 2);
    let path = tmp("torn.koko");
    built.save(&path).unwrap();
    let good = std::fs::read(&path).unwrap();

    // A crash between the data write and the header rewrite leaves new
    // section bytes past the declared extent with the old header intact.
    for tail in [1usize, 7, 4096] {
        let mut torn = good.clone();
        torn.extend(std::iter::repeat_n(0xAB, tail));
        std::fs::write(&path, &torn).unwrap();
        for (label, opened) in [("mmap", Koko::open(&path)), ("eager", open_eager(&path))] {
            let koko = opened
                .unwrap_or_else(|e| panic!("torn tail of {tail} bytes rejected via {label}: {e}"));
            for q in PAPER_QUERIES {
                assert_eq!(
                    render_rows(&koko.query(q).unwrap().rows),
                    render_rows(&built.query(q).unwrap().rows),
                    "{q} via {label} with {tail} torn bytes"
                );
            }
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn stale_temp_files_from_a_killed_rewrite_are_inert() {
    let built = engine(3, 904, 2);
    let path = tmp("stale.koko");
    built.save(&path).unwrap();
    // A full rewrite stages into `<name>.tmp<pid>.<seq>` and renames; a
    // kill before the rename strands the temp file. It must not affect
    // opening the published snapshot, and a later save still succeeds.
    let stale = tmp("stale.koko.tmp99999.7");
    std::fs::write(&stale, b"half-written garbage").unwrap();
    let koko = Koko::open(&path).unwrap();
    assert_eq!(koko.num_documents(), built.num_documents());
    built.save(&path).unwrap();
    assert!(Koko::open(&path).is_ok());
    std::fs::remove_file(&stale).ok();
    std::fs::remove_file(&path).ok();
}

#[test]
fn append_save_round_trips_through_add() {
    let built = engine(5, 905, 2);
    let path = tmp("append.koko");
    built.save(&path).unwrap();
    let base_len = std::fs::metadata(&path).unwrap().len();

    // Write path: eager open, grow, save back to the same file.
    let koko = open_eager(&path).unwrap();
    let more = koko::corpus::wiki::generate(3, 906);
    let report = koko.add_texts(&more);
    assert_eq!(report.added, 3);
    koko.save(&path).unwrap();
    let grown_len = std::fs::metadata(&path).unwrap().len();
    assert!(
        grown_len > base_len,
        "append must extend the file ({base_len} -> {grown_len})"
    );
    // Sealed sections are reused in place: everything between the header
    // and the old section table survives byte-for-byte, only the delta
    // shard + a fresh table land past the old extent.
    let grown = std::fs::read(&path).unwrap();
    let good = {
        let built2 = engine(5, 905, 2);
        let p2 = tmp("append_ref.koko");
        built2.save(&p2).unwrap();
        let b = std::fs::read(&p2).unwrap();
        std::fs::remove_file(&p2).ok();
        b
    };
    assert_eq!(
        &grown[26..64],
        &good[26..64],
        "the first sealed section must be untouched by the append"
    );

    for (label, reopened) in [("mmap", Koko::open(&path)), ("eager", open_eager(&path))] {
        let reopened = reopened.unwrap();
        assert_eq!(
            reopened.num_documents(),
            koko.num_documents(),
            "{label}: document count after append"
        );
        assert_eq!(reopened.generation(), koko.generation(), "{label}");
        for q in PAPER_QUERIES {
            assert_eq!(
                render_rows(&reopened.query(q).unwrap().rows),
                render_rows(&koko.query(q).unwrap().rows),
                "{q} via {label} after append-save"
            );
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn legacy_payload_files_answer_identically_via_both_paths() {
    use koko::storage::{docstore::Blob, Codec};
    let built = engine(6, 907, 2);
    let snap = built.snapshot();

    // Hand-assemble the payload-framed legacy layouts: v2 carries a
    // manifest (generation, num_base), v1 predates it.
    let mut shared = Vec::new();
    shared.extend_from_slice(&snap.embeddings().to_bytes());
    let mut v2 = shared.clone();
    v2.extend_from_slice(&snap.generation().to_bytes());
    v2.extend_from_slice(&(snap.num_base_shards() as u64).to_bytes());
    let mut tail = Vec::new();
    tail.extend_from_slice(&snap.router().to_bytes());
    let sections: Vec<Blob> = snap.shards().iter().map(|s| Blob(s.to_bytes())).collect();
    tail.extend_from_slice(&sections.to_bytes());
    let v1 = [shared, tail.clone()].concat();
    let v2 = [v2, tail].concat();

    for (version, payload) in [(1u16, v1), (2u16, v2)] {
        let path = tmp(&format!("legacy_v{version}.koko"));
        koko::storage::write_snapshot_file(&path, &payload).unwrap();
        let mut data = std::fs::read(&path).unwrap();
        data[8..10].copy_from_slice(&version.to_le_bytes());
        std::fs::write(&path, &data).unwrap();

        for (label, opened) in [("mmap", Koko::open(&path)), ("eager", open_eager(&path))] {
            let legacy = opened.unwrap_or_else(|e| panic!("v{version} via {label}: {e}"));
            // v1 predates generations and forces 1; a fresh build is
            // generation 1, so both versions land there.
            assert_eq!(legacy.generation(), built.generation());
            for q in PAPER_QUERIES {
                assert_eq!(
                    render_rows(&legacy.query(q).unwrap().rows),
                    render_rows(&built.query(q).unwrap().rows),
                    "{q}: v{version} via {label}"
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }
}
