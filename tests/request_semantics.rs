//! The [`QueryRequest`] semantics contract, enforced over real corpora:
//!
//! * **Prefix property** — under either [`Order`], `limit(k).offset(n)`
//!   returns exactly rows `n .. n + k` of the unlimited run (top-k early
//!   termination may skip work, never change rows).
//! * **Row ordering** — `DocOrder` is byte-identical to the historical
//!   `Koko::query` order; `ScoreDesc` is sorted by descending score and
//!   stable (ties keep their `DocOrder` position).
//! * **`min_score`** — equivalent to post-filtering the full run by
//!   `score >= s`, but applied inside aggregation (pruned rows are
//!   counted, not returned).
//! * **Default request** — byte-identical to `Koko::query`, including
//!   totals (`total_matches == rows.len()`, `truncated == false`).
//! * **Result-cache slicing** — a cached full result serves any narrower
//!   limit/offset slice; a truncated run never poisons the cache.
//! * **Deadlines** — a zero budget fails with the structured error and
//!   no partial rows.

use koko::{queries, EngineOpts, Error, Koko, Order, QueryRequest, Row};
use proptest::prelude::*;

const PAPER_QUERIES: &[&str] = &[
    queries::EXAMPLE_2_1,
    queries::EXAMPLE_2_3,
    queries::TITLE,
    queries::DATE_OF_BIRTH,
    queries::CHOCOLATE,
];

fn render_rows(rows: &[Row]) -> Vec<String> {
    rows.iter()
        .map(|r| format!("doc={} score={:.6} values={:?}", r.doc, r.score, r.values))
        .collect()
}

fn engine(texts: &[String], shards: usize, cache: usize) -> Koko {
    Koko::from_texts_with_opts(
        texts,
        EngineOpts {
            num_shards: shards,
            result_cache: cache,
            ..EngineOpts::default()
        },
    )
}

/// Assert the full prefix/window contract of one (engine, query, order)
/// against the unlimited run.
fn assert_window_contract(koko: &Koko, query: &str, order: Order, context: &str) {
    let full = QueryRequest::new(query)
        .order(order)
        .run(koko)
        .unwrap_or_else(|e| panic!("{context}: {e}"));
    assert_eq!(full.total_matches, full.rows.len(), "{context}");
    assert!(!full.truncated, "{context}");
    let full_rendered = render_rows(&full.rows);

    let windows: &[(usize, usize)] = &[
        (0, 0),
        (0, 1),
        (0, 2),
        (1, 1),
        (1, 3),
        (2, 2),
        (0, full.rows.len()),
        (0, full.rows.len() + 3),
        (full.rows.len(), 2),
        (full.rows.len() + 5, 1),
    ];
    for &(offset, k) in windows {
        let out = QueryRequest::new(query)
            .order(order)
            .offset(offset)
            .limit(k)
            .run(koko)
            .unwrap_or_else(|e| panic!("{context} offset={offset} k={k}: {e}"));
        let start = offset.min(full_rendered.len());
        let end = (start + k).min(full_rendered.len());
        assert_eq!(
            render_rows(&out.rows),
            full_rendered[start..end],
            "{context}: limit({k}).offset({offset}) must be a window of the unlimited run"
        );
        // Totals: exact when nothing was skipped, a lower bound (that
        // still covers the returned window) when early-terminated.
        if out.truncated {
            assert!(out.total_matches >= end, "{context}");
            assert!(out.total_matches <= full.rows.len(), "{context}");
        } else {
            assert_eq!(out.total_matches, full.rows.len(), "{context}");
            assert_eq!(
                end - start,
                full.rows.len().saturating_sub(start).min(k),
                "{context}"
            );
        }
    }
}

#[test]
fn default_request_is_byte_identical_to_query() {
    let texts = koko::corpus::wiki::generate(12, 4242);
    for shards in [1, 3] {
        let koko = engine(&texts, shards, 0);
        for q in PAPER_QUERIES {
            let legacy = koko.query(q).unwrap();
            let req = QueryRequest::new(*q).run(&koko).unwrap();
            assert_eq!(render_rows(&legacy.rows), render_rows(&req.rows), "{q}");
            assert_eq!(req.total_matches, req.rows.len(), "{q}");
            assert!(!req.truncated, "{q}");
            assert!(req.explain.is_none(), "{q}");
            assert_eq!(legacy.total_matches, legacy.rows.len(), "{q}");
            assert_eq!(
                legacy.profile.candidate_sentences, req.profile.candidate_sentences,
                "{q}"
            );
            assert_eq!(legacy.profile.raw_tuples, req.profile.raw_tuples, "{q}");
            assert_eq!(legacy.profile.docs_skipped, 0, "{q}");
        }
    }
}

#[test]
fn limit_is_a_prefix_under_both_orders() {
    let texts = koko::corpus::wiki::generate(14, 99);
    for shards in [1, 4] {
        let koko = engine(&texts, shards, 0);
        for q in PAPER_QUERIES {
            for order in [Order::DocOrder, Order::ScoreDesc] {
                assert_window_contract(&koko, q, order, &format!("{q} shards={shards}"));
            }
        }
    }
}

#[test]
fn score_desc_is_sorted_and_stable() {
    let texts = koko::corpus::wiki::generate(16, 7);
    let koko = engine(&texts, 2, 0);
    for q in PAPER_QUERIES {
        let doc_order = QueryRequest::new(*q).run(&koko).unwrap();
        let scored = QueryRequest::new(*q)
            .order(Order::ScoreDesc)
            .run(&koko)
            .unwrap();
        assert_eq!(scored.rows.len(), doc_order.rows.len(), "{q}");
        // Sorted by descending score.
        for pair in scored.rows.windows(2) {
            assert!(pair[0].score >= pair[1].score, "{q}: not sorted");
        }
        // Stable: ties keep their DocOrder position. Reconstruct via a
        // stable sort over the DocOrder run and compare byte-for-byte.
        let mut expected = doc_order.rows.clone();
        expected.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
        assert_eq!(
            render_rows(&scored.rows),
            render_rows(&expected),
            "{q}: ScoreDesc must be the stable sort of the DocOrder run"
        );
    }
}

#[test]
fn min_score_equals_post_filtering_but_prunes_inside() {
    let texts = koko::corpus::wiki::generate(14, 4242);
    let koko = engine(&texts, 2, 0);
    for q in PAPER_QUERIES {
        let full = koko.query(q).unwrap();
        // Thresholds drawn from the actual score distribution, plus the
        // extremes.
        let mut floors: Vec<f64> = full.rows.iter().map(|r| r.score).collect();
        floors.push(0.0);
        floors.push(2.0);
        for floor in floors {
            let out = QueryRequest::new(*q).min_score(floor).run(&koko).unwrap();
            let expected: Vec<&Row> = full.rows.iter().filter(|r| r.score >= floor).collect();
            assert_eq!(
                render_rows(&out.rows),
                expected
                    .iter()
                    .map(|r| format!("doc={} score={:.6} values={:?}", r.doc, r.score, r.values))
                    .collect::<Vec<_>>(),
                "{q} floor={floor}"
            );
            assert_eq!(out.total_matches, expected.len(), "{q} floor={floor}");
            assert!(!out.truncated, "{q} floor={floor}");
            assert_eq!(
                out.profile.min_score_pruned,
                full.rows.len() - expected.len(),
                "{q} floor={floor}: every dropped row is counted"
            );
        }
    }
}

#[test]
fn top_k_early_termination_skips_documents() {
    // A corpus where every document matches: limit(1) must stop after the
    // first match and record the untouched candidates.
    let texts: Vec<String> = (0..30)
        .map(|_| {
            "Anna ate some delicious cheesecake that she bought at a grocery store.".to_string()
        })
        .collect();
    let koko = engine(&texts, 1, 0);
    let full = koko.query(queries::EXAMPLE_2_1).unwrap();
    assert_eq!(full.rows.len(), 30);
    let limited = QueryRequest::new(queries::EXAMPLE_2_1)
        .limit(1)
        .run(&koko)
        .unwrap();
    assert_eq!(limited.rows.len(), 1);
    assert!(limited.truncated);
    assert_eq!(render_rows(&limited.rows), render_rows(&full.rows[..1]));
    assert!(
        limited.profile.docs_skipped >= 25,
        "early termination must skip most documents (skipped {})",
        limited.profile.docs_skipped
    );
    assert!(limited.profile.candidates_skipped >= 25);
    assert!(
        limited.profile.raw_tuples < full.profile.raw_tuples,
        "skipped documents were never extracted"
    );
    // ScoreDesc prunes too: EXAMPLE_2_1 has no satisfying clause, so
    // every row scores exactly the shard bound (1.0) — after the first
    // document fills the heap, no later document can beat the floor
    // (score ties lose to the incumbent's smaller key).
    let scored = QueryRequest::new(queries::EXAMPLE_2_1)
        .limit(1)
        .order(Order::ScoreDesc)
        .run(&koko)
        .unwrap();
    assert_eq!(scored.rows.len(), 1);
    assert!(scored.truncated);
    assert_eq!(render_rows(&scored.rows), render_rows(&full.rows[..1]));
    assert!(
        scored.profile.bound_skipped_docs >= 25,
        "the score bound must skip most documents (skipped {})",
        scored.profile.bound_skipped_docs
    );
    assert_eq!(
        scored.profile.docs_skipped,
        scored.profile.bound_skipped_docs
    );
    assert!(scored.profile.candidates_skipped >= 25);
    assert!(
        scored.total_matches >= 1,
        "total_matches stays a lower bound under ranked early termination"
    );
}

#[test]
fn cached_full_results_serve_narrower_slices() {
    let texts: Vec<String> = (0..8)
        .map(|_| {
            "Anna ate some delicious cheesecake that she bought at a grocery store.".to_string()
        })
        .collect();
    let koko = engine(&texts, 1, 16);
    let full = koko.query(queries::EXAMPLE_2_1).unwrap();
    assert_eq!(full.profile.result_cache_misses, 1);
    // Any narrower window is a hit on the cached full result.
    for (offset, k) in [(0, 3), (2, 2), (5, 10), (0, 0)] {
        let out = QueryRequest::new(queries::EXAMPLE_2_1)
            .offset(offset)
            .limit(k)
            .run(&koko)
            .unwrap();
        assert_eq!(out.profile.result_cache_hits, 1, "offset={offset} k={k}");
        let end = (offset + k).min(full.rows.len());
        let start = offset.min(full.rows.len());
        assert_eq!(
            render_rows(&out.rows),
            render_rows(&full.rows[start..end]),
            "offset={offset} k={k}"
        );
        assert_eq!(out.total_matches, full.rows.len());
        assert_eq!(out.truncated, end < full.rows.len());
    }
}

#[test]
fn truncated_results_never_poison_the_cache() {
    let texts: Vec<String> = (0..10)
        .map(|_| {
            "Anna ate some delicious cheesecake that she bought at a grocery store.".to_string()
        })
        .collect();
    let koko = engine(&texts, 1, 16);
    // Cold limited query: evaluates (miss), early-terminates, must NOT be
    // stored — the follow-up unlimited query has to see every row.
    let limited = QueryRequest::new(queries::EXAMPLE_2_1)
        .limit(2)
        .run(&koko)
        .unwrap();
    assert!(limited.truncated);
    assert_eq!(limited.profile.result_cache_misses, 1);
    let full = koko.query(queries::EXAMPLE_2_1).unwrap();
    assert_eq!(
        full.profile.result_cache_hits, 0,
        "truncated entry must not serve the unlimited request"
    );
    assert_eq!(full.rows.len(), 10);
    // Now the full result is cached; the limited request hits and slices.
    let again = QueryRequest::new(queries::EXAMPLE_2_1)
        .limit(2)
        .run(&koko)
        .unwrap();
    assert_eq!(again.profile.result_cache_hits, 1);
    assert_eq!(render_rows(&again.rows), render_rows(&full.rows[..2]));
    // min_score and order are part of the key: no false sharing.
    let floored = QueryRequest::new(queries::EXAMPLE_2_1)
        .min_score(0.5)
        .run(&koko)
        .unwrap();
    assert_eq!(floored.profile.result_cache_hits, 0, "different key");
    let scored = QueryRequest::new(queries::EXAMPLE_2_1)
        .order(Order::ScoreDesc)
        .run(&koko)
        .unwrap();
    assert_eq!(scored.profile.result_cache_hits, 0, "different key");
}

#[test]
fn zero_deadline_fails_structurally_with_no_partial_rows() {
    let koko = engine(&koko::corpus::wiki::generate(6, 1), 2, 16);
    let err = QueryRequest::new(queries::EXAMPLE_2_1)
        .deadline(std::time::Duration::ZERO)
        .run(&koko)
        .unwrap_err();
    match err {
        Error::DeadlineExceeded { budget, elapsed } => {
            assert_eq!(budget, std::time::Duration::ZERO);
            assert!(elapsed >= budget);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    // A generous deadline answers identically to no deadline at all.
    let with = QueryRequest::new(queries::EXAMPLE_2_1)
        .deadline(std::time::Duration::from_secs(3600))
        .run(&koko)
        .unwrap();
    let without = koko.query(queries::EXAMPLE_2_1).unwrap();
    assert_eq!(render_rows(&with.rows), render_rows(&without.rows));
}

#[test]
fn explain_reports_are_consistent_with_the_profile() {
    let texts = koko::corpus::wiki::generate(10, 4242);
    let koko = engine(&texts, 3, 16);
    for q in PAPER_QUERIES {
        let out = QueryRequest::new(*q).explain(true).run(&koko).unwrap();
        let explain = out.explain.as_ref().unwrap_or_else(|| panic!("{q}"));
        assert_eq!(explain.shards.len(), koko.num_shards(), "{q}");
        assert_eq!(
            explain.total_candidates(),
            out.profile.candidate_sentences,
            "{q}"
        );
        let rows_total: usize = explain.shards.iter().map(|s| s.rows).sum();
        assert_eq!(rows_total, out.rows.len(), "{q}");
        let tuples_total: usize = explain.shards.iter().map(|s| s.tuples).sum();
        assert_eq!(tuples_total, out.profile.raw_tuples, "{q}");
        assert!(!explain.early_terminated(), "{q}: unlimited run");
        // Explain never changes the rows.
        assert_eq!(
            render_rows(&out.rows),
            render_rows(&koko.query_with_cache(q, false).unwrap().rows),
            "{q}"
        );
        // TITLE has a horizontal condition, so a skip plan must be
        // rendered when candidates reached the planner.
        if *q == queries::TITLE && out.profile.candidate_sentences > 0 {
            assert!(!explain.plans.is_empty(), "{q}");
        }
    }
}

/// Write an engine's snapshot as a payload-framed format-v2 file (no
/// score-bound statistics): hand-assemble the v2 payload — embeddings,
/// manifest, router, shard blobs, no stats section — and restamp the
/// version. Loading it exercises the conservative-bound path exactly as
/// a real pre-v3 file would. (Current saves use the sectioned v4 layout,
/// so the legacy frame is synthesized rather than stripped.)
fn strip_to_v2(koko: &Koko, path: &std::path::Path) {
    use koko::storage::{docstore::Blob, Codec};
    let snap = koko.snapshot();
    let mut buf: Vec<u8> = Vec::new();
    buf.extend_from_slice(&snap.embeddings().to_bytes());
    buf.extend_from_slice(&snap.generation().to_bytes()); // manifest: generation
    buf.extend_from_slice(&(snap.num_base_shards() as u64).to_bytes()); // manifest: num_base
    buf.extend_from_slice(&snap.router().to_bytes());
    let sections: Vec<Blob> = snap.shards().iter().map(|s| Blob(s.to_bytes())).collect();
    buf.extend_from_slice(&sections.to_bytes());
    koko::storage::write_snapshot_file(path, &buf).unwrap();
    let mut data = std::fs::read(path).unwrap();
    data[8..10].copy_from_slice(&2u16.to_le_bytes());
    std::fs::write(path, &data).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The ranked-top-k contract: bounded-heap `ScoreDesc` with WAND-style
    /// bound pruning returns rows byte-identical (content, order, scores)
    /// to windowing the full-scan reference — across random corpora,
    /// shard counts, limits, offsets and `min_score` floors — and a
    /// pre-v3 snapshot without bound statistics answers identically via
    /// the conservative bound, just with less pruning.
    #[test]
    fn ranked_topk_is_byte_identical_to_full_scan(
        (n_docs, corpus_seed) in (1usize..14, 0u64..400),
        (shards, qi) in (1usize..5, 0usize..5),
        (offset, k) in (0usize..6, 1usize..8),
        floor_half in 0u32..4, // min_score = half * 0.25
    ) {
        let texts = koko::corpus::wiki::generate(n_docs, corpus_seed);
        let koko = engine(&texts, shards, 0);
        let q = PAPER_QUERIES[qi];
        let floor = f64::from(floor_half) * 0.25;
        let ctx = format!(
            "{q} docs={n_docs} seed={corpus_seed} shards={shards} floor={floor} offset={offset} k={k}"
        );

        // Full-scan reference: no limit ⇒ the heap never engages.
        let full = QueryRequest::new(q)
            .order(Order::ScoreDesc)
            .min_score(floor)
            .run(&koko)
            .unwrap();
        prop_assert!(!full.truncated, "{}", &ctx);
        let start = offset.min(full.rows.len());
        let end = (start + k).min(full.rows.len());
        let expected = render_rows(&full.rows[start..end]);

        let ranked = QueryRequest::new(q)
            .order(Order::ScoreDesc)
            .min_score(floor)
            .offset(offset)
            .limit(k)
            .run(&koko)
            .unwrap();
        prop_assert_eq!(render_rows(&ranked.rows), expected.clone(), "{}", &ctx);
        if ranked.truncated {
            prop_assert!(
                ranked.total_matches >= end && ranked.total_matches <= full.rows.len(),
                "{}: truncated totals stay a covering lower bound", &ctx
            );
        } else {
            prop_assert_eq!(ranked.total_matches, full.rows.len(), "{}", &ctx);
        }

        // Conservative-bound path: the same request against a v2 snapshot
        // (statistics stripped) must answer byte-identically.
        let path = std::env::temp_dir().join(format!(
            "koko_ranked_v2_{}_{n_docs}_{corpus_seed}_{shards}.koko",
            std::process::id()
        ));
        strip_to_v2(&koko, &path);
        let legacy = Koko::open(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert!(
            legacy.snapshot().shards().iter().all(|s| s.bound_stats().is_none()),
            "{}: stripped file must load without stats", &ctx
        );
        let out = QueryRequest::new(q)
            .order(Order::ScoreDesc)
            .min_score(floor)
            .offset(offset)
            .limit(k)
            .run(&legacy)
            .unwrap();
        prop_assert_eq!(render_rows(&out.rows), expected, "{} (v2 conservative path)", &ctx);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any corpus, any shard count, either order, any window: `limit(k)`
    /// after `offset(n)` equals rows `n..n+k` of the unlimited run, and
    /// `min_score` equals post-filtering — including both combined.
    #[test]
    fn windows_and_floors_match_the_unlimited_run(
        (n_docs, corpus_seed) in (1usize..14, 0u64..400),
        (shards, qi) in (1usize..5, 0usize..5),
        (offset, k) in (0usize..6, 0usize..8),
        (floor_half, score_desc) in (0u32..4, any::<bool>()), // min_score = half * 0.25
    ) {
        let texts = koko::corpus::wiki::generate(n_docs, corpus_seed);
        let koko = engine(&texts, shards, 0);
        let q = PAPER_QUERIES[qi];
        let order = if score_desc { Order::ScoreDesc } else { Order::DocOrder };
        let floor = f64::from(floor_half) * 0.25;

        let full = QueryRequest::new(q).order(order).run(&koko).unwrap();
        let filtered: Vec<&Row> = full.rows.iter().filter(|r| r.score >= floor).collect();
        let windowed = QueryRequest::new(q)
            .order(order)
            .min_score(floor)
            .offset(offset)
            .limit(k)
            .run(&koko)
            .unwrap();
        let start = offset.min(filtered.len());
        let end = (start + k).min(filtered.len());
        let expected: Vec<String> = filtered[start..end]
            .iter()
            .map(|r| format!("doc={} score={:.6} values={:?}", r.doc, r.score, r.values))
            .collect();
        prop_assert_eq!(
            render_rows(&windowed.rows),
            expected,
            "{} docs={} seed={} shards={} order={:?} floor={} offset={} k={}",
            q, n_docs, corpus_seed, shards, order, floor, offset, k
        );
        if !windowed.truncated {
            prop_assert_eq!(windowed.total_matches, filtered.len());
        } else {
            prop_assert!(windowed.total_matches <= filtered.len());
        }
    }
}

/// Write a copy of the v4 snapshot at `src` with every block-statistics
/// section (`SEC_BLOCKS`) dropped: the file still carries per-shard bound
/// statistics, but the block-max refinement has nothing to work with —
/// exactly the shape a pre-block-stats v4 writer would have produced.
fn strip_block_sections(src: &std::path::Path, dst: &std::path::Path) {
    use koko::storage::{write_sectioned_file, SectionWriter, SectionedFile, SEC_BLOCKS};
    let sf = SectionedFile::open_mmap(src).unwrap();
    let entries = sf.table().entries.clone();
    let mut w = SectionWriter::new();
    for e in &entries {
        if e.kind == SEC_BLOCKS {
            continue;
        }
        let bytes = sf.section_bytes(e).unwrap();
        w.add_section(e.kind, e.index, bytes.as_slice());
    }
    write_sectioned_file(dst, &w.finish()).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The streamed executor (galloping DPLI intersection + block-max
    /// pruning) returns rows byte-identical — content, order, scores —
    /// to the force-materialized reference (the unlimited run, windowed
    /// by hand), across random corpora, shard counts, both orders,
    /// limits, offsets and `min_score` floors. The contract holds on
    /// the in-memory engine (block statistics present), on a reloaded
    /// v4 snapshot, and on the same snapshot with its `SEC_BLOCKS`
    /// sections stripped (shard bounds only — no block-max pruning);
    /// `total_matches` must agree whenever the run is not truncated.
    #[test]
    fn blockmax_streaming_matches_materialized_reference(
        (n_docs, corpus_seed) in (1usize..14, 0u64..400),
        (shards, qi) in (1usize..5, 0usize..5),
        (offset, k) in (0usize..6, 1usize..8),
        (floor_half, score_desc) in (0u32..4, any::<bool>()), // min_score = half * 0.25
    ) {
        let texts = koko::corpus::wiki::generate(n_docs, corpus_seed);
        let koko = engine(&texts, shards, 0);
        let q = PAPER_QUERIES[qi];
        let order = if score_desc { Order::ScoreDesc } else { Order::DocOrder };
        let floor = f64::from(floor_half) * 0.25;
        let ctx = format!(
            "{q} docs={n_docs} seed={corpus_seed} shards={shards} order={order:?} floor={floor} offset={offset} k={k}"
        );

        // Force-materialized reference: no limit ⇒ neither the bounded
        // heap nor any bound pruning engages; window it by hand.
        let full = QueryRequest::new(q)
            .order(order)
            .min_score(floor)
            .run(&koko)
            .unwrap();
        prop_assert!(!full.truncated, "{}", &ctx);
        let start = offset.min(full.rows.len());
        let end = (start + k).min(full.rows.len());
        let expected = render_rows(&full.rows[start..end]);

        let check = |engine: &Koko, label: &str| -> Result<(), TestCaseError> {
            let out = QueryRequest::new(q)
                .order(order)
                .min_score(floor)
                .offset(offset)
                .limit(k)
                .run(engine)
                .unwrap();
            prop_assert_eq!(
                render_rows(&out.rows),
                expected.clone(),
                "{} [{}]",
                &ctx,
                label
            );
            if !out.truncated {
                prop_assert_eq!(out.total_matches, full.rows.len(), "{} [{}]", &ctx, label);
            }
            Ok(())
        };
        check(&koko, "in-memory")?;

        let pid = std::process::id();
        let v4 = std::env::temp_dir().join(format!(
            "koko_blockmax_{pid}_{n_docs}_{corpus_seed}_{shards}.koko"
        ));
        koko.save(&v4).unwrap();
        let reloaded = Koko::open(&v4).unwrap();
        prop_assert!(
            reloaded.snapshot().shards().iter().all(|s| s.block_stats().is_some()),
            "{}: v4 saves must carry block statistics", &ctx
        );
        check(&reloaded, "v4 mmap")?;

        let no_blocks = std::env::temp_dir().join(format!(
            "koko_blockmax_nb_{pid}_{n_docs}_{corpus_seed}_{shards}.koko"
        ));
        strip_block_sections(&v4, &no_blocks);
        let stripped = Koko::open(&no_blocks).unwrap();
        std::fs::remove_file(&v4).ok();
        std::fs::remove_file(&no_blocks).ok();
        prop_assert!(
            stripped
                .snapshot()
                .shards()
                .iter()
                .all(|s| s.block_stats().is_none() && s.bound_stats().is_some()),
            "{}: stripped file must keep shard bounds but lose blocks", &ctx
        );
        check(&stripped, "v4 blocks-stripped")?;
    }
}
